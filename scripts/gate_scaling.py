#!/usr/bin/env python
"""Gate multi-core fleet scaling and maintain the baseline table.

Consumes the summary JSON written by ``repro bench --suite scale
--json ...`` (the ``fleet_scale_mp`` benchmark), then:

* fails (exit 1) when the core-normalized parallel efficiency at the
  highest worker count falls below the floor — enforced as a hard gate
  only on machines with >= 4 cores, where the core-normalized number
  equals the headline ``speedup(4)/4`` parallel efficiency; on smaller
  machines the check still runs but only warns, since there the number
  measures pool overhead, not true scaling;
* writes a markdown delta table (``--markdown``) comparing the fresh
  measurement against the ``scaling_mp`` table recorded in
  ``benchmarks/baseline.json`` — the CI artifact reviewers read;
* with ``--update-baseline``, rewrites only the ``scaling_mp`` table in
  the baseline file (floors and other tables are preserved untouched).

Usage::

    python scripts/gate_scaling.py scale.json \
        --baseline benchmarks/baseline.json \
        --markdown scaling_delta.md [--update-baseline] [--floor 0.75]
"""

import argparse
import json
import sys

#: Minimum core-normalized parallel efficiency at the highest worker
#: count (see fleet_scale_mp's docstring for the two definitions).
DEFAULT_FLOOR = 0.75

#: Hard-gate only on machines where efficiency == speedup(k)/k at the
#: top worker count; below this the check degrades to a warning.
GATE_MIN_CORES = 4


def load_measurement(summary_path):
    """The fleet_scale_mp timing block out of a bench summary JSON."""
    with open(summary_path, "r", encoding="utf-8") as handle:
        summary = json.load(handle)
    for result in summary.get("results", []):
        if result.get("name") == "fleet_scale_mp":
            timing = result.get("timing") or {}
            if not timing.get("scaling"):
                raise SystemExit(
                    f"{summary_path}: fleet_scale_mp has no timing."
                    f"scaling table")
            return timing
    raise SystemExit(f"{summary_path}: no fleet_scale_mp result "
                     f"(run: repro bench --suite scale --json ...)")


def build_table(timing, floor):
    """The scaling_mp baseline table for one measurement."""
    return {
        "cores": timing["cores"],
        "transport": timing.get("transport", "shm"),
        "efficiency_floor": floor,
        "note": ("efficiency is core-normalized speedup(k)/min(k, "
                 "cores): equals the headline parallel efficiency "
                 "speedup(k)/k on machines with >= k cores, measures "
                 "pool overhead on smaller ones. Wall-clock rows are "
                 "machine-dependent; refresh with --update-baseline "
                 "on the machine that owns the baseline."),
        "rows": timing["scaling"],
    }


def delta_markdown(fresh, recorded):
    """Markdown comparing a fresh scaling table against the baseline."""
    lines = ["# fleet_scale_mp scaling delta", ""]
    lines.append(f"Fresh run: {fresh['cores']} core(s), transport "
                 f"{fresh['transport']}, floor "
                 f"{fresh['efficiency_floor']}.")
    if recorded:
        lines.append(f"Baseline:  {recorded.get('cores', '?')} core(s), "
                     f"transport {recorded.get('transport', '?')}.")
    lines += ["", "| workers | homes/s | speedup | eff (core-norm) "
              "| eff raw | baseline homes/s | baseline eff |",
              "|---:|---:|---:|---:|---:|---:|---:|"]
    recorded_rows = {row["workers"]: row
                     for row in (recorded or {}).get("rows", [])}
    for row in fresh["rows"]:
        base = recorded_rows.get(row["workers"], {})
        lines.append(
            f"| {row['workers']} | {row['homes_per_sec']} "
            f"| {row['speedup']} | {row['efficiency']} "
            f"| {row['efficiency_raw']} "
            f"| {base.get('homes_per_sec', '—')} "
            f"| {base.get('efficiency', '—')} |")
    lines.append("")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("summary", help="bench summary JSON "
                                        "(repro bench --suite scale)")
    parser.add_argument("--baseline", default="benchmarks/baseline.json")
    parser.add_argument("--floor", type=float, default=DEFAULT_FLOOR)
    parser.add_argument("--markdown", default="",
                        help="write the scaling delta table here")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline's scaling_mp table "
                             "from this measurement")
    args = parser.parse_args(argv)

    timing = load_measurement(args.summary)
    fresh = build_table(timing, args.floor)

    try:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except OSError:
        baseline = None
    recorded = (baseline or {}).get("scaling_mp")

    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(delta_markdown(fresh, recorded))
        print(f"wrote {args.markdown}")

    if args.update_baseline:
        if baseline is None:
            raise SystemExit(f"cannot update missing baseline "
                             f"{args.baseline}")
        baseline["scaling_mp"] = fresh
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"updated scaling_mp in {args.baseline}")

    top = fresh["rows"][-1]
    efficiency = top["efficiency"]
    cores = fresh["cores"]
    verdict = (f"workers={top['workers']}: core-normalized efficiency "
               f"{efficiency} (floor {args.floor}, {cores} cores)")
    if efficiency < args.floor:
        if cores >= GATE_MIN_CORES:
            print(f"FAIL: {verdict}", file=sys.stderr)
            return 1
        print(f"WARN (not gated below {GATE_MIN_CORES} cores): "
              f"{verdict}", file=sys.stderr)
        return 0
    print(f"OK: {verdict}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
