#!/usr/bin/env python3
"""Markdown link-and-anchor checker for README.md and docs/*.md.

Every intra-repo link must resolve: relative paths must exist on disk,
and ``#anchors`` into markdown files must match a heading (GitHub's
slug rules: lowercase, punctuation stripped, spaces to hyphens).
External links (http/https/mailto) are not fetched.

Usage::

    python scripts/check_links.py            # exit 1 on any broken link
    python scripts/check_links.py --verbose  # also list every checked link
"""

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[([^\]]*)\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
FENCE_RE = re.compile(r"^(```|~~~)")


def markdown_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def _rel(path: Path) -> Path:
    try:
        return path.relative_to(REPO_ROOT)
    except ValueError:
        return path


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    text = heading.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)   # drop punctuation, keep - and _
    return text.replace(" ", "-")


def _fenced_filter(lines: List[str]) -> List[str]:
    """Lines with fenced code blocks blanked out (no headings/links there)."""
    out, fenced = [], False
    for line in lines:
        if FENCE_RE.match(line.strip()):
            fenced = not fenced
            out.append("")
            continue
        out.append("" if fenced else line)
    return out


def headings_of(path: Path) -> Set[str]:
    slugs: Dict[str, int] = {}
    for line in _fenced_filter(path.read_text().splitlines()):
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        # GitHub de-duplicates repeated headings with -1, -2, ...
        count = slugs.get(slug, 0)
        slugs[slug] = count + 1
        if count:
            slugs[f"{slug}-{count}"] = 1
    return set(slugs)


def links_of(path: Path) -> List[Tuple[str, str]]:
    links = []
    for line in _fenced_filter(path.read_text().splitlines()):
        for match in LINK_RE.finditer(line):
            links.append((match.group(1), match.group(2)))
    return links


def check_file(path: Path, verbose: bool = False) -> List[str]:
    errors = []
    for text, target in links_of(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        raw_path, _, anchor = target.partition("#")
        resolved = path if not raw_path \
            else (path.parent / raw_path).resolve()
        if verbose:
            print(f"  {_rel(path)}: [{text}]({target})")
        if raw_path and not resolved.exists():
            errors.append(f"{_rel(path)}: broken link "
                          f"[{text}]({target}) — no such file")
            continue
        if anchor:
            if resolved.suffix != ".md":
                continue   # anchors into non-markdown are out of scope
            if anchor not in headings_of(resolved):
                errors.append(
                    f"{_rel(path)}: broken anchor "
                    f"[{text}]({target}) — no heading "
                    f"#{anchor} in {resolved.name}")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()
    errors: List[str] = []
    files = markdown_files()
    for path in files:
        errors.extend(check_file(path, verbose=args.verbose))
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} broken link(s) across {len(files)} files",
              file=sys.stderr)
        return 1
    print(f"all intra-repo links resolve ({len(files)} markdown files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
