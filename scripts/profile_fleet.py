#!/usr/bin/env python
"""Profile the fleet engine's hot path with cProfile.

The entry point used to find the next fleet bottleneck (this is how the
PR-5 throughput pass located the pump scans, closure rebuilds and
journal payload churn).  Runs one fleet configuration under cProfile
and prints the top functions by cumulative and internal time::

    PYTHONPATH=src python scripts/profile_fleet.py --homes 100
    PYTHONPATH=src python scripts/profile_fleet.py --homes 50 \
        --scenario morning --sort tottime --limit 40
    PYTHONPATH=src python scripts/profile_fleet.py --out fleet.pstats

Two backends are profileable:

* ``--backend serial`` (default) — the parent's profiler wraps the
  whole run; this is the per-home cost every backend pays.
* ``--backend process`` — each worker profiles its own life and dumps
  a per-pid pstats file at exit; the parent merges them into one view,
  which is where pool-only costs (chunk pickling, partial transport,
  factory resets across workers) become visible.

``--json`` writes the top-N functions by cumulative time as JSON —
machine-readable output for tracking bottleneck drift across PRs.
Open a ``--out`` dump with ``snakeviz``/``pstats`` interactively.
"""

import argparse
import cProfile
import glob
import json
import os
import pstats
import sys
import tempfile
import time

from repro.fleet import FleetConfig, FleetEngine


def top_functions(stats: pstats.Stats, limit: int) -> list:
    """The top-``limit`` functions by cumulative time, as plain dicts.

    ``stats.stats`` maps ``(file, line, name)`` to
    ``(calls, primitive_calls, tottime, cumtime, callers)``.
    """
    rows = []
    for (filename, line, name), (calls, primitive, tottime, cumtime,
                                 _callers) in stats.stats.items():
        rows.append({
            "function": name,
            "file": os.path.basename(filename),
            "line": line,
            "ncalls": calls,
            "primitive_calls": primitive,
            "tottime_s": round(tottime, 6),
            "cumtime_s": round(cumtime, 6),
        })
    rows.sort(key=lambda row: row["cumtime_s"], reverse=True)
    return rows[:limit]


def profile_serial(engine: FleetEngine):
    """Profile the whole run in-process (serial backend)."""
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    result = engine.run()
    profiler.disable()
    elapsed = time.perf_counter() - started
    return pstats.Stats(profiler), result, elapsed


def profile_process(config: FleetConfig):
    """Profile a process-pool run: per-worker dumps, merged here.

    The profile directory rides to the workers through the one-time
    ``WorkerContext`` broadcast (``FleetConfig.profile_dir``); each
    worker dumps ``worker-<pid>.pstats`` at interpreter exit, after the
    pool has shut down — so the merge happens strictly after
    ``engine.run()`` returns.
    """
    with tempfile.TemporaryDirectory(prefix="repro-fleet-prof-") as tmp:
        engine = FleetEngine(
            FleetConfig(**{**config.__dict__, "profile_dir": tmp}))
        started = time.perf_counter()
        result = engine.run()
        elapsed = time.perf_counter() - started
        dumps = sorted(glob.glob(os.path.join(tmp, "worker-*.pstats")))
        if not dumps:
            raise SystemExit(
                "no worker profiles were dumped — did the pool spawn "
                "workers? (1-home fleets collapse to a single chunk)")
        stats = pstats.Stats(dumps[0])
        for dump in dumps[1:]:
            stats.add(dump)
        print(f"merged {len(dumps)} worker profile(s)", file=sys.stderr)
    return stats, result, elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--homes", type=int, default=100,
                        help="fleet size to profile (default: 100)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--scenario", default="mix",
                        help="'mix' or one fleet scenario name")
    parser.add_argument("--model", default="ev")
    parser.add_argument("--backend", default="serial",
                        choices=("serial", "process"),
                        help="serial profiles in-process; process "
                             "merges per-worker profiles (default: "
                             "serial)")
    parser.add_argument("--workers", type=int, default=0,
                        help="process-pool size; 0 = one per CPU")
    parser.add_argument("--crashes", type=int, default=0,
                        help="profile the durable path (hub crashes "
                             "per home)")
    parser.add_argument("--check-final", action="store_true",
                        help="include the final-serializability search "
                             "(excluded by default, as in fleet_scale)")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "ncalls"),
                        help="pstats sort key (default: cumulative)")
    parser.add_argument("--limit", type=int, default=30,
                        help="rows to print (default: 30)")
    parser.add_argument("--out", default="",
                        help="also dump raw (merged) pstats to this path")
    parser.add_argument("--json", default="",
                        help="write the top functions by cumulative "
                             "time as JSON to this path")
    args = parser.parse_args(argv)

    config = FleetConfig(
        homes=args.homes, seed=args.seed, scenario=args.scenario,
        model=args.model, backend=args.backend, workers=args.workers,
        crashes=args.crashes, check_final=args.check_final)
    if args.backend == "process":
        stats, result, elapsed = profile_process(config)
    else:
        stats, result, elapsed = profile_serial(FleetEngine(config))

    print(f"{args.homes} homes in {elapsed:.2f}s under the profiler "
          f"({args.homes / elapsed:.1f} homes/s; profiling overhead "
          f"inflates everything — compare shapes, not absolutes)",
          file=sys.stderr)
    print(f"aggregate: {result.aggregate['routines']} routines, "
          f"abort rate {result.aggregate['abort_rate']:.4f}",
          file=sys.stderr)
    stats.sort_stats(args.sort).print_stats(args.limit)
    if args.out:
        stats.dump_stats(args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        payload = {
            "backend": args.backend,
            "homes": args.homes,
            "seed": args.seed,
            "scenario": args.scenario,
            "model": args.model,
            "top_cumulative": top_functions(stats, args.limit),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
