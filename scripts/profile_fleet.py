#!/usr/bin/env python
"""Profile the fleet engine's hot path with cProfile.

The entry point used to find the next fleet bottleneck (this is how the
PR-5 throughput pass located the pump scans, closure rebuilds and
journal payload churn).  Runs one fleet configuration under cProfile
and prints the top functions by cumulative and internal time::

    PYTHONPATH=src python scripts/profile_fleet.py --homes 100
    PYTHONPATH=src python scripts/profile_fleet.py --homes 50 \
        --scenario morning --sort tottime --limit 40
    PYTHONPATH=src python scripts/profile_fleet.py --out fleet.pstats

Only the serial backend is profiled — process workers run in children
where the parent's profiler cannot see, and the serial path is the
per-home cost every backend pays.  Write ``--out`` and open the file
with ``snakeviz``/``pstats`` for an interactive view.
"""

import argparse
import cProfile
import pstats
import sys
import time

from repro.fleet import FleetConfig, FleetEngine


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--homes", type=int, default=100,
                        help="fleet size to profile (default: 100)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--scenario", default="mix",
                        help="'mix' or one fleet scenario name")
    parser.add_argument("--model", default="ev")
    parser.add_argument("--crashes", type=int, default=0,
                        help="profile the durable path (hub crashes "
                             "per home)")
    parser.add_argument("--check-final", action="store_true",
                        help="include the final-serializability search "
                             "(excluded by default, as in fleet_scale)")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "ncalls"),
                        help="pstats sort key (default: cumulative)")
    parser.add_argument("--limit", type=int, default=30,
                        help="rows to print (default: 30)")
    parser.add_argument("--out", default="",
                        help="also dump raw pstats to this path")
    args = parser.parse_args(argv)

    engine = FleetEngine(FleetConfig(
        homes=args.homes, seed=args.seed, scenario=args.scenario,
        model=args.model, backend="serial", crashes=args.crashes,
        check_final=args.check_final))
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    result = engine.run()
    profiler.disable()
    elapsed = time.perf_counter() - started

    print(f"{args.homes} homes in {elapsed:.2f}s under the profiler "
          f"({args.homes / elapsed:.1f} homes/s; profiling overhead "
          f"inflates everything — compare shapes, not absolutes)",
          file=sys.stderr)
    print(f"aggregate: {result.aggregate['routines']} routines, "
          f"abort rate {result.aggregate['abort_rate']:.4f}",
          file=sys.stderr)
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.limit)
    if args.out:
        stats.dump_stats(args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
