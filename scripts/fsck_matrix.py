#!/usr/bin/env python3
"""The CI fsck gate: seeded storage-corruption matrix, zero tolerance.

Runs :func:`repro.hub.durability.faults.run_corruption_matrix` —
every visibility model x serial/parallel x every fault kind, for N
seeds — and fails (exit 1) if any cell silently diverges: scanner
happy, no records missing, replayed state different.  The per-cell
outcomes land in a deterministic JSON report for artifact upload.

Usage::

    PYTHONPATH=src python scripts/fsck_matrix.py --seeds 2 --json out.json
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.hub.durability.faults import run_corruption_matrix  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=1,
                        help="fault-injection seeds per cell (default: 1)")
    parser.add_argument("--models", default="",
                        help="comma-separated visibility models "
                             "(default: all)")
    parser.add_argument("--kinds", default="",
                        help="comma-separated fault kinds (default: all)")
    parser.add_argument("--checkpoint-every", type=int, default=8,
                        help="observation records per checkpoint "
                             "(default: 8)")
    parser.add_argument("--json", default="",
                        help="write the matrix report JSON to this path")
    args = parser.parse_args()

    matrix = run_corruption_matrix(
        models=args.models.split(",") if args.models else None,
        kinds=args.kinds.split(",") if args.kinds else None,
        seeds=tuple(range(args.seeds)),
        checkpoint_every=args.checkpoint_every)

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(matrix, handle, indent=2, sort_keys=True)
            handle.write("\n")

    print(f"fsck matrix: {len(matrix['trials'])} trials "
          f"({len(matrix['models'])} models x "
          f"{len(matrix['executions'])} executions x "
          f"{len(matrix['kinds'])} kinds x {args.seeds} seed(s))")
    for outcome, count in matrix["outcomes"].items():
        print(f"  {outcome:20s} {count}")
    failures = [t for t in matrix["trials"]
                if t["outcome"] == "SILENT-DIVERGENCE"]
    for trial in failures:
        print(f"SILENT DIVERGENCE: {trial['model']}/{trial['execution']}"
              f"/{trial['kind']} seed={trial['seed']} "
              f"injection={trial['injection']}", file=sys.stderr)
    if failures:
        print(f"FAIL: {len(failures)} silent divergence(s) — corruption "
              f"survived undetected", file=sys.stderr)
        return 1
    print("zero silent divergences")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
