#!/usr/bin/env python3
"""Regenerate the golden corrupt-WAL fixtures under tests/fixtures/fsck.

Each fixture directory holds the raw segment bytes of a deterministic
durable chaos run damaged by one seeded fault, plus ``expected.json`` —
the byte-exact ``repro fsck --salvage`` report the damaged log must
keep producing forever.  ``tests/test_fsck.py`` replays fsck over the
committed bytes and compares reports byte for byte, so any drift in the
frame format, the scanner's classification or the salvage pipeline
shows up as a fixture diff, never as a silent behavior change.

Usage::

    PYTHONPATH=src python scripts/gen_fsck_fixtures.py          # rewrite
    PYTHONPATH=src python scripts/gen_fsck_fixtures.py --check  # exit 1 on drift
"""

import argparse
import json
import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.hub.durability.faults import (build_durable_home,  # noqa: E402
                                         inject_fault)
from repro.hub.durability.fsck import fsck_path  # noqa: E402

FIXTURE_ROOT = REPO_ROOT / "tests" / "fixtures" / "fsck"

#: name -> fault kind.  One fixture per damage class the scanner
#: distinguishes: crash-consistent tail, mid-log bit rot, seal loss.
FIXTURES = {
    "torn-tail": "torn-tail",
    "flipped-bit": "bit-flip",
    "bad-seal": "missing-seal",
}

MODEL, EXECUTION, SEED, CHECKPOINT_EVERY = "ev", "serial", 3, 8


def build_fixture(name: str, kind: str, root: Path) -> dict:
    target = root / name
    if target.exists():
        shutil.rmtree(target)
    target.mkdir(parents=True)
    build_durable_home(MODEL, EXECUTION, str(target), seed=SEED,
                       checkpoint_every=CHECKPOINT_EVERY)
    injection = inject_fault(str(target), kind, seed=SEED)
    report = fsck_path(str(target), salvage=True)
    expected = {
        "injection": injection,
        "report": report.to_dict(),
    }
    (target / "expected.json").write_text(
        json.dumps(expected, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return expected


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="regenerate into a scratch dir and exit 1 "
                             "if the committed fixtures drift")
    args = parser.parse_args()

    if not args.check:
        for name, kind in FIXTURES.items():
            expected = build_fixture(name, kind, FIXTURE_ROOT)
            print(f"wrote {FIXTURE_ROOT / name} "
                  f"(status={expected['report']['status']}, "
                  f"exit={expected['report']['exit_code']})")
        return 0

    import tempfile

    drift = 0
    with tempfile.TemporaryDirectory(prefix="fsck-fixtures-") as scratch:
        for name, kind in FIXTURES.items():
            fresh = build_fixture(name, kind, Path(scratch))
            committed_path = FIXTURE_ROOT / name / "expected.json"
            if not committed_path.exists():
                print(f"MISSING: {committed_path}")
                drift += 1
                continue
            committed = json.loads(committed_path.read_text())
            if committed != fresh:
                print(f"DRIFT: {committed_path} no longer matches a "
                      f"fresh build")
                drift += 1
            else:
                print(f"ok: {name}")
    return 1 if drift else 0


if __name__ == "__main__":
    raise SystemExit(main())
