#!/usr/bin/env bash
# The one-command CI gate: tests, doc doctests, lint.
# Usage: ./scripts/check.sh   (from anywhere; PYTHON=... to override)
set -euo pipefail
cd "$(dirname "$0")/.."

PY="${PYTHON:-python3}"
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests (pytest) =="
# pytest-xdist (a dev extra) cuts the 3-version CI matrix wall time;
# fall back to serial when it is absent (e.g. offline machines).
if "$PY" -c "import xdist" >/dev/null 2>&1; then
    "$PY" -m pytest -x -q -n auto
else
    "$PY" -m pytest -x -q
fi

echo
echo "== doctests in docs code blocks =="
"$PY" -m doctest README.md docs/*.md
echo "doctests OK"

echo
echo "== markdown links and anchors =="
"$PY" scripts/check_links.py

echo
echo "== CLI reference drift (docs/cli.md) =="
"$PY" scripts/gen_cli_docs.py --check

echo
echo "== determinism gate (serial + parallel execution) =="
DET_DIR="$(mktemp -d)"
trap 'rm -rf "$DET_DIR"' EXIT
for exec_mode in serial parallel; do
    "$PY" -m repro scenario morning --model ev --execution "$exec_mode" \
        --json "$DET_DIR/a.json" >/dev/null
    "$PY" -m repro scenario morning --model ev --execution "$exec_mode" \
        --json "$DET_DIR/b.json" >/dev/null
    cmp "$DET_DIR/a.json" "$DET_DIR/b.json"
    echo "execution=$exec_mode deterministic"
done

echo
echo "== crash-recovery gate (durable hub, chaos workload) =="
for exec_mode in serial parallel; do
    "$PY" -m repro crash-recovery --model ev --execution "$exec_mode" \
        --seed 3 --crashes 2 --json "$DET_DIR/ra.json" >/dev/null 2>&1
    "$PY" -m repro crash-recovery --model ev --execution "$exec_mode" \
        --seed 3 --crashes 2 --json "$DET_DIR/rb.json" >/dev/null 2>&1
    cmp "$DET_DIR/ra.json" "$DET_DIR/rb.json"
    "$PY" - "$DET_DIR/ra.json" <<'PYEOF'
import json, sys
payload = json.load(open(sys.argv[1]))
assert payload["congruent"] is True, "replay recovery diverged"
PYEOF
    echo "execution=$exec_mode crash-recovery congruent + deterministic"
done

echo
echo "== fsck gate (golden fixtures + seeded corruption matrix) =="
"$PY" scripts/gen_fsck_fixtures.py --check
"$PY" scripts/fsck_matrix.py --models ev,gsv --json "$DET_DIR/fsck.json"

echo
echo "== lint =="
if "$PY" -m ruff --version >/dev/null 2>&1; then
    "$PY" -m ruff check src tests benchmarks examples scripts
elif command -v ruff >/dev/null 2>&1; then
    ruff check src tests benchmarks examples scripts
elif "$PY" -m pyflakes --version >/dev/null 2>&1; then
    "$PY" -m pyflakes src/repro tests benchmarks examples
else
    echo "(ruff/pyflakes not installed; falling back to compileall)"
    "$PY" -m compileall -q src tests benchmarks examples
fi
echo "lint OK"

echo
echo "All checks passed."
