"""Fig 15d — Timeline (Algorithm 1) placement cost.

Paper: on a Raspberry Pi 3B+ with 15 devices and 30 routines, inserting
a large 10-command routine takes ~1 ms; typical 5-command routines are
far cheaper.  This is the one genuinely CPU-bound benchmark, so it also
exercises pytest-benchmark's statistics on the placement path itself.

Thin wrapper over the registered ``scheduler_insertion`` smoke
benchmark (per-insertion milliseconds live in its ``timing`` payload —
they are wall-clock, not virtual time).
"""

from benchmarks.conftest import run_once
from repro.bench import call
from repro.experiments.report import print_table


def test_fig15d_insertion_time(benchmark):
    outcome = run_once(benchmark, call, "scheduler_insertion",
                       routine_sizes=(1, 2, 4, 6, 8, 10))
    rows = outcome["timing"]["rows"]
    print_table("Fig 15d: Algorithm 1 insertion time vs routine size",
                rows)
    for row in rows:
        # Generous bound for arbitrary CI hardware; the paper's Pi does
        # 10 commands in ~1 ms.
        assert row["mean_insert_ms"] < 25.0


def test_fig15d_single_placement_microbench(benchmark):
    """Median cost of one Algorithm 1 placement on a populated table."""
    from tests.conftest import Home, routine

    home = Home(model="ev", scheduler="timeline", n_devices=15)
    # Populate the lineage table with 30 in-flight routines.
    for index in range(30):
        steps = [((index + j) % 15, "ON", 60.0) for j in range(3)]
        home.submit(routine(f"bg{index}", steps), when=0.0)
    home.sim.run(until=1.0)

    big = routine("big", [(d, "ON", 5.0) for d in range(10)])
    scheduler = home.controller.scheduler

    def place_once():
        return scheduler._place(
            home.controller.submit(big, when=home.sim.now))

    benchmark(place_once)
