"""Fig 12b — Final Incongruence: 9 concurrent routines, 100 runs; is
the end state equivalent to one of the 9! serial orders?

Paper: WV ends incongruent in a substantial fraction of runs; EV, PSV
and GSV are always serially equivalent.

Thin wrapper over the registered ``final_incongruence`` benchmark.
"""

from benchmarks.conftest import bench_rows, run_once
from repro.experiments.report import print_table


def test_fig12b_final_incongruence(benchmark):
    rows = run_once(benchmark, bench_rows, "final_incongruence",
                    runs=100, n_routines=9)
    print_table("Fig 12b: final incongruence over 100 runs "
                "(9 routines, 9! serial orders checked)", rows)
    by_model = {row["model"]: row for row in rows}
    assert by_model["ev"]["final_incongruence"] == 0.0
    assert by_model["psv"]["final_incongruence"] == 0.0
    assert by_model["gsv"]["final_incongruence"] == 0.0
    assert by_model["wv"]["final_incongruence"] > 0.1
