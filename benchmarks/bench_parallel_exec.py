"""Serial vs parallel plan execution on the wide fan-out workload.

Thin wrapper over the registered ``parallel_exec`` smoke benchmark
(the comparison logic lives in
:mod:`repro.bench.suites.perf`).  Run standalone for deterministic
JSON::

    PYTHONPATH=src python benchmarks/bench_parallel_exec.py

or through the unified harness for calibrated wall-clock timings::

    PYTHONPATH=src python -m repro bench --filter parallel_exec
"""

import argparse
import json

import pytest

try:
    from benchmarks.conftest import run_once
except ModuleNotFoundError:  # standalone: python benchmarks/bench_....py
    run_once = None
from repro.bench.suites.perf import (PARALLEL_EXEC_MODELS,
                                     parallel_exec_compare)


def bench_payload(seed: int = 0, routines: int = 6, width: int = 8) -> dict:
    from repro.bench import call

    metrics = call("parallel_exec", seed=seed, routines=routines,
                   width=width)["metrics"]
    return {"benchmark": "parallel_exec",
            "workload": metrics["workload"],
            "models": metrics["models"]}


@pytest.mark.parametrize("model", PARALLEL_EXEC_MODELS)
def test_parallel_speedup(benchmark, model):
    """The wide fan-out routine's makespan drops ≥1.5× under parallel
    plans for every model (disjoint footprints: pure planner win)."""
    row = run_once(benchmark, parallel_exec_compare, model)
    assert row["parallel"]["committed"] == row["serial"]["committed"]
    assert row["speedup"] is not None and row["speedup"] >= 1.5, row


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--routines", type=int, default=6)
    parser.add_argument("--width", type=int, default=8)
    args = parser.parse_args()
    payload = bench_payload(seed=args.seed, routines=args.routines,
                            width=args.width)
    print(json.dumps(payload, sort_keys=True, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
