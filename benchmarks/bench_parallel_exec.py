"""Serial vs parallel plan execution on the wide fan-out workload.

For each visibility model, runs the fan-out scenario (disjoint wide
routines — see :mod:`repro.workloads.fanout`) under both plan
strategies and reports the virtual-time makespan, the per-plan makespan
p50, the total lock-wait seconds and the speedup.  Run standalone for
deterministic JSON::

    PYTHONPATH=src python benchmarks/bench_parallel_exec.py

or under pytest-benchmark for calibrated wall-clock timings::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_exec.py
"""

import argparse
import json

import pytest

try:
    from benchmarks.conftest import run_once
except ModuleNotFoundError:  # standalone: python benchmarks/bench_....py
    run_once = None
from repro.core.controller import ControllerConfig
from repro.experiments.runner import ExperimentSetup, run_workload
from repro.workloads.fanout import fanout_scenario

MODELS = ("wv", "gsv", "psv", "ev", "occ")


def run_fanout(model: str, execution: str, seed: int = 0,
               routines: int = 6, width: int = 8):
    workload = fanout_scenario(seed=seed, routines=routines, width=width)
    setup = ExperimentSetup(
        model=model, seed=seed, check_final=False,
        config=ControllerConfig(execution=execution))
    result, report, _controller = run_workload(workload, setup)
    return result, report


def compare(model: str, seed: int = 0, routines: int = 6,
            width: int = 8) -> dict:
    row = {}
    for execution in ("serial", "parallel"):
        result, report = run_fanout(model, execution, seed=seed,
                                    routines=routines, width=width)
        row[execution] = {
            "makespan": round(result.makespan, 6),
            "plan_makespan_p50": round(
                report.plan_makespan.get("p50", 0.0), 6),
            "lock_wait_total": round(
                sum(run.lock_wait_s for run in result.runs), 6),
            "committed": len(result.committed),
            "aborted": len(result.aborted),
        }
    serial_p50 = row["serial"]["plan_makespan_p50"]
    parallel_p50 = row["parallel"]["plan_makespan_p50"]
    row["speedup"] = round(serial_p50 / parallel_p50, 3) \
        if parallel_p50 > 0 else None
    return row


def bench_payload(seed: int = 0, routines: int = 6, width: int = 8) -> dict:
    return {
        "benchmark": "parallel_exec",
        "workload": {"name": "fanout", "seed": seed,
                     "routines": routines, "width": width},
        "models": {model: compare(model, seed=seed, routines=routines,
                                  width=width) for model in MODELS},
    }


@pytest.mark.parametrize("model", MODELS)
def test_parallel_speedup(benchmark, model):
    """The wide fan-out routine's makespan drops ≥1.5× under parallel
    plans for every model (disjoint footprints: pure planner win)."""
    row = run_once(benchmark, compare, model)
    assert row["parallel"]["committed"] == row["serial"]["committed"]
    assert row["speedup"] is not None and row["speedup"] >= 1.5, row


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--routines", type=int, default=6)
    parser.add_argument("--width", type=int, default=8)
    args = parser.parse_args()
    payload = bench_payload(seed=args.seed, routines=args.routines,
                            width=args.width)
    print(json.dumps(payload, sort_keys=True, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
