"""Fig 16 — impact of routine size C (a-c) and device popularity α (d).

Paper shapes: GSV's latency grows fastest with C; PSV starts near
EV/WV for small routines but approaches GSV as C grows; EV stays the
fastest serializing model; rising α (popularity skew) slows PSV toward
GSV while EV stays close to WV.

Thin wrapper over the registered ``routine_size`` and
``device_popularity`` benchmarks.
"""

from benchmarks.conftest import bench_rows, run_once
from repro.experiments.report import print_table


def _lat(rows, model, key, value):
    return next(row["lat_p50"] for row in rows
                if row["model"] == model and row[key] == value)


def test_fig16abc_routine_size(benchmark):
    rows = run_once(benchmark, bench_rows, "routine_size", trials=8,
                    command_counts=(1, 2, 3, 4, 6, 8))
    print_table("Fig 16a-c: impact of commands per routine", rows)

    # GSV latency rises with C.
    assert _lat(rows, "gsv", "commands", 8) > \
        _lat(rows, "gsv", "commands", 1)
    for c in (3, 6, 8):
        # EV stays faster than GSV and no slower than PSV.
        assert _lat(rows, "ev", "commands", c) < \
            _lat(rows, "gsv", "commands", c)
        assert _lat(rows, "ev", "commands", c) <= \
            _lat(rows, "psv", "commands", c) * 1.05
    # PSV approaches GSV as routines grow (ratio shrinks with C).
    early_gap = _lat(rows, "gsv", "commands", 2) / \
        _lat(rows, "psv", "commands", 2)
    late_gap = _lat(rows, "gsv", "commands", 8) / \
        _lat(rows, "psv", "commands", 8)
    assert late_gap < early_gap

    # Fig 16c: order mismatch stays low for EV (paper: 3-10%).
    for row in rows:
        if row["model"] == "ev":
            assert row["order_mismatch"] < 0.2


def test_fig16d_device_popularity(benchmark):
    rows = run_once(benchmark, bench_rows, "device_popularity", trials=8,
                    alphas=(0.0, 0.05, 0.5, 1.0))
    print_table("Fig 16d: device popularity (Zipf alpha) vs latency",
                rows)
    # EV stays close to WV even under skew (within 2x here).
    for alpha in (0.05, 0.5, 1.0):
        assert _lat(rows, "ev", "alpha", alpha) <= \
            _lat(rows, "wv", "alpha", alpha) * 2.0
    # Conflicts slow PSV down toward GSV as skew rises.
    assert _lat(rows, "psv", "alpha", 1.0) > \
        _lat(rows, "psv", "alpha", 0.0)
