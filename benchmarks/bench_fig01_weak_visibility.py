"""Fig 1 — Concurrency causes incongruent end states under Weak
Visibility.

Paper: two routines (all-ON / all-OFF) over 2-15 TP-Link devices; the
fraction of non-serialized end states grows with device count and
shrinks as R2's start offset grows.

Thin wrapper over the registered ``weak_visibility`` benchmark
(``repro bench --filter weak_visibility``).
"""

from benchmarks.conftest import bench_rows, run_once
from repro.experiments.report import print_table


def test_fig01_incongruence_vs_devices(benchmark):
    rows = run_once(benchmark, bench_rows, "weak_visibility",
                    device_counts=(2, 4, 6, 8, 10, 12, 15),
                    offsets=(0.0, 0.5, 1.0, 2.0), trials=40)
    print_table("Fig 1: fraction of incongruent end states (WV)", rows)

    by_offset = {}
    for row in rows:
        by_offset.setdefault(row["offset_s"], []).append(
            row["incongruent_fraction"])
    # Shape 1: incongruence grows with device count (offset 0).
    zero = by_offset[0.0]
    assert zero[-1] > zero[0]
    assert zero[-1] >= 0.5
    # Shape 2: larger offsets reduce incongruence.
    assert sum(by_offset[2.0]) <= sum(by_offset[0.0])
