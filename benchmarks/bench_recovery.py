"""Hub recovery time vs. WAL length and checkpoint interval.

Recovery is verified deterministic replay (docs/durability.md), so its
cost scales with how much history must be re-executed and re-checked:

* **WAL length** — scaled here by repeating the chaos workload's
  routine set N times before crashing at the very end, so the replayed
  event count grows linearly;
* **checkpoint interval** — more frequent checkpoints mean more digest
  captures during normal execution and more digests to verify during
  recovery, but (with compaction) a shorter observation suffix to
  compare record-by-record.

Run standalone for the JSON report::

    PYTHONPATH=src python benchmarks/bench_recovery.py

or under pytest-benchmark for calibrated timings::

    PYTHONPATH=src python -m pytest benchmarks/bench_recovery.py
"""

import argparse
import json

import pytest

try:
    from benchmarks.conftest import run_once
except ModuleNotFoundError:  # standalone: python benchmarks/bench_....py
    run_once = None
from repro.hub.durability import DurabilityConfig
from repro.hub.safehome import SafeHome
from repro.workloads.chaos import chaos_workload

REPEATS = (1, 2, 4, 8)
CHECKPOINT_INTERVALS = (8, 32, 128, 0)   # 0 = checkpoints disabled


def build_home(repeats: int, checkpoint_every: int = 32,
               compact: bool = False, seed: int = 7) -> SafeHome:
    """A durable EV home running `repeats` copies of the chaos scene."""
    home = SafeHome(visibility="ev", seed=seed,
                    durability=DurabilityConfig(
                        checkpoint_every=checkpoint_every,
                        compact_on_checkpoint=compact))
    workload = chaos_workload(seed)
    home.load_workload(workload)
    # Stack additional rounds of the same routines, shifted in time, so
    # the WAL grows linearly with `repeats`.
    for round_index in range(1, repeats):
        offset = 20.0 * round_index
        for routine, at in workload.arrivals:
            home.invoke(routine, at=at + offset)
    return home


def crash_and_recover(repeats: int, checkpoint_every: int = 32,
                      compact: bool = False):
    """Run to near-completion, crash, recover; return (home, report)."""
    probe = build_home(repeats, checkpoint_every, compact)
    probe.run()
    total_events = probe.sim.events_processed

    home = build_home(repeats, checkpoint_every, compact)
    home.crash(after_events=max(1, total_events - 1))
    home.run()
    report = home.recover()
    home.run()
    return home, report


def bench_rows(repeats_list=REPEATS, intervals=CHECKPOINT_INTERVALS):
    rows = []
    for repeats in repeats_list:
        _home, report = crash_and_recover(repeats)
        rows.append({
            "sweep": "wal-length",
            "repeats": repeats,
            "checkpoint_every": 32,
            "wal_records": report.wal_records,
            "replayed_events": report.replayed_events,
            "replayed_records": report.replayed_records,
            "checkpoints_verified": report.checkpoints_verified,
            "recovery_ms": round(report.wall_s * 1e3, 3),
        })
    for interval in intervals:
        _home, report = crash_and_recover(
            4, checkpoint_every=interval, compact=bool(interval))
        rows.append({
            "sweep": "checkpoint-interval",
            "repeats": 4,
            "checkpoint_every": interval,
            "wal_records": report.wal_records,
            "replayed_events": report.replayed_events,
            "replayed_records": report.replayed_records,
            "checkpoints_verified": report.checkpoints_verified,
            "recovery_ms": round(report.wall_s * 1e3, 3),
        })
    return rows


@pytest.mark.parametrize("repeats", REPEATS)
def test_recovery_scales_with_wal(benchmark, repeats):
    _home, report = run_once(benchmark, crash_and_recover, repeats)
    assert report.replayed_events > 0
    assert report.wal_records > 0


def test_recovery_replay_lengths_grow():
    """More history ⇒ more replayed events (the WAL-length axis)."""
    lengths = [crash_and_recover(n)[1].replayed_events for n in (1, 4)]
    assert lengths[1] > lengths[0]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default="",
                        help="also write the rows to this path")
    args = parser.parse_args()
    rows = bench_rows()
    payload = json.dumps({"recovery": rows}, indent=2, sort_keys=True)
    print(payload)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
