"""Hub recovery time vs. WAL length and checkpoint interval.

Recovery is verified deterministic replay (docs/durability.md), so its
cost scales with how much history must be re-executed and re-checked:

* **WAL length** — scaled here by repeating the chaos workload's
  routine set N times before crashing at the very end, so the replayed
  event count grows linearly;
* **checkpoint interval** — more frequent checkpoints mean more digest
  captures during normal execution and more digests to verify during
  recovery, but (with compaction) a shorter observation suffix to
  compare record-by-record.

Thin wrapper over the registered ``recovery_replay`` (smoke) and
``recovery_sweep`` (full) benchmarks; the builders live in
:mod:`repro.bench.suites.recovery_util`.  Run standalone for the JSON
report::

    PYTHONPATH=src python benchmarks/bench_recovery.py

or through the unified harness::

    PYTHONPATH=src python -m repro bench --filter recovery_sweep
"""

import argparse
import json

import pytest

try:
    from benchmarks.conftest import run_once
except ModuleNotFoundError:  # standalone: python benchmarks/bench_....py
    run_once = None
from repro.bench.suites.recovery_util import build_home, crash_and_recover

REPEATS = (1, 2, 4, 8)
CHECKPOINT_INTERVALS = (8, 32, 128, 0)   # 0 = checkpoints disabled

__all__ = ["build_home", "crash_and_recover"]


def bench_rows(repeats_list=REPEATS, intervals=CHECKPOINT_INTERVALS):
    from repro.bench import call

    outcome = call("recovery_sweep", repeats_list=tuple(repeats_list),
                   intervals=tuple(intervals))
    return outcome["timing"]["rows"]


@pytest.mark.parametrize("repeats", REPEATS)
def test_recovery_scales_with_wal(benchmark, repeats):
    _home, report = run_once(benchmark, crash_and_recover, repeats)
    assert report.replayed_events > 0
    assert report.wal_records > 0


def test_recovery_replay_lengths_grow():
    """More history ⇒ more replayed events (the WAL-length axis)."""
    lengths = [crash_and_recover(n)[1].replayed_events for n in (1, 4)]
    assert lengths[1] > lengths[0]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default="",
                        help="also write the rows to this path")
    args = parser.parse_args()
    rows = bench_rows()
    payload = json.dumps({"recovery": rows}, indent=2, sort_keys=True)
    print(payload)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
