"""Extension benchmark: optimistic vs pessimistic concurrency control.

§4.1 (footnote 3) justifies SafeHome's pessimistic locking — "abort and
undo of routines are disruptive to the human experience" — and defers
optimistic approaches to future work for conflict-free scenarios.  This
sweep quantifies the trade-off across the conflict spectrum (Zipf α
controls contention): OCC's raw latency is competitive (it never waits
for locks), but it pays a large and rising abort/undo tax — dozens of
physically-executed commands rolled back per run, which is exactly the
"disruptive to the human experience" cost the paper cites — while EV
commits everything with zero undo.  The design choice is validated.

Thin wrapper over the registered ``occ_extension`` benchmark.
"""

from benchmarks.conftest import bench_rows, run_once
from repro.experiments.report import print_table


def test_occ_vs_ev_contention_sweep(benchmark):
    rows = run_once(benchmark, bench_rows, "occ_extension", trials=6,
                    alphas=(0.0, 0.5, 1.5))

    print_table("Extension: OCC vs EV across contention (Zipf alpha)",
                rows)

    def cell(model, alpha, key):
        return next(row[key] for row in rows
                    if row["model"] == model and row["alpha"] == alpha)

    # Low contention: OCC is competitive with EV.
    assert cell("occ", 0.0, "lat_p50") <= cell("ev", 0.0, "lat_p50") * 1.3
    # EV never performs disruptive undo; OCC's undo grows with
    # contention — the paper's reason for pessimistic locking.
    assert cell("ev", 1.5, "undo_commands_per_run") == 0
    assert cell("occ", 1.5, "abort_rate") > 0
    assert cell("occ", 1.5, "undo_commands_per_run") >= \
        cell("occ", 0.0, "undo_commands_per_run")
