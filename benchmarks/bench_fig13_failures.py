"""Fig 13 — effect of failures: abort rate and rollback overhead vs the
Must-command percentage (a, c; F=25%) and vs the failed-device
percentage (b, d; M=100%).

Paper shapes: abort rates rise with Must% and with F%; EV's rollback
overhead (intrusion on the user) is the smallest of all models, with
PSV higher (it aborts at the finish point) and GSV/S-GSV plateauing
around 50%/40%.

Thin wrapper over the registered ``failures`` benchmark.
"""

from benchmarks.conftest import bench_metrics, run_once
from repro.experiments.report import print_table
from repro.metrics.stats import mean


def test_fig13_failures(benchmark):
    data = run_once(benchmark, bench_metrics, "failures", trials=8)
    print_table("Fig 13a/13c: Must%% sweep (F=25%)", data["must_sweep"])
    print_table("Fig 13b/13d: failed-device%% sweep (M=100%)",
                data["failure_sweep"])

    def series(rows, model, x_key, y_key):
        return [row[y_key] for row in rows if row["model"] == model]

    for model in ("gsv", "sgsv", "psv", "ev"):
        must_aborts = series(data["must_sweep"], model, "must_pct",
                             "abort_rate")
        fail_aborts = series(data["failure_sweep"], model, "failed_pct",
                             "abort_rate")
        # Fig 13a: more must commands -> more aborts.
        assert must_aborts[-1] >= must_aborts[0]
        # Fig 13b: more failures -> more aborts; none without failures.
        assert fail_aborts[0] == 0.0
        assert fail_aborts[-1] > 0.1

    # Fig 13c/13d: EV rolls back the fewest commands (paper conclusion 2).
    def overall_rollback(model):
        rows = [row for row in
                data["must_sweep"] + data["failure_sweep"]
                if row["model"] == model and row["rollback_overhead"] > 0]
        return mean([row["rollback_overhead"] for row in rows])

    assert overall_rollback("ev") <= overall_rollback("psv")
    assert overall_rollback("ev") <= overall_rollback("gsv")
    assert overall_rollback("ev") <= overall_rollback("sgsv")


def test_fig13_ev_abort_exposure_with_recovering_failures(benchmark):
    """§7.4's headline: "Failures abort more routines in EV because it
    allows high concurrency."  The effect appears when failures recover
    and concurrency is high: EV packs every in-flight routine into the
    outage window, while GSV's serial schedule lets most routines run
    after the device recovers.  With permanent failures EV's rate is
    instead slightly *lower* (it alone serializes failure-after-last-
    touch events past the routine) — both regimes are recorded in
    EXPERIMENTS.md; this bench pins the recovering-failure regime."""
    from repro.experiments.runner import ExperimentSetup, run_workload
    from repro.workloads.micro import MicroParams, generate_microbenchmark

    def sweep():
        params = MicroParams(routines=60, concurrency=20, devices=20,
                             failed_device_pct=25.0, restart_after_s=60.0,
                             long_duration_s=120.0, short_duration_s=5.0)
        out = {}
        for model in ("ev", "gsv"):
            rates = []
            for trial in range(8):
                workload = generate_microbenchmark(params,
                                                   seed=400 + trial)
                setup = ExperimentSetup(model=model, seed=trial,
                                        check_final=False)
                _result, report, _c = run_workload(workload, setup,
                                                   trial=trial)
                rates.append(report.abort_rate)
            out[model] = mean(rates)
        return out

    rates = run_once(benchmark, sweep)
    print_table("Fig 13 (recovering failures, rho=20)",
                [{"model": m, "abort_rate": r} for m, r in rates.items()])
    # EV's exposure matches or exceeds GSV's in this regime.
    assert rates["ev"] >= rates["gsv"] * 0.8
