"""Fig 2 / Table 1 — the 5-routine example under GSV, PSV and EV.

Paper: GSV finishes in 8 time units, PSV in 5, EV in 3; EV shows
temporary incongruence but a serially equivalent end state.

Thin wrapper over the registered ``example_timeline`` smoke benchmark.
"""

import pytest

from benchmarks.conftest import bench_rows, run_once
from repro.experiments.report import print_table


def test_fig02_example_timeline(benchmark):
    rows = run_once(benchmark, bench_rows, "example_timeline")
    print_table("Fig 2: five concurrent routines (time units of 60s)",
                rows)
    by_model = {row["model"]: row for row in rows}
    assert by_model["gsv"]["makespan_units"] == pytest.approx(8, abs=0.5)
    assert by_model["psv"]["makespan_units"] == pytest.approx(5, abs=0.5)
    assert by_model["ev"]["makespan_units"] == pytest.approx(3, abs=0.5)
    # Latencies order exactly as Table 1 predicts.
    assert by_model["ev"]["mean_latency_units"] < \
        by_model["psv"]["mean_latency_units"] < \
        by_model["gsv"]["mean_latency_units"]
    # Serial equivalence holds for every model (Table 1 "End State").
    assert all(row["final_serializable"] for row in rows)
    # Only EV shows temporary incongruence (Table 1 "User Visibility").
    assert by_model["gsv"]["temporary_incongruence"] == 0
    assert by_model["psv"]["temporary_incongruence"] == 0
