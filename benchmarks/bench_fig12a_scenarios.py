"""Fig 12a — latency, temporary incongruence and parallelism for the
Morning, Party and Factory scenarios under WV/EV/PSV/GSV.

Paper shapes: EV's latency tracks WV (0-23% worse); GSV's is ~16x worse
at the median with ~3x less parallelism; only EV (among the fast ones)
plus PSV/GSV keep serial equivalence; the Party scenario's long routine
hurts PSV (head-of-line blocking) but not EV.

Thin wrapper over the registered ``scenarios`` benchmark.
"""

from benchmarks.conftest import bench_rows, run_once
from repro.experiments.report import print_table


def _by(rows, scenario):
    return {row["model"]: row for row in rows
            if row["scenario"] == scenario}


def test_fig12a_scenarios(benchmark):
    rows = run_once(benchmark, bench_rows, "scenarios", trials=10)
    print_table("Fig 12a: scenario sweeps", rows)

    for scenario in ("morning", "party"):
        models = _by(rows, scenario)
        # EV tracks WV at the tail (paper: comparable at median and
        # p95; the factory tail is noisier — §7.2 notes EV delays some
        # back-to-back routines there — so we assert its median below).
        assert models["ev"]["lat_p90"] <= models["wv"]["lat_p90"] * 1.5
    for scenario in ("morning", "party", "factory"):
        models = _by(rows, scenario)
        # GSV is far slower and strictly the slowest.
        assert models["gsv"]["lat_p50"] > \
            3 * models["ev"]["lat_p50"]
        # Strict models show no temporary incongruence.
        assert models["gsv"]["temp_incong"] == 0
        assert models["psv"]["temp_incong"] == 0
        # Parallelism: EV >> GSV (paper: ~3x median).
        assert models["ev"]["parallelism"] > \
            2 * models["gsv"]["parallelism"]

    # Morning + factory: EV's median stays close to WV's (0-23.1% in
    # the paper; slack for reduced trials).
    for scenario in ("morning", "factory"):
        models = _by(rows, scenario)
        assert models["ev"]["lat_p50"] <= models["wv"]["lat_p50"] * 1.6

    # Party: the long routine head-of-line blocks PSV, not EV (the
    # paper's "notable exception": PSV's benefit over GSV shrinks).
    party = _by(rows, "party")
    assert party["ev"]["lat_p90"] < party["psv"]["lat_p90"]
    assert party["ev"]["lat_p50"] < party["psv"]["lat_p50"]
