"""Shared helpers for the figure-regeneration benchmarks.

Each ``bench_*.py`` file is a thin wrapper over one entry in the
unified benchmark registry (:mod:`repro.bench`): it fetches the
entry's rows through :func:`repro.bench.call` (so the script and
``repro bench`` can never drift apart), asserts the paper's figure
shapes, and prints the same tables the figure reports.  Trial counts
are reduced relative to the paper's 1M-trial datapoints; shapes are
stable at these counts.
"""

from repro.bench import call


def run_once(benchmark, fn, *args, **kwargs):
    """Run a sweep exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def bench_metrics(name, **params):
    """Invoke a registered benchmark once; return its metrics dict."""
    return call(name, **params)["metrics"]


def bench_rows(name, **params):
    """Invoke a registered benchmark once; return its ``rows`` table."""
    return bench_metrics(name, **params)["rows"]
