"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark runs the corresponding experiment driver once (they are
full parameter sweeps, not microkernels) and prints the same rows/series
the paper's figure reports.  Trial counts are reduced relative to the
paper's 1M-trial datapoints; shapes are stable at these counts (see
EXPERIMENTS.md for the recorded outputs and paper-vs-measured notes).
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run a sweep exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
