"""Fig 15a-c — lock-leasing ablation and stretch factor under the
Timeline scheduler.

Paper: turning both lease kinds off raises latency 3x-5.5x; disabling
post-leases hurts more (71-107%) than disabling pre-leases (29-50%);
disabling leases reduces temporary incongruence; the stretch-factor
distribution first widens then narrows as routines grow.

Thin wrapper over the registered ``leasing`` and ``stretch`` benchmarks.
"""

from benchmarks.conftest import bench_rows, run_once
from repro.experiments.report import print_table


def test_fig15ab_leasing_ablation(benchmark):
    rows = run_once(benchmark, bench_rows, "leasing", trials=8,
                    concurrencies=(2, 4, 8))
    print_table("Fig 15a/15b: leasing ablation (EV/TL)", rows)

    def lat(variant, rho):
        return next(row["lat_p50"] for row in rows
                    if row["variant"] == variant and row["rho"] == rho)

    def incong(variant, rho):
        return next(row["temp_incong"] for row in rows
                    if row["variant"] == variant and row["rho"] == rho)

    for rho in (4, 8):
        # Leasing reduces latency; post-leases matter more than
        # pre-leases (paper: 71-107% vs 29-50% increases).
        assert lat("both-on", rho) < lat("both-off", rho)
        assert lat("post-off", rho) >= lat("pre-off", rho) * 0.9
        # Disabling leases reduces temporary incongruence (Fig 15b).
        assert incong("both-off", rho) <= incong("both-on", rho)


def test_fig15c_stretch_factor(benchmark):
    rows = run_once(benchmark, bench_rows, "stretch", trials=8,
                    command_counts=(2, 4, 8))
    print_table("Fig 15c: stretch factor vs routine size", rows)
    # Stretch exists under contention but stays bounded.
    for row in rows:
        assert row["stretch_p50"] >= 1.0
        assert row["stretch_p99"] < 20.0
