"""Fleet scale-out: homes/sec throughput at N ∈ {1, 10, 100, 1000}.

Thin wrapper over the registered ``fleet_scale`` (smoke) and
``fleet_scale_sweep`` (full) benchmarks.  Run standalone for the quick
table::

    PYTHONPATH=src python benchmarks/bench_fleet_scale.py

or through the unified harness for calibrated min-of-N timings and the
baseline gate::

    PYTHONPATH=src python -m repro bench --filter fleet_scale \
        --baseline benchmarks/baseline.json

The serial backend is the baseline; on multi-core machines pass
``--backend process`` (standalone mode) to measure pool speedup.
"""

import argparse
import time

import pytest

try:
    from benchmarks.conftest import run_once
except ModuleNotFoundError:  # standalone: python benchmarks/bench_....py
    run_once = None
from repro.experiments.report import print_table
from repro.fleet import FleetConfig, FleetEngine

SCALES = (1, 10, 100, 1000)


def run_fleet_scale(homes: int, backend: str = "serial",
                    workers: int = 0, seed: int = 42):
    engine = FleetEngine(FleetConfig(
        homes=homes, seed=seed, backend=backend, workers=workers,
        # The scale sweep measures engine throughput; the O(n!)-ish
        # final-serializability search is benchmarked elsewhere.
        check_final=False))
    return engine.run()


@pytest.mark.parametrize("homes", SCALES)
def test_fleet_scale(benchmark, homes):
    result = run_once(benchmark, run_fleet_scale, homes)
    assert result.aggregate["homes"] == homes
    assert result.aggregate["routines"] > 0
    print_table(f"fleet N={homes}", [{
        "homes": homes,
        "routines": result.aggregate["routines"],
        "homes_per_sec": round(result.homes_per_second, 1),
        "lat_p99": round(result.aggregate["latency"]["p99"], 2),
        "abort_rate": round(result.aggregate["abort_rate"], 4),
    }])


def test_fleet_scale_registered_smoke_entry(benchmark):
    """The harness entry reports the same aggregate as a direct run."""
    from repro.bench import call

    outcome = run_once(benchmark, call, "fleet_scale", homes=25)
    direct = run_fleet_scale(25)
    assert outcome["homes"] == 25
    assert outcome["metrics"]["routines"] == \
        direct.aggregate["routines"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="serial",
                        choices=("serial", "thread", "process"))
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--scales", type=int, nargs="*",
                        default=list(SCALES))
    args = parser.parse_args()

    rows = []
    for homes in args.scales:
        started = time.perf_counter()
        result = run_fleet_scale(homes, backend=args.backend,
                                 workers=args.workers, seed=args.seed)
        elapsed = time.perf_counter() - started
        rows.append({
            "homes": homes,
            "backend": args.backend,
            "wall_s": round(elapsed, 3),
            "homes_per_sec": round(homes / elapsed, 1),
            "routines": result.aggregate["routines"],
            "lat_p50": round(result.aggregate["latency"]["p50"], 2),
            "lat_p99": round(result.aggregate["latency"]["p99"], 2),
            "abort_rate": round(result.aggregate["abort_rate"], 4),
        })
    print_table("Fleet scale-out (heterogeneous mix)", rows)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
