"""Ablations of SafeHome's fixed design choices (beyond the paper's
figures; DESIGN.md motivates each sweep).

* leniency factor (paper fixes 1.1x),
* Timeline duration-estimate error,
* failure-detector ping period (paper fixes 1 s),
* network jitter behind Fig 1's incongruence.

Thin wrapper over the registered ``ablations`` benchmark; each test
requests exactly one of its sweeps.
"""

from benchmarks.conftest import bench_metrics, run_once
from repro.experiments.report import print_table


def _sweep(name, **params):
    return bench_metrics("ablations", sweeps=(name,), **params)[name]


def test_ablation_leniency(benchmark):
    rows = run_once(benchmark, _sweep, "leniency", trials=5)
    print_table("Ablation: lease-revocation leniency factor "
                "(estimate error 50%)", rows)
    # Tighter leniency under noisy estimates -> no fewer aborts than
    # generous leniency.
    assert rows[0]["abort_rate"] >= rows[-1]["abort_rate"]


def test_ablation_estimate_error(benchmark):
    rows = run_once(benchmark, _sweep, "estimate_error", trials=5)
    print_table("Ablation: Timeline duration-estimate error", rows)
    # Even 100% estimate error must not break execution (placements
    # degrade gracefully; work-conserving execution absorbs it).
    for row in rows:
        assert row["abort_rate"] <= 0.2
    # Perfect estimates are no slower than wildly wrong ones.
    assert rows[0]["lat_p50"] <= rows[-1]["lat_p50"] * 1.5


def test_ablation_detector_period(benchmark):
    rows = run_once(benchmark, _sweep, "detector_period", trials=4)
    print_table("Ablation: failure-detector ping period", rows)
    # Detection lag grows with the ping period and is bounded by it
    # (plus latency/timeout), except when implicit detection fires first.
    lags = [row["detection_lag_mean_s"] for row in rows]
    assert lags[0] <= lags[-1]
    for row in rows:
        assert row["detection_lag_mean_s"] <= row["ping_period_s"] + 1.0


def test_ablation_network_jitter(benchmark):
    rows = run_once(benchmark, _sweep, "network_jitter",
                    jitter_trials=30)
    print_table("Ablation: network jitter vs WV incongruence (Fig 1's "
                "mechanism)", rows)
    # Zero jitter -> deterministic ordering -> no incongruence; jitter
    # creates it.
    assert rows[0]["incongruent_fraction"] == 0.0
    assert rows[-1]["incongruent_fraction"] > 0.2
