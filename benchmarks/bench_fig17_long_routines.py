"""Fig 17 — impact of long-running routines on EV/Timeline.

Paper shapes: longer long-commands (|L|) spread routines out in time and
*reduce* temporary incongruence, while raising order mismatch; a higher
fraction of long routines (L%) raises conflict and temporary
incongruence while order mismatch falls (post-leases dominate).  Order
mismatch stays low overall (3-10%).

Thin wrapper over the registered ``long_routines`` benchmark.
"""

from benchmarks.conftest import bench_metrics, run_once
from repro.experiments.report import print_table


def test_fig17_long_routines(benchmark):
    data = run_once(benchmark, bench_metrics, "long_routines", trials=8,
                    long_durations=(60.0, 300.0, 900.0),
                    long_pcts=(0, 10, 25, 50))
    print_table("Fig 17a: long-command duration sweep (EV/TL)",
                data["duration_sweep"])
    print_table("Fig 17b: long-routine percentage sweep (EV/TL)",
                data["pct_sweep"])

    duration_rows = data["duration_sweep"]
    # Longer |L| -> temporally spread routines -> less temporary
    # incongruence.
    assert duration_rows[-1]["temp_incong"] <= \
        duration_rows[0]["temp_incong"] + 0.05

    pct_rows = data["pct_sweep"]
    # More long routines -> more conflict -> more temporary
    # incongruence than the all-short baseline.
    assert pct_rows[-1]["temp_incong"] >= pct_rows[0]["temp_incong"] - 0.05

    # Order mismatch stays low (paper: 3-10%).
    for row in duration_rows + pct_rows:
        assert row["order_mismatch"] <= 0.25
