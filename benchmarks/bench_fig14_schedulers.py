"""Fig 14 — scheduling policies under EV: FCFS vs JiT vs Timeline.

Paper: at ρ=4 Timeline is 2.36x / 1.33x faster than FCFS / JiT and
reaches 2.0-2.3x their parallelism; the ordering TL <= JiT <= FCFS in
latency holds across concurrency levels.

Thin wrapper over the registered ``schedulers`` benchmark.
"""

from benchmarks.conftest import bench_rows, run_once
from repro.experiments.report import print_table


def test_fig14_schedulers(benchmark):
    rows = run_once(benchmark, bench_rows, "schedulers", trials=8,
                    concurrencies=(1, 2, 4, 8))
    print_table("Fig 14: FCFS vs JiT vs Timeline (EV)", rows)

    def metric(scheduler, rho, key):
        return next(row[key] for row in rows
                    if row["scheduler"] == scheduler
                    and row["rho"] == rho)

    for rho in (4, 8):
        tl = metric("timeline", rho, "lat_p50")
        jit = metric("jit", rho, "lat_p50")
        fcfs = metric("fcfs", rho, "lat_p50")
        # Ordering: TL fastest, FCFS slowest (small tolerance).
        assert tl <= jit * 1.05
        assert tl <= fcfs * 1.05
        assert fcfs >= tl  # TL strictly no worse than FCFS
        # Parallelism: TL >= FCFS.
        assert metric("timeline", rho, "parallelism") >= \
            metric("fcfs", rho, "parallelism") * 0.95

    # The benefit appears with concurrency: at rho=1 they are equal-ish.
    assert abs(metric("timeline", 1, "lat_p50")
               - metric("fcfs", 1, "lat_p50")) < \
        0.25 * metric("fcfs", 1, "lat_p50")
