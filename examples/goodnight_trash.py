#!/usr/bin/env python
"""The paper's §1 motivating incident: Rtrash vs Rgoodnight.

Every Monday at 11pm a timed routine opens the garage, sends the robot
trash can to the driveway and closes the garage.  One night the user
goes to bed at the same moment and runs "goodnight", whose last command
also closes the garage.  Today's hubs can slam the garage on the trash
can; SafeHome serializes the two routines.

Also demonstrates the trigger dispatcher, the user feedback log, and
the ASCII execution timeline.

Run:  python examples/goodnight_trash.py
"""

from repro import SafeHome
from repro.core.command import Command
from repro.core.routine import Routine
from repro.hub.dispatcher import Dispatcher
from repro.hub.log import FeedbackLog
from repro.metrics.timeline import render_timeline


def build() -> tuple:
    home = SafeHome(visibility="ev", scheduler="timeline")
    home.add_device("garage", "garage")
    home.add_device("trash_can", "trash-can")
    home.add_device("light", "porch-light")
    home.add_device("door_lock", "front-door")

    # The garage must stay open for the trash can's whole trip, so the
    # routine holds it with one long OPEN command before closing.
    trash = Routine(name="trash-night", commands=[
        Command(device_id=0, value="OPEN", duration=95.0),
        Command(device_id=0, value="CLOSED", duration=5.0),
        Command(device_id=1, value="DRIVEWAY", duration=2.0),
    ])
    goodnight = Routine(name="goodnight", commands=[
        Command(device_id=2, value="OFF", duration=2.0, must=False),
        Command(device_id=3, value="LOCKED", duration=3.0),
        Command(device_id=0, value="CLOSED", duration=5.0),
    ])
    home.register_routine(trash)
    home.register_routine(goodnight)

    dispatcher = Dispatcher(home.sim, home.registry, home.bank,
                            home.controller)
    log = FeedbackLog(home.controller)
    return home, dispatcher, log


def main() -> None:
    home, dispatcher, log = build()
    # The Monday-11pm trigger (one firing in this run)...
    dispatcher.every("trash-night", period=7 * 24 * 3600.0,
                     start_at=0.0, count=1)
    # ...and the user heading to bed 10 seconds later.
    home.sim.call_at(10.0, dispatcher.invoke, "goodnight", "user")

    result = home.run()

    print("=== execution timeline ===")
    names = {d.device_id: d.name for d in home.registry}
    print(render_timeline(result, names))

    print("\n=== user feedback log ===")
    print(log.render())

    print("\n=== end state ===")
    for device in home.registry:
        print(f"  {device.name:12s} = {device.state}")

    # The invariant today's hubs violate: the garage was never closed
    # while the trash can's trip was in progress, and everything ended
    # serially equivalent.
    garage_writes = result.device_write_logs[0]
    closed_times = [t for (t, value, _s) in garage_writes
                    if value == "CLOSED"]
    trash_run = next(r for r in result.runs if r.name == "trash-night")
    trip_end = trash_run.executions[0].finished_at
    assert all(t >= trip_end - 1e-9 for t in closed_times), \
        "garage closed during the trash can's trip!"
    print("\nNo garage-on-trash-can incident: serialization held.")


if __name__ == "__main__":
    main()
