#!/usr/bin/env python
"""Scheduler tour (§5): FCFS vs JiT vs Timeline on a contended workload,
plus the leasing ablation of Fig 15.

A long "laundry" routine pins the washer for 20 minutes while touching
the hallway light late; short routines keep arriving for the same light.
FCFS makes them queue behind laundry; JiT and Timeline lease the light's
lock around it.

Run:  python examples/scheduler_tour.py
"""

from repro import Command, ControllerConfig, Routine
from repro.experiments.report import print_table
from repro.experiments.runner import ExperimentSetup, run_workload
from repro.metrics.stats import mean
from repro.workloads.base import Workload

WASHER, LIGHT, FAN = 0, 1, 2


def contended_workload() -> Workload:
    laundry = Routine(name="laundry", commands=[
        Command(device_id=WASHER, value="ON", duration=1200.0),
        Command(device_id=LIGHT, value="OFF", duration=2.0),
    ])
    arrivals = [(laundry, 0.0)]
    for index in range(6):
        short = Routine(name=f"light-{index}", commands=[
            Command(device_id=LIGHT, value="ON" if index % 2 else "OFF",
                    duration=2.0),
            Command(device_id=FAN, value="ON", duration=5.0),
        ])
        arrivals.append((short, 10.0 + 30.0 * index))
    return Workload(
        name="contended",
        devices=[("washer", "washer"), ("light", "hall-light"),
                 ("fan", "hall-fan")],
        arrivals=arrivals)


def scheduler_comparison() -> None:
    rows = []
    for scheduler in ("fcfs", "jit", "timeline"):
        setup = ExperimentSetup(model="ev", scheduler=scheduler, seed=1,
                                check_final=True, exhaustive_limit=7)
        result, report, _controller = run_workload(contended_workload(),
                                                   setup)
        short_latencies = [run.latency for run in result.committed
                           if run.name.startswith("light")]
        rows.append({
            "scheduler": scheduler,
            "short_routine_mean_latency_s": mean(short_latencies),
            "makespan_s": result.makespan,
            "serializable": report.final_congruent,
        })
    print_table("Six short light routines vs one 20-min laundry routine",
                rows)
    fcfs, jit, tl = (r["short_routine_mean_latency_s"] for r in rows)
    print(f"Timeline speedup over FCFS for short routines: "
          f"{fcfs / tl:.1f}x  (pre-leasing around the long routine)")


def leasing_ablation() -> None:
    rows = []
    for label, (pre, post) in {
            "both-on": (True, True), "pre-off": (False, True),
            "post-off": (True, False), "both-off": (False, False)}.items():
        config = ControllerConfig(pre_lease=pre, post_lease=post)
        setup = ExperimentSetup(model="ev", scheduler="timeline",
                                config=config, seed=1, check_final=False)
        result, _report, _controller = run_workload(contended_workload(),
                                                    setup)
        rows.append({
            "leases": label,
            "mean_latency_s": mean(result.latencies()),
            "makespan_s": result.makespan,
        })
    print_table("Leasing ablation on the same workload (Fig 15a shape)",
                rows)


if __name__ == "__main__":
    scheduler_comparison()
    leasing_ablation()
