#!/usr/bin/env python
"""Smart factory: the 50-stage assembly line scenario (§7.2).

Each of 50 workers runs stage routines touching local devices (p=0.6),
devices shared with neighbouring stages (p=0.3) and 5 global devices
(p=0.1), closed-loop so nobody idles.  Shows EV's scheduler keeping a
whole factory serializable while sustaining ~WV-level throughput, and
how a failed global device ripples differently across models.

Run:  python examples/factory_line.py
"""

from repro.devices.failures import FailurePlan
from repro.experiments.report import print_table
from repro.experiments.runner import ExperimentSetup, run_workload
from repro.metrics.stats import mean, percentile
from repro.workloads.scenarios import factory_scenario


def healthy_factory() -> None:
    rows = []
    for model in ("wv", "ev", "psv", "gsv"):
        workload = factory_scenario(seed=7, stages=50,
                                    routines_per_stage=3)
        setup = ExperimentSetup(model=model, seed=7, check_final=False)
        result, report, _controller = run_workload(workload, setup)
        rows.append({
            "model": model,
            "makespan_s": result.makespan,
            "lat_p50_s": report.latency["p50"],
            "parallelism": report.parallelism_mean,
            "temp_incongruence": report.temporary_incongruence,
        })
    print_table("Healthy 50-stage factory (150 jobs, closed loop)", rows)


def factory_with_dead_labeler() -> None:
    rows = []
    for model in ("ev", "psv", "gsv", "sgsv"):
        workload = factory_scenario(seed=7, stages=50,
                                    routines_per_stage=3)
        # Global device 0 (a labeler every stage may need) dies early
        # and comes back a minute later.
        labeler = workload.device_count() - 5
        workload.failure_plans.append(
            FailurePlan(labeler, fail_at=30.0, restart_at=90.0))
        setup = ExperimentSetup(model=model, seed=7, check_final=False)
        result, report, _controller = run_workload(workload, setup)
        rows.append({
            "model": model,
            "aborted_jobs": report.aborted,
            "abort_rate": report.abort_rate,
            "rollback_overhead": report.rollback_overhead_mean,
            "makespan_s": result.makespan,
        })
    print_table("Same factory with global labeler down 30s-90s", rows)
    gsv = next(r for r in rows if r["model"] == "gsv")
    ev = next(r for r in rows if r["model"] == "ev")
    print(f"EV aborts more jobs ({ev['aborted_jobs']} vs GSV's "
          f"{gsv['aborted_jobs']}) because its concurrency exposes more "
          "in-flight routines to the failure (§7.4) — but finishes the "
          f"shift {gsv['makespan_s'] / ev['makespan_s']:.0f}x sooner and "
          "rolls back fewer commands per abort.")


if __name__ == "__main__":
    healthy_factory()
    factory_with_dead_labeler()
