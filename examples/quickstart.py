#!/usr/bin/env python
"""Quickstart: build a small smart home, run a routine atomically.

This is the paper's motivating "cooling" example (§1): close the window,
then turn on the AC — with SafeHome's atomicity, the home never ends in
the energy-wasting window-open+AC-on state, even when a device dies.

Run:  python examples/quickstart.py
"""

from repro import SafeHome


def build_home(visibility: str = "ev") -> SafeHome:
    home = SafeHome(visibility=visibility, scheduler="timeline")
    window = home.add_device("window", "living-window")
    window.state = window.initial_state = "OPEN"  # summer morning
    home.add_device("ac", "living-ac")
    home.add_device("light", "living-light")
    home.register_routine_spec({
        "routineName": "cooling",
        "commands": [
            {"device": "living-window", "action": "CLOSED",
             "durationSec": 3},
            {"device": "living-ac", "action": "ON", "durationSec": 5},
        ],
    })
    home.register_routine_spec({
        "routineName": "movie-night",
        "commands": [
            {"device": "living-light", "action": "OFF", "durationSec": 1,
             "priority": "BEST_EFFORT"},
            {"device": "living-ac", "action": "ON", "durationSec": 2},
        ],
    })
    return home


def happy_path() -> None:
    print("=== happy path: cooling completes atomically ===")
    home = build_home()
    home.invoke("cooling")
    result = home.run()
    run = result.runs[0]
    print(f"routine {run.name!r}: {run.status.value} "
          f"(latency {run.latency:.2f}s)")
    print(f"window={home.state_of('living-window')} "
          f"ac={home.state_of('living-ac')}")
    assert home.state_of("living-window") == "CLOSED"
    assert home.state_of("living-ac") == "ON"


def ac_dies_mid_routine() -> None:
    print("\n=== failure path: the AC dies before its command ===")
    home = build_home()
    home.plan_failure("living-ac", fail_at=1.0)
    home.invoke("cooling")
    result = home.run()
    run = result.runs[0]
    print(f"routine {run.name!r}: {run.status.value} "
          f"({run.abort_reason})")
    print(f"window={home.state_of('living-window')} "
          f"ac={home.state_of('living-ac')}")
    # Atomicity: the already-closed window was rolled back to OPEN, so
    # the home is not stuck half-executed (closed window, dead AC).
    assert run.status.value == "aborted"
    assert home.state_of("living-window") == "OPEN"


def concurrent_routines_stay_serializable() -> None:
    print("\n=== two users, conflicting routines, serial-equivalent end ===")
    home = build_home()
    home.invoke("cooling", at=0.0)
    home.invoke("movie-night", at=0.5)
    result = home.run()
    for run in result.runs:
        print(f"routine {run.name!r}: {run.status.value} "
              f"(waited {run.wait_time:.2f}s)")
    from repro.metrics.congruence import final_state_serializable
    initial = {0: "OPEN", 1: "OFF", 2: "OFF"}
    serializable = final_state_serializable(result, initial)
    print("end state serially equivalent:", serializable)
    assert serializable


if __name__ == "__main__":
    happy_path()
    ac_dies_mid_routine()
    concurrent_routines_stay_serializable()
