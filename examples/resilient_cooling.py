#!/usr/bin/env python
"""Failure serialization tour (§3): one routine, one failing device,
four visibility models — each reacts differently, exactly as Table 2's
last four rows describe.

The routine is Rcooling = {window:CLOSE; AC:ON}.  The window fails
*after* it was successfully closed, while the AC is still running.

* GSV   — aborts: any failure of a touched device during execution.
* PSV   — aborts if the window is still down at the finish point,
          completes if the window recovered in time.
* EV    — completes either way: the failure is serialized after the
          routine in the equivalent serial order.
* WV    — never even notices.

Run:  python examples/resilient_cooling.py
"""

from repro import SafeHome
from repro.experiments.report import print_table


def run_cooling(model: str, restart_at=None):
    home = SafeHome(visibility=model)
    home.add_device("window", "window")
    home.add_device("ac", "ac")
    home.register_routine_spec({
        "routineName": "cooling",
        "commands": [
            {"device": "window", "action": "CLOSED", "durationSec": 2},
            {"device": "ac", "action": "ON", "durationSec": 30},
        ],
    })
    home.plan_failure("window", fail_at=10.0, restart_at=restart_at)
    home.invoke("cooling")
    result = home.run()
    run = result.runs[0]
    return {
        "model": model,
        "window_restarts": restart_at is not None,
        "outcome": run.status.value,
        "reason": run.abort_reason or "-",
        "ac_end_state": result.end_state[1],
    }


def main() -> None:
    rows = []
    for model in ("wv", "gsv", "psv", "ev"):
        rows.append(run_cooling(model))
    rows.append(run_cooling("psv", restart_at=20.0))
    print_table("Rcooling with a window failure at t=10s "
                "(window closed at ~2s; AC runs until ~32s)", rows)

    by_key = {(r["model"], r["window_restarts"]): r for r in rows}
    assert by_key[("gsv", False)]["outcome"] == "aborted"
    assert by_key[("psv", False)]["outcome"] == "aborted"
    assert by_key[("psv", True)]["outcome"] == "committed"
    assert by_key[("ev", False)]["outcome"] == "committed"
    assert by_key[("wv", False)]["outcome"] == "committed"
    print("All four models behaved exactly as §3 / Table 2 prescribe.")


if __name__ == "__main__":
    main()
