#!/usr/bin/env python
"""The visibility spectrum on one workload (Table 1, §2.1).

Runs the same four concurrent routines under WV, GSV, PSV, EV and OCC
and renders each execution as an ASCII timeline, so you can *see* the
trade-off: GSV's serial staircase, PSV's partial overlap, EV's
pipelining, WV's free-for-all and OCC's abort-and-retry.

Run:  python examples/visibility_spectrum.py
"""

from repro.core.command import Command
from repro.core.controller import ControllerConfig, RunResult
from repro.core.routine import Routine
from repro.core.visibility import make_controller
from repro.devices.driver import Driver
from repro.devices.network import LatencyModel
from repro.devices.registry import DeviceRegistry
from repro.metrics.congruence import (final_state_serializable,
                                      temporary_incongruence)
from repro.metrics.timeline import render_timeline
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

COFFEE, PANCAKE, LIGHTS, SPEAKER = 0, 1, 2, 3


def workload():
    """Two breakfasts racing, plus a lighting scene and an announcement."""
    breakfast = [
        Command(device_id=COFFEE, value="BREW", duration=40.0),
        Command(device_id=COFFEE, value="OFF", duration=2.0),
        Command(device_id=PANCAKE, value="COOK", duration=50.0),
        Command(device_id=PANCAKE, value="OFF", duration=2.0),
    ]
    return [
        (Routine(name="brk-amy", commands=list(breakfast)), 0.0),
        (Routine(name="brk-bob", commands=list(breakfast)), 1.0),
        (Routine(name="scene", commands=[
            Command(device_id=LIGHTS, value="WARM", duration=5.0),
            Command(device_id=SPEAKER, value="JAZZ", duration=30.0),
        ]), 2.0),
        (Routine(name="announce", commands=[
            Command(device_id=SPEAKER, value="ANNOUNCE", duration=8.0),
            Command(device_id=LIGHTS, value="BRIGHT", duration=3.0),
        ]), 3.0),
    ]


def run_model(model: str) -> RunResult:
    sim = Simulator()
    registry = DeviceRegistry()
    for type_name, name in [("coffee_maker", "coffee"),
                            ("pancake_maker", "pancake"),
                            ("light", "lights"), ("speaker", "speaker")]:
        registry.create(type_name, name)
    driver = Driver(sim=sim, registry=registry,
                    latency=LatencyModel.deterministic(20.0),
                    streams=RandomStreams(seed=1))
    controller = make_controller(model, sim, registry, driver,
                                 ControllerConfig())
    for routine, at in workload():
        controller.submit(routine, when=at)
    sim.run(max_events=500_000)
    return RunResult.from_controller(controller)


def main() -> None:
    names = {COFFEE: "coffee", PANCAKE: "pancake",
             LIGHTS: "lights", SPEAKER: "speaker"}
    initial = {COFFEE: "OFF", PANCAKE: "OFF", LIGHTS: "OFF",
               SPEAKER: "OFF"}
    summary = []
    for model in ("gsv", "psv", "ev", "occ", "wv"):
        result = run_model(model)
        print(f"\n===== {model.upper()} =====")
        print(render_timeline(result, names, width=64))
        committed = len(result.committed)
        summary.append({
            "model": model,
            "makespan_s": round(result.makespan, 1),
            "committed": committed,
            "aborted": len(result.aborted),
            "temp_incongruence": round(
                temporary_incongruence(result), 3),
            "serializable": final_state_serializable(result, initial),
        })
    from repro.experiments.report import print_table
    print_table("Table 1, measured", summary)


if __name__ == "__main__":
    main()
