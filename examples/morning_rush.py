#!/usr/bin/env python
"""The Morning Rush: the paper's chaotic 4-user scenario (§7.2).

29 routines over 25 minutes, 31 devices, 4 family members — compare how
the four visibility models handle it.  Reproduces the shape of Fig 12a's
top row: EV's latency tracks WV while GSV's explodes, and only the
serializing models keep the home congruent.

Run:  python examples/morning_rush.py
"""

from repro.experiments.report import print_table
from repro.experiments.runner import ExperimentSetup, run_workload
from repro.metrics.stats import percentile
from repro.workloads.scenarios import morning_scenario


def main(trials: int = 5) -> None:
    rows = []
    for model in ("wv", "ev", "psv", "gsv"):
        latencies, waits, incongruence, parallelism = [], [], [], []
        aborted = 0
        for trial in range(trials):
            workload = morning_scenario(seed=100 + trial)
            setup = ExperimentSetup(model=model, seed=trial,
                                    check_final=False)
            result, report, _controller = run_workload(workload, setup,
                                                       trial=trial)
            latencies.extend(result.latencies())
            waits.extend(r.wait_time for r in result.runs
                         if r.wait_time is not None)
            incongruence.append(report.temporary_incongruence)
            parallelism.append(report.parallelism_mean)
            aborted += report.aborted
        rows.append({
            "model": model,
            "lat_p50_s": percentile(latencies, 50),
            "lat_p95_s": percentile(latencies, 95),
            "wait_p50_s": percentile(waits, 50),
            "temp_incongruence": sum(incongruence) / len(incongruence),
            "parallelism": sum(parallelism) / len(parallelism),
            "aborted": aborted,
        })
    print_table(f"Morning scenario x{trials} trials "
                "(29 routines, 31 devices, 4 users)", rows)

    ev = next(r for r in rows if r["model"] == "ev")
    wv = next(r for r in rows if r["model"] == "wv")
    gsv = next(r for r in rows if r["model"] == "gsv")
    print(f"EV vs WV median latency: {ev['lat_p50_s'] / wv['lat_p50_s']:.2f}x"
          f"   (paper: EV within 0-23% of WV)")
    print(f"GSV vs EV median latency: "
          f"{gsv['lat_p50_s'] / ev['lat_p50_s']:.1f}x"
          f"   (paper: ~16x)")


if __name__ == "__main__":
    main()
