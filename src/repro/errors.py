"""Exception hierarchy for the SafeHome reproduction."""


class SafeHomeError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(SafeHomeError):
    """The discrete-event simulator was used incorrectly."""


class DeviceError(SafeHomeError):
    """A device-level problem (unknown device, bad value, ...)."""


class DeviceUnavailableError(DeviceError):
    """A command was issued to a failed device."""


class RoutineSpecError(SafeHomeError):
    """A routine definition is malformed."""


class LineageInvariantError(SafeHomeError):
    """An operation would violate one of the lineage-table invariants."""


class SchedulingError(SafeHomeError):
    """The scheduler could not place a routine."""


class HubCrashedError(SafeHomeError):
    """An operation was attempted on a crashed hub (recover() first)."""


class RecoveryError(SafeHomeError):
    """Hub recovery failed (replay diverged from the write-ahead log)."""


class MigrationError(SafeHomeError):
    """A live visibility-model migration failed mid-replay.

    The hub is left crashed with its pre-migration WAL intact for
    post-mortem; a fleet supervisor treats the home as failed.
    """


class PlanError(SafeHomeError):
    """A versioned fleet plan is malformed (schema violation)."""


class ServeError(SafeHomeError):
    """Service-mode hub misuse (bad pacing config, unknown tenant, ...)."""


class AdmissionRejected(ServeError):
    """A submission was turned away by admission control (429-style).

    ``retry_after_s`` is a wall-clock hint: how long the client should
    back off before resubmitting.  ``None`` means "do not retry" (the
    hub is draining toward shutdown).
    """

    def __init__(self, message: str, tenant: str = "",
                 retry_after_s=None) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.retry_after_s = retry_after_s
