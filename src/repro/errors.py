"""Exception hierarchy for the SafeHome reproduction."""


class SafeHomeError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(SafeHomeError):
    """The discrete-event simulator was used incorrectly."""


class DeviceError(SafeHomeError):
    """A device-level problem (unknown device, bad value, ...)."""


class DeviceUnavailableError(DeviceError):
    """A command was issued to a failed device."""


class RoutineSpecError(SafeHomeError):
    """A routine definition is malformed."""


class LineageInvariantError(SafeHomeError):
    """An operation would violate one of the lineage-table invariants."""


class SchedulingError(SafeHomeError):
    """The scheduler could not place a routine."""


class HubCrashedError(SafeHomeError):
    """An operation was attempted on a crashed hub (recover() first)."""


class RecoveryError(SafeHomeError):
    """Hub recovery failed (replay diverged from the write-ahead log)."""


class CorruptionError(SafeHomeError):
    """An on-disk WAL (or fleet spool) holds damaged data.

    Raised by the storage scanner and the fleet spool loader when a log
    is corrupt *before* its crash-consistent tail: bit rot, duplicated
    or reordered frames, a truncated mid-log segment, a missing seal, a
    garbled spool line, or a stale index.  A torn tail after the last
    seal is NOT corruption — crash-consistency truncates it by design.

    The message always carries the damaged record's sequence number,
    record type and byte offset (``?`` when unknowable), so operators
    can locate the damage without re-scanning; ``tests/test_fsck.py``
    pins this context.
    """

    def __init__(self, detail, path=None, offset=None, seq=None,
                 record_type=None, line=None):
        self.detail = detail
        self.path = path
        self.offset = offset
        self.seq = seq
        self.record_type = record_type
        self.line = line

        def show(value):
            return "?" if value is None else str(value)

        where = f"path={show(path)}"
        if line is not None:
            where += f", line={line}"
        message = (f"corrupt WAL: {detail} ({where}, seq={show(seq)}, "
                   f"type={show(record_type)}, offset={show(offset)})")
        super().__init__(message)

    def to_dict(self):
        """Deterministic report form (relative path only)."""
        import os

        return {
            "detail": self.detail,
            "path": os.path.basename(self.path) if self.path else None,
            "offset": self.offset,
            "seq": self.seq,
            "type": self.record_type,
            "line": self.line,
        }


class MigrationError(SafeHomeError):
    """A live visibility-model migration failed mid-replay.

    The hub is left crashed with its pre-migration WAL intact for
    post-mortem; a fleet supervisor treats the home as failed.
    """


class PlanError(SafeHomeError):
    """A versioned fleet plan is malformed (schema violation)."""


class ServeError(SafeHomeError):
    """Service-mode hub misuse (bad pacing config, unknown tenant, ...)."""


class AdmissionRejected(ServeError):
    """A submission was turned away by admission control (429-style).

    ``retry_after_s`` is a wall-clock hint: how long the client should
    back off before resubmitting.  ``None`` means "do not retry" (the
    hub is draining toward shutdown).
    """

    def __init__(self, message: str, tenant: str = "",
                 retry_after_s=None) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.retry_after_s = retry_after_s
