"""Failure detector (§6).

Explicitly pings every device each second (100 ms timeout) and also
accepts *implicit* detections: every timed-out command reported by the
driver marks its device failed immediately, reducing the ping rate
needed in practice.  Detection — not the physical failure — is the
failure/restart *event* that the visibility models serialize (§3).
"""

from typing import Optional

from repro.core.controller import Controller
from repro.devices.driver import CommandOutcome, Driver
from repro.devices.registry import DeviceRegistry
from repro.sim.engine import Simulator


class FailureDetector:
    """Periodic ping + implicit timeout detection."""

    def __init__(self, sim: Simulator, registry: DeviceRegistry,
                 driver: Driver, controller: Controller,
                 ping_period_s: float = 1.0,
                 horizon: Optional[float] = None) -> None:
        self.sim = sim
        self.registry = registry
        self.driver = driver
        self.controller = controller
        self.ping_period_s = ping_period_s
        # Stop pinging after this virtual time (lets simulations drain);
        # None keeps pinging while any routine is unfinished.
        self.horizon = horizon
        self.pings_sent = 0
        driver.on_timeout = self.report_timeout

    def start(self) -> None:
        self.sim.call_after(self.ping_period_s, self._tick,
                            label="detector-tick")

    def _tick(self) -> None:
        for device in self.registry:
            self._ping(device.device_id)
        if self._should_continue():
            self.sim.call_after(self.ping_period_s, self._tick,
                                label="detector-tick")

    def _should_continue(self) -> bool:
        if self.horizon is not None:
            return self.sim.now < self.horizon
        return not self.controller.all_done()

    def _ping(self, device_id: int) -> None:
        self.pings_sent += 1

        def answered(outcome: CommandOutcome) -> None:
            if outcome is CommandOutcome.APPLIED:
                if device_id in self.controller.believed_failed:
                    self.controller.on_restart_detected(device_id)
            else:
                self.controller.on_failure_detected(device_id)

        self.driver.ping(device_id, answered)

    def report_timeout(self, device_id: int) -> None:
        """Implicit detection: a routine command timed out."""
        self.controller.on_failure_detected(device_id)
