"""Routine Bank: named routine storage (Fig 11).

Users submit routine definitions once; the dispatcher invokes them by
name, possibly many times (e.g. a timed Monday-night trash routine).
"""

import copy
from typing import Dict, Iterator, List

from repro.core.routine import Routine
from repro.errors import RoutineSpecError


class RoutineBank:
    """Named store of routine definitions."""

    def __init__(self) -> None:
        self._routines: Dict[str, Routine] = {}

    def __len__(self) -> int:
        return len(self._routines)

    def __contains__(self, name: str) -> bool:
        return name in self._routines

    def __iter__(self) -> Iterator[Routine]:
        return iter(self._routines.values())

    def register(self, routine: Routine, replace: bool = False) -> None:
        if routine.name in self._routines and not replace:
            raise RoutineSpecError(
                f"routine {routine.name!r} already registered")
        self._routines[routine.name] = routine

    def get(self, name: str) -> Routine:
        routine = self._routines.get(name)
        if routine is None:
            raise RoutineSpecError(f"no routine named {name!r}")
        return routine

    def instantiate(self, name: str) -> Routine:
        """A fresh copy for one invocation (runs must not share state)."""
        return copy.deepcopy(self.get(name))

    def names(self) -> List[str]:
        return sorted(self._routines)
