"""User feedback log (§2.2).

When a routine aborts or a best-effort command is skipped, "the user
receives feedback ... and she is free to either ignore or re-execute"
— this module materializes that feedback as structured, renderable
entries, fed from controller run records.

Device failure/restart detections stream in live: the log subscribes to
the controller's ``on_detection`` callbacks, so ``DEVICE_FAILED`` and
``DEVICE_RESTARTED`` entries appear the moment the hub detects the
event (they used to exist only via an explicit
:meth:`FeedbackLog.record_detections` back-fill, which meant restart
feedback was silently dropped in every live path).  Hub crashes and
recoveries (see :mod:`repro.hub.durability`) are reported the same way.
"""

import enum
from dataclasses import dataclass
from typing import List

from repro.core.controller import Controller, RoutineRun, RoutineStatus


class FeedbackKind(enum.Enum):
    ROUTINE_COMMITTED = "committed"
    ROUTINE_ABORTED = "aborted"
    COMMAND_SKIPPED = "command-skipped"
    COMMANDS_ROLLED_BACK = "rolled-back"
    DEVICE_FAILED = "device-failed"
    DEVICE_RESTARTED = "device-restarted"
    HUB_CRASHED = "hub-crashed"
    HUB_RESTARTED = "hub-restarted"


@dataclass(frozen=True)
class FeedbackEntry:
    time: float
    kind: FeedbackKind
    routine: str
    detail: str

    def render(self) -> str:
        return f"[{self.time:9.2f}s] {self.kind.value:16s} " \
               f"{self.routine:20s} {self.detail}"


class FeedbackLog:
    """Collects user-facing feedback from a controller's run records."""

    def __init__(self, controller: Controller) -> None:
        self.controller = controller
        controller.on_routine_finished.append(self._on_finished)
        controller.on_detection.append(self._on_detection)
        self.entries: List[FeedbackEntry] = []
        # Indexes into controller.detection_events already emitted —
        # live entries occupy the *tail* of that list when the log is
        # attached to an already-running controller, so a plain count
        # would refold them and skip the pre-attach head.
        self._emitted_detections = set()

    def _on_finished(self, run: RoutineRun) -> None:
        now = self.controller.sim.now
        if run.status is RoutineStatus.COMMITTED:
            skipped = [e for e in run.executions if e.skipped]
            self.entries.append(FeedbackEntry(
                now, FeedbackKind.ROUTINE_COMMITTED, run.name,
                f"{len(run.executions)} commands"
                + (f", {len(skipped)} best-effort skipped" if skipped
                   else "")))
            for execution in skipped:
                self.entries.append(FeedbackEntry(
                    now, FeedbackKind.COMMAND_SKIPPED, run.name,
                    f"device {execution.command.device_id} unreachable "
                    "(best-effort); you may re-execute it"))
        else:
            self.entries.append(FeedbackEntry(
                now, FeedbackKind.ROUTINE_ABORTED, run.name,
                run.abort_reason or "aborted"))
            if run.rolled_back_commands:
                self.entries.append(FeedbackEntry(
                    now, FeedbackKind.COMMANDS_ROLLED_BACK, run.name,
                    f"{run.rolled_back_commands} commands undone; "
                    "you may re-initiate the routine"))

    def _on_detection(self, kind: str, device_id: int,
                      when: float) -> None:
        """Live path: the hub just detected a failure or restart (the
        callback fires right after the event is appended, so it is the
        last entry in detection_events)."""
        self._emitted_detections.add(
            len(self.controller.detection_events) - 1)
        self._append_detection(kind, device_id, when)

    def _append_detection(self, kind: str, device_id: int,
                          when: float) -> None:
        feedback_kind = (FeedbackKind.DEVICE_FAILED if kind == "failure"
                         else FeedbackKind.DEVICE_RESTARTED)
        self.entries.append(FeedbackEntry(
            when, feedback_kind, "-", f"device {device_id}"))

    def record_detections(self) -> None:
        """Back-fill detection events not yet emitted live (idempotent;
        kept for logs attached to an already-running controller)."""
        for index, (kind, device_id, when) in enumerate(
                self.controller.detection_events):
            if index not in self._emitted_detections:
                self._emitted_detections.add(index)
                self._append_detection(kind, device_id, when)

    # -- hub lifecycle (durability layer) -----------------------------------

    def hub_crashed(self, when: float) -> None:
        self.entries.append(FeedbackEntry(
            when, FeedbackKind.HUB_CRASHED, "-",
            "hub lost power; in-memory state gone, WAL survives"))

    def hub_restarted(self, when: float, mode: str) -> None:
        self.entries.append(FeedbackEntry(
            when, FeedbackKind.HUB_RESTARTED, "-",
            f"hub recovered from checkpoint + WAL replay ({mode} mode)"))

    def render(self) -> str:
        ordered = sorted(self.entries, key=lambda e: e.time)
        return "\n".join(entry.render() for entry in ordered)

    def aborts(self) -> List[FeedbackEntry]:
        return [e for e in self.entries
                if e.kind is FeedbackKind.ROUTINE_ABORTED]
