"""User feedback log (§2.2).

When a routine aborts or a best-effort command is skipped, "the user
receives feedback ... and she is free to either ignore or re-execute"
— this module materializes that feedback as structured, renderable
entries, fed from controller run records.
"""

import enum
from dataclasses import dataclass
from typing import List

from repro.core.controller import Controller, RoutineRun, RoutineStatus


class FeedbackKind(enum.Enum):
    ROUTINE_COMMITTED = "committed"
    ROUTINE_ABORTED = "aborted"
    COMMAND_SKIPPED = "command-skipped"
    COMMANDS_ROLLED_BACK = "rolled-back"
    DEVICE_FAILED = "device-failed"
    DEVICE_RESTARTED = "device-restarted"


@dataclass(frozen=True)
class FeedbackEntry:
    time: float
    kind: FeedbackKind
    routine: str
    detail: str

    def render(self) -> str:
        return f"[{self.time:9.2f}s] {self.kind.value:16s} " \
               f"{self.routine:20s} {self.detail}"


class FeedbackLog:
    """Collects user-facing feedback from a controller's run records."""

    def __init__(self, controller: Controller) -> None:
        self.controller = controller
        controller.on_routine_finished.append(self._on_finished)
        self.entries: List[FeedbackEntry] = []

    def _on_finished(self, run: RoutineRun) -> None:
        now = self.controller.sim.now
        if run.status is RoutineStatus.COMMITTED:
            skipped = [e for e in run.executions if e.skipped]
            self.entries.append(FeedbackEntry(
                now, FeedbackKind.ROUTINE_COMMITTED, run.name,
                f"{len(run.executions)} commands"
                + (f", {len(skipped)} best-effort skipped" if skipped
                   else "")))
            for execution in skipped:
                self.entries.append(FeedbackEntry(
                    now, FeedbackKind.COMMAND_SKIPPED, run.name,
                    f"device {execution.command.device_id} unreachable "
                    "(best-effort); you may re-execute it"))
        else:
            self.entries.append(FeedbackEntry(
                now, FeedbackKind.ROUTINE_ABORTED, run.name,
                run.abort_reason or "aborted"))
            if run.rolled_back_commands:
                self.entries.append(FeedbackEntry(
                    now, FeedbackKind.COMMANDS_ROLLED_BACK, run.name,
                    f"{run.rolled_back_commands} commands undone; "
                    "you may re-initiate the routine"))

    def record_detections(self) -> None:
        """Fold the controller's detection events into the log."""
        for kind, device_id, when in self.controller.detection_events:
            feedback_kind = (FeedbackKind.DEVICE_FAILED
                             if kind == "failure"
                             else FeedbackKind.DEVICE_RESTARTED)
            self.entries.append(FeedbackEntry(
                when, feedback_kind, "-", f"device {device_id}"))

    def render(self) -> str:
        ordered = sorted(self.entries, key=lambda e: e.time)
        return "\n".join(entry.render() for entry in ordered)

    def aborts(self) -> List[FeedbackEntry]:
        return [e for e in self.entries
                if e.kind is FeedbackKind.ROUTINE_ABORTED]
