"""The SafeHome facade: the public API a smart-home user programs against.

Wires up the whole edge stack of Fig 11 — simulator, device registry,
driver, concurrency controller (chosen visibility model), failure
detector, routine bank and dispatcher — behind a small surface::

    home = SafeHome(visibility="ev", scheduler="timeline")
    window = home.add_device("window", "living-window")
    ac = home.add_device("ac", "living-ac")
    home.register_routine_spec({
        "routineName": "cooling",
        "commands": [
            {"device": "living-window", "action": "CLOSED",
             "durationSec": 2},
            {"device": "living-ac", "action": "ON", "durationSec": 2},
        ],
    })
    home.invoke("cooling")
    result = home.run()
"""

from typing import Any, Dict, List, Optional, Union

from repro.core.controller import ControllerConfig, RoutineRun, RunResult
from repro.core.routine import Routine
from repro.core.spec import parse_routine
from repro.core.visibility import VisibilityModel, make_controller
from repro.devices.device import Device
from repro.devices.driver import Driver
from repro.devices.failures import FailureInjector, FailurePlan
from repro.devices.network import LatencyModel
from repro.devices.registry import DeviceRegistry
from repro.errors import SafeHomeError
from repro.hub.failure_detector import FailureDetector
from repro.hub.routine_bank import RoutineBank
from repro.metrics.collector import MetricsReport, analyze
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.workloads.base import Workload, attach_streams


class SafeHome:
    """An edge hub running one visibility model over simulated devices."""

    def __init__(self,
                 visibility: Union[str, VisibilityModel] = "ev",
                 scheduler: str = "timeline",
                 execution: Optional[str] = None,
                 config: Optional[ControllerConfig] = None,
                 latency: Optional[LatencyModel] = None,
                 seed: int = 0,
                 detector_ping_period_s: float = 1.0) -> None:
        self.sim = Simulator()
        self.registry = DeviceRegistry()
        self.streams = RandomStreams(seed=seed)
        self.driver = Driver(
            sim=self.sim, registry=self.registry,
            latency=latency or LatencyModel(), streams=self.streams)
        self.config = config or ControllerConfig()
        self.config.scheduler = scheduler
        if execution is not None:
            # "serial" (bit-compatible command chain) or "parallel"
            # (command-DAG dispatch; see docs/execution-model.md).
            self.config.execution = execution
        self.controller = make_controller(
            visibility, self.sim, self.registry, self.driver, self.config)
        self.detector = FailureDetector(
            self.sim, self.registry, self.driver, self.controller,
            ping_period_s=detector_ping_period_s)
        self.bank = RoutineBank()
        self.injector = FailureInjector(self.sim, self.registry)
        self._detector_started = False
        self._initial: Optional[Dict[int, Any]] = None
        self._last_result: Optional[RunResult] = None

    # -- setup -----------------------------------------------------------------

    def add_device(self, type_name: str, name: str = "") -> Device:
        """Add one catalog device to the home."""
        return self.registry.create(type_name, name)

    def add_devices(self, type_name: str, count: int,
                    prefix: str = "") -> List[Device]:
        return self.registry.create_many(type_name, count, prefix)

    def register_routine(self, routine: Routine,
                         replace: bool = False) -> None:
        self.bank.register(routine, replace=replace)

    def register_routine_spec(self, spec: Union[str, Dict[str, Any]],
                              replace: bool = False) -> Routine:
        """Register a routine from its JSON spec (Fig 10 format)."""
        routine = parse_routine(spec, self.registry)
        self.bank.register(routine, replace=replace)
        return routine

    def plan_failure(self, device_name: str, fail_at: float,
                     restart_at: Optional[float] = None) -> None:
        """Script a fail-stop failure (and optional restart)."""
        device = self.registry.by_name(device_name)
        self.injector.add(FailurePlan(device.device_id, fail_at, restart_at))

    def load_workload(self, workload: Workload) -> None:
        """Populate this home from a :class:`Workload` in one call.

        Creates the workload's devices, scripts its failure plans,
        submits its open-loop arrivals and wires its closed-loop streams
        — the same injection the experiment runner performs, but against
        a user-facing hub.  This is how the fleet engine turns a home
        spec into a running :class:`SafeHome`.
        """
        for type_name, name in workload.devices:
            self.registry.create(type_name, name)
        for plan in workload.failure_plans:
            self.injector.add(plan)
        self._initial = self.registry.snapshot()
        for routine, at in workload.arrivals:
            self.controller.submit(routine, when=at)
        attach_streams(self.controller, workload.streams)

    # -- dispatch (user or trigger initiation) -------------------------------------

    def invoke(self, routine_or_name: Union[str, Routine],
               at: Optional[float] = None) -> RoutineRun:
        """Invoke a routine now or at an absolute virtual time."""
        if isinstance(routine_or_name, Routine):
            routine = routine_or_name
        else:
            routine = self.bank.instantiate(routine_or_name)
        return self.controller.submit(routine, when=at)

    def invoke_repeating(self, name: str, start_at: float, period: float,
                         count: int) -> List[RoutineRun]:
        """Timed trigger: invoke ``name`` every ``period`` seconds."""
        return [self.invoke(name, at=start_at + i * period)
                for i in range(count)]

    def cancel(self, run: RoutineRun, at: Optional[float] = None) -> None:
        """User-initiated cancellation of an in-flight routine.

        The routine aborts cleanly: executed commands are rolled back
        per the active visibility model's rules and the user gets
        feedback, exactly as for a failure-driven abort (§2.2).
        """
        if at is None:
            self.controller.request_abort(run, "cancelled by user")
        else:
            self.sim.call_at(at, self.controller.request_abort, run,
                             "cancelled by user")

    # -- execution -------------------------------------------------------------------

    def run(self, until: Optional[float] = None,
            detector: Optional[bool] = None,
            max_events: Optional[int] = None) -> RunResult:
        """Run the simulation to completion and return the results.

        Args:
            until: optional virtual-time bound.
            detector: force the failure detector on/off; by default it
                runs only when failures are scripted.
            max_events: safety valve against runaway simulations.
        """
        start_detector = detector if detector is not None \
            else bool(self.injector.plans)
        if start_detector and not self._detector_started:
            self.detector.start()
            self._detector_started = True
        # Implicit detection (command timeouts) is always wired: the
        # detector's constructor set driver.on_timeout at build time.
        if self._initial is None:
            self._initial = self.registry.snapshot()
        self.injector.arm()
        self.sim.run(until=until, max_events=max_events)
        self._last_result = RunResult.from_controller(self.controller)
        return self._last_result

    # -- inspection ---------------------------------------------------------------------

    @property
    def last_result(self) -> Optional[RunResult]:
        """The :class:`RunResult` of the most recent :meth:`run`."""
        return self._last_result

    def report(self, check_final: bool = True,
               exhaustive_limit: int = 7) -> MetricsReport:
        """Analyze the last run: every §7.1 metric for this home.

        Requires a prior :meth:`run`; the initial device snapshot taken
        at load/run time anchors the final-incongruence check.
        """
        if self._last_result is None or self._initial is None:
            raise SafeHomeError("no completed run to report on; "
                                "call run() first")
        return analyze(self._last_result, self._initial,
                       check_final=check_final,
                       exhaustive_limit=exhaustive_limit)

    def state_of(self, device_name: str) -> Any:
        return self.registry.by_name(device_name).state

    def snapshot(self) -> Dict[int, Any]:
        return self.registry.snapshot()
