"""The SafeHome facade: the public API a smart-home user programs against.

Wires up the whole edge stack of Fig 11 — simulator, device registry,
driver, concurrency controller (chosen visibility model), failure
detector, routine bank and dispatcher — behind a small surface::

    home = SafeHome(visibility="ev", scheduler="timeline")
    window = home.add_device("window", "living-window")
    ac = home.add_device("ac", "living-ac")
    home.register_routine_spec({
        "routineName": "cooling",
        "commands": [
            {"device": "living-window", "action": "CLOSED",
             "durationSec": 2},
            {"device": "living-ac", "action": "ON", "durationSec": 2},
        ],
    })
    home.invoke("cooling")
    result = home.run()

With ``durability=True`` the hub journals every input and execution
decision to a write-ahead log and checkpoints its state periodically
(see :mod:`repro.hub.durability` and docs/durability.md), which makes
the hub itself crash-recoverable::

    home = SafeHome(visibility="ev", durability=True)
    ...
    home.crash(after_events=100)   # schedule a hub crash
    home.run()                     # dies mid-run
    home.recover()                 # checkpoint + WAL replay, verified
    home.run()                     # continues to completion
"""

from typing import Any, Dict, List, Optional, Union

from repro.core.controller import (ControllerConfig, RoutineRun,
                                   RoutineStatus, RunResult)
from repro.core.routine import Routine
from repro.core.spec import parse_routine, routine_to_spec
from repro.core.visibility import VisibilityModel, make_controller
from repro.devices.device import Device
from repro.devices.driver import Driver
from repro.devices.failures import FailureInjector, FailurePlan
from repro.devices.network import LatencyModel
from repro.devices.registry import DeviceRegistry
from repro.errors import (HubCrashedError, MigrationError, RecoveryError,
                          SafeHomeError)
from repro.hub.durability.recovery import (RECOVERY_MODES, CrashPlan,
                                           DurabilityConfig,
                                           DurabilityManager, RecoveryReport)
from repro.hub.migration import MigrationReport
from repro.hub.failure_detector import FailureDetector
from repro.hub.log import FeedbackLog
from repro.hub.routine_bank import RoutineBank
from repro.metrics.collector import MetricsReport, analyze
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.workloads.base import Workload, attach_streams


class SafeHome:
    """An edge hub running one visibility model over simulated devices."""

    def __init__(self,
                 visibility: Union[str, VisibilityModel] = "ev",
                 scheduler: str = "timeline",
                 execution: Optional[str] = None,
                 config: Optional[ControllerConfig] = None,
                 latency: Optional[LatencyModel] = None,
                 seed: int = 0,
                 detector_ping_period_s: float = 1.0,
                 durability: Union[bool, DurabilityConfig, None] = None,
                 wal_dir: Optional[str] = None
                 ) -> None:
        # Everything the stack is built from, kept so recovery can
        # rebuild an identical stack (the latency model and config are
        # reused by reference: both are pure parameter holders).
        self._ctor: Dict[str, Any] = {
            "visibility": visibility,
            "scheduler": scheduler,
            "execution": execution,
            "config": config,
            "latency": latency,
            "seed": seed,
            "detector_ping_period_s": detector_ping_period_s,
        }
        self.durability: Optional[DurabilityManager] = None
        self._crashed = False
        self._pending_crash: Optional[CrashPlan] = None
        self.recoveries: List[RecoveryReport] = []
        self.migrations: List[MigrationReport] = []
        #: On-disk WAL directory (docs/durability.md): when set, every
        #: materialized record streams into segmented CRC-framed files.
        self._wal_dir = wal_dir
        if wal_dir is not None and not durability:
            durability = True
        #: Absolute simulator-event bound for salvage replay (threaded
        #: through _run_core so bounded replay stops at a checkpoint
        #: boundary instead of the crash point).
        self._replay_stop_events: Optional[int] = None
        self._build_stack()
        if durability:
            cfg = durability if isinstance(durability, DurabilityConfig) \
                else DurabilityConfig()
            self._attach_durability(cfg)

    def _build_stack(self) -> None:
        """(Re)build the full edge stack from the stored constructor
        parameters.  Called at construction and again by recovery."""
        ctor = self._ctor
        self.sim = Simulator()
        self.registry = DeviceRegistry()
        self.streams = RandomStreams(seed=ctor["seed"])
        self.driver = Driver(
            sim=self.sim, registry=self.registry,
            latency=ctor["latency"] or LatencyModel(), streams=self.streams)
        self._build_policy()

    def _build_policy(self) -> None:
        """Build the policy layers on top of the current substrate
        (sim / registry / streams / driver).  Split out of
        :meth:`_build_stack` so :meth:`reset` can reuse the substrate
        objects in place while rebuilding the per-home state."""
        ctor = self._ctor
        self.config = ctor["config"] or ControllerConfig()
        self.config.scheduler = ctor["scheduler"]
        if ctor["execution"] is not None:
            # "serial" (bit-compatible command chain) or "parallel"
            # (command-DAG dispatch; see docs/execution-model.md).
            self.config.execution = ctor["execution"]
        self.controller = make_controller(
            ctor["visibility"], self.sim, self.registry, self.driver,
            self.config)
        self.detector = FailureDetector(
            self.sim, self.registry, self.driver, self.controller,
            ping_period_s=ctor["detector_ping_period_s"])
        self.bank = RoutineBank()
        self.injector = FailureInjector(self.sim, self.registry)
        self.feedback = FeedbackLog(self.controller)
        self._detector_started = False
        self._initial: Optional[Dict[int, Any]] = None
        self._last_result: Optional[RunResult] = None

    def reset(self, seed: Optional[int] = None,
              durability: Union[bool, DurabilityConfig, None] = None
              ) -> "SafeHome":
        """Re-seed this hub and reuse it for a fresh home.

        Equivalent to constructing ``SafeHome(**same_params, seed=seed,
        durability=durability)`` — the reset-vs-fresh property test in
        ``tests/test_fleet.py`` pins byte-identical reports across all
        visibility models — but reuses the simulator, device registry,
        RNG-stream family and driver objects in place instead of
        reallocating them, which is what lets the fleet's
        :class:`~repro.fleet.worker.HomeFactory` amortize construction
        across thousands of homes per worker.
        """
        if seed is not None:
            self._ctor["seed"] = seed
        self.sim.reset()
        self.registry.clear()
        self.streams.reseed(self._ctor["seed"])
        self.driver.reset()
        self.durability = None
        self._crashed = False
        self._pending_crash = None
        self.recoveries = []
        self.migrations = []
        self._build_policy()
        if durability:
            cfg = durability if isinstance(durability, DurabilityConfig) \
                else DurabilityConfig()
            self._attach_durability(cfg)
        return self

    # -- durability plumbing ---------------------------------------------------

    def _attach_durability(self, config: DurabilityConfig,
                           staged: bool = False) -> None:
        ctor = self._ctor
        self.durability = DurabilityManager(
            config,
            capture_state=self._capture_state,
            events=lambda: self.sim.events_processed,
            now=lambda: self.sim.now)
        self.controller.journal = self.durability
        self.sim.add_post_event_hook(self.durability.on_event_processed)
        visibility = ctor["visibility"]
        if isinstance(visibility, VisibilityModel):
            visibility = visibility.value
        if self._wal_dir is not None:
            # Recovery and migration rebuild the log under fresh
            # sequence numbers, so their incarnation is written into a
            # staging directory and swapped in only after verification
            # (see storage.SegmentedWalWriter).
            from repro.hub.durability.storage import SegmentedWalWriter
            self.durability.attach_storage(SegmentedWalWriter(
                self._wal_dir, home=f"{visibility}:{ctor['seed']}",
                staging=staged))
        self.durability.record_input("home-created", {
            "visibility": visibility,
            "scheduler": ctor["scheduler"],
            "execution": ctor["execution"],
            "seed": ctor["seed"],
            "detector_ping_period_s": ctor["detector_ping_period_s"],
            "checkpoint_every": config.checkpoint_every,
        })

    def _capture_state(self) -> Dict[str, Any]:
        """Checkpoint payload: every stateful layer's snapshot."""
        return {
            "time": self.sim.now,
            "devices": self.registry.snapshot_full(),
            "controller": self.controller.snapshot_state(),
        }

    def _record_input(self, type_: str, payload: Dict[str, Any]) -> None:
        if self.durability is not None:
            self.durability.record_input(type_, payload)

    def _ensure_alive(self) -> None:
        if self._crashed:
            raise HubCrashedError(
                "the hub has crashed; call recover() first")

    @property
    def crashed(self) -> bool:
        return self._crashed

    @property
    def wal(self):
        """The write-ahead log, when durability is enabled."""
        return self.durability.wal if self.durability is not None else None

    @property
    def wal_dir(self) -> Optional[str]:
        """The on-disk WAL directory, when one was given."""
        return self._wal_dir

    def close_wal(self) -> None:
        """Cleanly shut down the on-disk WAL (no-op without one).

        Flushes the observation buffer and appends a *final seal*, the
        clean-shutdown marker: ``repro fsck`` reports a log without one
        as a crash image (``clean_close: false``).  Appending to the
        hub after this raises — a closed log must not grow silently.
        """
        if self.durability is None or self.durability.storage is None:
            return
        self.durability.wal.flush()
        self.durability.storage.close(
            seal_events=self.sim.events_processed,
            seal_time=self.sim.now,
            seal_index=len(self.durability.checkpoints))

    # -- setup -----------------------------------------------------------------

    def add_device(self, type_name: str, name: str = "") -> Device:
        """Add one catalog device to the home."""
        self._ensure_alive()
        device = self.registry.create(type_name, name)
        self._record_input("device-added", {"type": type_name,
                                            "name": device.name})
        return device

    def add_devices(self, type_name: str, count: int,
                    prefix: str = "") -> List[Device]:
        prefix = prefix or type_name
        return [self.add_device(type_name, f"{prefix}-{i}")
                for i in range(count)]

    def register_routine(self, routine: Routine,
                         replace: bool = False) -> None:
        self._ensure_alive()
        self.bank.register(routine, replace=replace)
        if self.durability is not None:
            self._record_input("routine-registered", {
                "spec": routine_to_spec(routine, self.registry),
                "replace": replace})

    def register_routine_spec(self, spec: Union[str, Dict[str, Any]],
                              replace: bool = False) -> Routine:
        """Register a routine from its JSON spec (Fig 10 format)."""
        routine = parse_routine(spec, self.registry)
        self.register_routine(routine, replace=replace)
        return routine

    def plan_failure(self, device_name: str, fail_at: float,
                     restart_at: Optional[float] = None) -> None:
        """Script a fail-stop failure (and optional restart)."""
        self._ensure_alive()
        device = self.registry.by_name(device_name)
        self.injector.add(FailurePlan(device.device_id, fail_at, restart_at))
        self._record_input("failure-planned", {
            "device_id": device.device_id, "fail_at": fail_at,
            "restart_at": restart_at})

    def load_workload(self, workload: Workload) -> None:
        """Populate this home from a :class:`Workload` in one call.

        Creates the workload's devices, scripts its failure plans,
        submits its open-loop arrivals and wires its closed-loop streams
        — the same injection the experiment runner performs, but against
        a user-facing hub.  This is how the fleet engine turns a home
        spec into a running :class:`SafeHome`.
        """
        self._ensure_alive()
        for type_name, name in workload.devices:
            self.add_device(type_name, name)
        for plan in workload.failure_plans:
            self.injector.add(plan)
            self._record_input("failure-planned", {
                "device_id": plan.device_id, "fail_at": plan.fail_at,
                "restart_at": plan.restart_at})
        self._initial = self.registry.snapshot()
        for routine, at in workload.arrivals:
            self._submit_recorded(routine, at)
        self._attach_streams_recorded(workload.streams)

    def _submit_recorded(self, routine: Routine,
                         when: Optional[float]) -> RoutineRun:
        when = self.sim.now if when is None else when
        if self.durability is not None:
            # Payload construction (spec'ing the routine) is deferred
            # behind the durability check: non-durable hubs submit
            # thousands of fleet routines and must not pay for WAL
            # payloads that would be dropped.
            self._record_input("invoked", {
                "spec": routine_to_spec(routine, self.registry),
                "when": when})
        return self.controller.submit(routine, when=when)

    def _attach_streams_recorded(self,
                                 streams: List[List[Routine]]) -> None:
        if not any(streams):
            return
        if self.durability is not None:
            self._record_input("streams-attached", {
                "streams": [[routine_to_spec(routine, self.registry)
                             for routine in stream]
                            for stream in streams]})
        attach_streams(self.controller, streams)

    # -- dispatch (user or trigger initiation) -------------------------------------

    def invoke(self, routine_or_name: Union[str, Routine],
               at: Optional[float] = None) -> RoutineRun:
        """Invoke a routine now or at an absolute virtual time."""
        self._ensure_alive()
        if isinstance(routine_or_name, Routine):
            routine = routine_or_name
        else:
            routine = self.bank.instantiate(routine_or_name)
        return self._submit_recorded(routine, at)

    def invoke_repeating(self, name: str, start_at: float, period: float,
                         count: int) -> List[RoutineRun]:
        """Timed trigger: invoke ``name`` every ``period`` seconds."""
        return [self.invoke(name, at=start_at + i * period)
                for i in range(count)]

    def cancel(self, run: RoutineRun, at: Optional[float] = None) -> None:
        """User-initiated cancellation of an in-flight routine.

        The routine aborts cleanly: executed commands are rolled back
        per the active visibility model's rules and the user gets
        feedback, exactly as for a failure-driven abort (§2.2).
        """
        self._ensure_alive()
        self._record_input("cancelled", {
            "routine_id": run.routine_id, "at": at})
        if at is None:
            self.controller.request_abort(run, "cancelled by user")
        else:
            self.sim.call_at(at, self.controller.request_abort, run,
                             "cancelled by user")

    # -- execution -------------------------------------------------------------------

    def run(self, until: Optional[float] = None,
            detector: Optional[bool] = None,
            max_events: Optional[int] = None) -> RunResult:
        """Run the simulation to completion and return the results.

        If a crash is scheduled (:meth:`crash`) the run stops at the
        crash point instead, the hub is marked crashed and the returned
        :class:`RunResult` is the post-mortem partial state.

        Args:
            until: optional virtual-time bound.
            detector: force the failure detector on/off; by default it
                runs only when failures are scripted.
            max_events: safety valve against runaway simulations.
        """
        self._ensure_alive()
        self._record_input("run", {"until": until, "detector": detector,
                                   "max_events": max_events})
        return self._run_core(until=until, detector=detector,
                              max_events=max_events)

    def _run_core(self, until: Optional[float] = None,
                  detector: Optional[bool] = None,
                  max_events: Optional[int] = None) -> RunResult:
        """The run body, shared by live execution and recovery replay
        (replay records the input itself, so this never journals)."""
        start_detector = detector if detector is not None \
            else bool(self.injector.plans)
        if start_detector and not self._detector_started:
            self.detector.start()
            self._detector_started = True
        # Implicit detection (command timeouts) is always wired: the
        # detector's constructor set driver.on_timeout at build time.
        if self._initial is None:
            self._initial = self.registry.snapshot()
        self.injector.arm()

        crash = self._pending_crash
        crashed = False
        # Salvage replay caps every run at the last-good checkpoint's
        # event boundary (an absolute, cumulative bound — the same
        # units as CrashPlan.after_events).
        stop = self._replay_stop_events
        if crash is None:
            self.sim.run(until=until, max_events=max_events,
                         stop_after_events=stop)
        elif crash.at is not None and \
                (until is None or until >= crash.at):
            # A crash only fires while the hub is active: if the queue
            # drains first, the run completes at its natural end (the
            # clock does not advance to the crash time) and the crash
            # stays pending for any later activity.
            self.sim.run(until=crash.at, max_events=max_events,
                         advance_clock=False, stop_after_events=stop)
            crashed = self.sim.now >= crash.at
            if not crashed and until is not None and until > self.sim.now:
                self.sim.run(until=until, max_events=max_events,
                             stop_after_events=stop)
        elif crash.at is not None:
            self.sim.run(until=until, max_events=max_events,
                         stop_after_events=stop)
        else:
            bound = crash.after_events if stop is None \
                else min(crash.after_events, stop)
            self.sim.run(until=until, max_events=max_events,
                         stop_after_events=bound)
            crashed = self.sim.events_processed >= crash.after_events

        if crashed:
            # The hub dies here: pending simulator events (in-flight
            # commands, timers) are lost with the process; only the WAL
            # and checkpoints survive.
            self._pending_crash = None
            self._crashed = True
            if self.durability is not None:
                self.durability.mark_crash(crash.to_payload())
            self.feedback.hub_crashed(self.sim.now)
        self._last_result = RunResult.from_controller(self.controller)
        return self._last_result

    # -- service mode (docs/serving.md) -------------------------------------------------

    def pump(self, until: Optional[float] = None,
             max_events: Optional[int] = None) -> int:
        """Advance the simulation incrementally for service mode.

        A lightweight slice of :meth:`run` for long-lived serving: it
        arms scripted failures, starts the detector when needed and
        takes the initial snapshot on first use, but builds no
        :class:`RunResult` (that is deferred to
        :meth:`finalize_service`, so a serve loop calling pump
        thousands of times stays O(events)).  Returns the number of
        events processed.  Durability journals whole ``run()`` calls,
        not incremental slices, so pumping a durable hub is refused.
        """
        self.service_prepare()
        before = self.sim.events_processed
        self.sim.run(until=until, max_events=max_events)
        return self.sim.events_processed - before

    def service_prepare(self) -> None:
        """The per-slice preamble of :meth:`pump`, callable on its own
        (the serve loop runs it before handing the simulator to a
        pacing driver): start the detector if failures are scripted,
        take the initial snapshot once, arm any newly scripted plans.
        Idempotent and cheap when nothing changed.
        """
        self._ensure_alive()
        if self.durability is not None:
            raise SafeHomeError(
                "pump() does not journal; serve non-durable homes "
                "(durability and service mode are mutually exclusive)")
        if self.injector.plans and not self._detector_started:
            self.detector.start()
            self._detector_started = True
        if self._initial is None:
            self._initial = self.registry.snapshot()
        self.injector.arm()

    def finalize_service(self) -> RunResult:
        """Materialize the :class:`RunResult` of a pumped (served) run.

        The service-mode counterpart of the tail of :meth:`run`; after
        this, :meth:`report` works exactly as it does for batch runs.
        """
        self._last_result = RunResult.from_controller(self.controller)
        return self._last_result

    # -- crash / recovery (docs/durability.md) ------------------------------------------

    def crash(self, at: Optional[float] = None,
              after_events: Optional[int] = None) -> None:
        """Schedule a hub crash at a virtual time or total event index.

        The crash fires during the next :meth:`run` when the simulation
        reaches the point; requires durability (there is nothing to
        recover from otherwise).
        """
        self._ensure_alive()
        if self.durability is None:
            raise SafeHomeError(
                "crash/recovery needs a durable hub: construct with "
                "SafeHome(..., durability=True)")
        if self._pending_crash is not None:
            raise SafeHomeError("a crash is already scheduled")
        plan = CrashPlan(at=at, after_events=after_events)
        self._pending_crash = plan
        self._record_input("crash-scheduled", plan.to_payload())

    def cancel_crash(self) -> None:
        """Withdraw a scheduled-but-unfired hub crash.

        Journaled as an input so replay (recovery or live migration)
        drops the pending plan at the same point; a no-op when nothing
        is scheduled.
        """
        self._ensure_alive()
        if self._pending_crash is None:
            return
        self._pending_crash = None
        self._record_input("crash-cancelled", {})

    def recover(self, mode: Optional[str] = None) -> RecoveryReport:
        """Rebuild the hub from its checkpoint + write-ahead log.

        Deterministic replay: a fresh stack re-applies the WAL's input
        records and re-executes to the exact crash boundary; the
        regenerated observation stream and checkpoint digests are
        verified against the log (:class:`~repro.errors.RecoveryError`
        on divergence).  ``mode`` is ``"replay"`` (resume everything
        exactly), ``"policy"`` (each visibility model decides the fate
        of routines caught mid-execution) or ``"salvage"`` (bounded
        replay to the last good checkpoint for damaged logs — see
        docs/durability.md's salvage decision tree).
        """
        if self.durability is None:
            raise SafeHomeError("durability is not enabled")
        if not self._crashed:
            raise SafeHomeError("the hub has not crashed")
        mode = mode or self.durability.config.recovery
        if mode not in RECOVERY_MODES and mode != "salvage":
            raise ValueError(f"unknown recovery mode {mode!r}; "
                             f"pick from {RECOVERY_MODES + ('salvage',)}")
        started = DurabilityManager.wall_clock()
        old_manager = self.durability
        old_records = list(old_manager.wal.records)
        old_checkpoints = list(old_manager.checkpoints)
        compacted = old_manager.wal.compacted_observations
        crash_record = next((r for r in reversed(old_records)
                             if r.type == "crash"), None)
        if crash_record is None and mode != "salvage":
            # A failed migration marks the hub crashed without a crash
            # record: there is no boundary to replay to, only a WAL to
            # post-mortem.  Supervisors catch this and count the home
            # as failed rather than retrying forever.
            raise RecoveryError(
                "no crash record in the WAL: the hub was marked failed "
                "(e.g. by an aborted migration), not crashed mid-run")
        if old_manager.storage is not None:
            # The crashed incarnation's disk log is now read-only
            # recovery input; the new incarnation writes to staging
            # and swaps in only after verification below.
            old_manager.wal.sink = None
            old_manager.storage.close(write_final_seal=False)

        # Fresh stack + fresh manager; the old WAL is the recovery input.
        self._crashed = False
        self._pending_crash = None
        salvage_result = None
        try:
            self._build_stack()
            self._attach_durability(old_manager.config, staged=True)

            if mode == "salvage":
                salvage_result = self._salvage_replay(
                    old_records, compacted=compacted)
            else:
                self._replay_records(old_records)
                if not self._crashed:
                    raise RecoveryError(
                        "replay finished without reaching the crash "
                        "point (corrupt or truncated WAL)")

                divergence = self._verify_replay(old_records,
                                                 old_checkpoints)
                if divergence:
                    raise RecoveryError(f"replay diverged from the WAL: "
                                        f"{divergence}")
            if self.durability.storage is not None:
                self.durability.storage.commit_staging()
        except BaseException:
            # A failed recovery must not leave a half-replayed stack
            # accepting work: stay crashed, drop the staged disk log,
            # and point durability back at the intact pre-crash WAL so
            # recover() can be retried.
            if self.durability is not old_manager and \
                    self.durability is not None and \
                    self.durability.storage is not None:
                self.durability.storage.abort_staging()
            self._crashed = True
            self._pending_crash = None
            self.durability = old_manager
            raise

        resumed, aborted = self._apply_recovery_policy(mode)
        self._crashed = False
        self.durability.record_input("recovery", {
            "mode": mode, "events": self.sim.events_processed})
        self.feedback.hub_restarted(self.sim.now, mode)
        if mode == "salvage":
            info, cps_verified, obs_verified = salvage_result
            return self._finish_salvage(
                old_records, crash_record, info, cps_verified,
                obs_verified, resumed, aborted, started, compacted)
        report = RecoveryReport(
            mode=mode,
            crash_time=crash_record.payload["time"],
            crash_events=crash_record.payload["events"],
            replayed_events=self.sim.events_processed,
            replayed_records=len([r for r in old_records
                                  if r.is_observation]),
            wal_records=len(old_records) + compacted,
            checkpoints_verified=len(old_checkpoints),
            resumed=resumed,
            aborted=aborted,
            wall_s=DurabilityManager.wall_clock() - started)
        self.recoveries.append(report)
        return report

    def salvage_records(self, records,
                        bounded: bool = True) -> RecoveryReport:
        """Salvage another incarnation's (possibly damaged) WAL records
        into this freshly built durable hub.

        The entry point ``repro fsck --salvage`` uses after
        :func:`~repro.hub.durability.storage.scan_wal_dir` chopped a
        corrupt on-disk log down to its good prefix: bounded replay to
        the last good checkpoint, per-model recovery policy for
        routines caught in flight, checkpoint digests (and the
        observation prefix) verified — a divergence raises
        :class:`~repro.errors.RecoveryError`, never a silent pass.

        ``bounded=False`` replays *all* good inputs to their natural
        end instead of cutting at the last checkpoint — full replay
        verification for clean or merely tail-torn logs.
        """
        if self.durability is None:
            raise SafeHomeError("durability is not enabled")
        started = DurabilityManager.wall_clock()
        old_records = list(records)
        crash_record = next((r for r in reversed(old_records)
                             if r.type == "crash"), None)
        info, cps_verified, obs_verified = self._salvage_replay(
            old_records, bounded=bounded)
        resumed, aborted = self._apply_recovery_policy("salvage")
        self._crashed = False
        self.durability.record_input("recovery", {
            "mode": "salvage", "events": self.sim.events_processed})
        self.feedback.hub_restarted(self.sim.now, "salvage")
        return self._finish_salvage(
            old_records, crash_record, info, cps_verified, obs_verified,
            resumed, aborted, started, compacted=0)

    def _salvage_replay(self, old_records, compacted: int = 0,
                        bounded: bool = True) -> tuple:
        """Bounded replay of a damaged log's inputs.

        Cuts the log at the last good ``checkpoint`` record (the
        *salvage floor*), replays only inputs below the floor with
        every run capped at the checkpoint's event count, heals crash
        plans that fire inside the window, then verifies regenerated
        checkpoint digests — and the observation prefix, when nothing
        was compacted — against the log.  Returns
        ``(salvage_info, checkpoints_verified, verified_observations)``.
        """
        floor = next((r for r in reversed(old_records)
                      if r.type == "checkpoint"), None) if bounded \
            else None
        floor_seq = floor.seq if floor is not None else None
        boundary_events = floor.payload.get("events") \
            if floor is not None else None
        inputs = [r for r in old_records
                  if r.is_input and r.type != "home-created"]
        kept = inputs if floor_seq is None \
            else [r for r in inputs if r.seq < floor_seq]
        self._replay_stop_events = boundary_events
        try:
            replayed, healed = self._replay_records(kept,
                                                    heal_crashes=True)
        finally:
            self._replay_stop_events = None
        if self._crashed:
            raise RecoveryError(
                "salvage replay ended crashed: the log's crash plan "
                "fired inside the salvage window and could not be "
                "healed")
        if self._pending_crash is not None:
            # The crash this log died of already happened; the salvaged
            # incarnation must not die of it again.  Journaled so the
            # new WAL stays a complete recipe.
            self._pending_crash = None
            self._record_input("crash-cancelled", {})

        # Verify every piece of evidence that survived the damage.
        old_obs = [r for r in old_records if r.is_observation
                   and (floor_seq is None or r.seq < floor_seq)]
        old_cps = [r for r in old_records if r.type == "checkpoint"
                   and (floor_seq is None or r.seq <= floor_seq)]
        new_cps = self.durability.checkpoints
        for record in old_cps:
            index = record.payload.get("index")
            if index is None or index >= len(new_cps):
                raise RecoveryError(
                    f"salvage replay regenerated {len(new_cps)} "
                    f"checkpoints; logged checkpoint index {index} "
                    f"(seq {record.seq}, type {record.type!r}) was "
                    f"never reached")
            if new_cps[index].digest != record.payload.get("digest"):
                raise RecoveryError(
                    f"salvage diverged from the log: checkpoint "
                    f"{index} digest mismatch (seq {record.seq}, "
                    f"type {record.type!r})")
        if compacted == 0:
            new_obs = [r for r in self.durability.wal.records
                       if r.is_observation]
            if len(new_obs) < len(old_obs):
                raise RecoveryError(
                    f"salvage regenerated only {len(new_obs)} "
                    f"observation records; the log holds "
                    f"{len(old_obs)} below the salvage floor")
            for index, (old, new) in enumerate(zip(old_obs, new_obs)):
                if old.identity() != new.identity():
                    raise RecoveryError(
                        f"salvage diverged from the log: observation "
                        f"#{index} (seq {old.seq}, type {old.type!r}) "
                        f"differs: logged {old.identity()}, replayed "
                        f"{new.identity()}")
        dropped_records = 0 if floor_seq is None else \
            len([r for r in old_records if r.seq >= floor_seq])
        info = {
            "floor_seq": floor_seq,
            "boundary_events": boundary_events,
            "replayed_inputs": replayed,
            "dropped_inputs": len(inputs) - len(kept),
            "dropped_records": dropped_records,
            "healed_crashes": healed,
        }
        return info, len(old_cps), len(old_obs)

    def _finish_salvage(self, old_records, crash_record, info,
                        cps_verified, obs_verified, resumed, aborted,
                        started, compacted: int) -> RecoveryReport:
        last_time = old_records[-1].time if old_records else 0.0
        crash_time = crash_record.payload["time"] \
            if crash_record is not None else last_time
        if crash_record is not None:
            crash_events = crash_record.payload["events"]
        elif info["boundary_events"] is not None:
            crash_events = info["boundary_events"]
        else:
            crash_events = self.sim.events_processed
        report = RecoveryReport(
            mode="salvage",
            crash_time=crash_time,
            crash_events=crash_events,
            replayed_events=self.sim.events_processed,
            replayed_records=obs_verified,
            wal_records=len(old_records) + compacted,
            checkpoints_verified=cps_verified,
            resumed=resumed,
            aborted=aborted,
            wall_s=DurabilityManager.wall_clock() - started,
            salvage=info)
        self.recoveries.append(report)
        return report

    def _replay_records(self, records, heal_crashes: bool = False
                        ) -> tuple:
        """Re-apply a WAL's durable inputs to the rebuilt stack.

        Shared by :meth:`recover` and :meth:`migrate`.  ``home-created``
        is skipped (re-recorded by ``_attach_durability``); markers and
        observations regenerate during replay.  With ``heal_crashes``
        (migration) a crash that fires during replay *without* a
        matching ``recovery`` record up next — the target model reached
        a crash point the source model never hit — is transparently
        resumed in ``replay`` mode and journaled, so replay under a
        different policy never strands the hub.  Returns
        ``(replayed_inputs, healed_crashes)``.
        """
        inputs = [r for r in records
                  if r.is_input and r.type != "home-created"]
        healed = 0
        for index, record in enumerate(inputs):
            self._replay_input(record)
            if heal_crashes and self._crashed:
                nxt = inputs[index + 1] if index + 1 < len(inputs) \
                    else None
                if nxt is None or nxt.type != "recovery":
                    self._apply_recovery_policy("replay")
                    self._crashed = False
                    self.durability.record_input("recovery", {
                        "mode": "replay",
                        "events": self.sim.events_processed})
                    self.feedback.hub_restarted(self.sim.now, "replay")
                    healed += 1
        return len(inputs), healed

    def _replay_input(self, record) -> None:
        """Re-apply one durable input record to the rebuilt stack."""
        if self._crashed and record.type != "recovery":
            raise RecoveryError(
                f"input record {record.type!r} (seq {record.seq}) "
                f"follows a crash with no recovery record")
        payload = record.payload
        # Carry the input history forward so the new WAL remains a
        # complete recipe (a second crash replays through this one).
        self.durability.wal.copy_record(record)
        if record.type == "device-added":
            self.registry.create(payload["type"], payload["name"])
        elif record.type == "routine-registered":
            self.bank.register(parse_routine(payload["spec"], self.registry),
                               replace=payload["replace"])
        elif record.type == "failure-planned":
            self.injector.add(FailurePlan(
                payload["device_id"], payload["fail_at"],
                payload["restart_at"]))
        elif record.type == "invoked":
            self.controller.submit(
                parse_routine(payload["spec"], self.registry),
                when=payload["when"])
        elif record.type == "streams-attached":
            attach_streams(self.controller, [
                [parse_routine(spec, self.registry) for spec in stream]
                for stream in payload["streams"]])
        elif record.type == "cancelled":
            run = self.controller.run_by_id(payload["routine_id"])
            if payload["at"] is None:
                self.controller.request_abort(run, "cancelled by user")
            else:
                self.sim.call_at(payload["at"],
                                 self.controller.request_abort, run,
                                 "cancelled by user")
        elif record.type == "crash-scheduled":
            self._pending_crash = CrashPlan.from_payload(payload)
        elif record.type == "crash-cancelled":
            self._pending_crash = None
        elif record.type == "run":
            self._run_core(until=payload["until"],
                           detector=payload["detector"],
                           max_events=payload["max_events"])
        elif record.type == "recovery":
            # An earlier recovery: re-apply its (deterministic) policy
            # decisions and bring the hub back up, as it did then.
            self._apply_recovery_policy(payload["mode"])
            self._crashed = False
            self.feedback.hub_restarted(self.sim.now, payload["mode"])
        else:
            raise RecoveryError(f"unexpected input record {record.type!r}")

    def _apply_recovery_policy(self, mode: str) -> tuple:
        """Decide the fate of routines caught mid-execution.

        Waiting admissions are durable (lock table / lineage placements
        replayed) and always survive; only RUNNING routines are subject
        to the per-model policy.  Returns (resumed_ids, aborted_ids).
        """
        resumed: List[int] = []
        aborted: List[int] = []
        for run in self.controller.runs:
            if run.done or run.status is not RoutineStatus.RUNNING:
                continue
            action = "resume" if mode == "replay" \
                else self.controller.hub_recovery_action(run)
            if action == "abort":
                self.controller.request_abort(
                    run, "hub crash: strict visibility cannot span a "
                         "hub outage")
                aborted.append(run.routine_id)
            else:
                resumed.append(run.routine_id)
        return resumed, aborted

    def _verify_replay(self, old_records, old_checkpoints
                       ) -> Optional[str]:
        """Cross-check regenerated observations and checkpoint digests
        against the pre-crash log; returns a description on mismatch."""
        old_obs = [r for r in old_records if r.is_observation]
        new_obs = [r for r in self.durability.wal.records
                   if r.is_observation]
        # Compaction may have dropped the oldest observations; the
        # checkpoint digests below still cover that prefix.
        tail = new_obs[-len(old_obs):] if old_obs else []
        if len(new_obs) < len(old_obs):
            return (f"regenerated only {len(new_obs)} observation "
                    f"records, WAL holds {len(old_obs)}")
        for index, (old, new) in enumerate(zip(old_obs, tail)):
            if old.identity() != new.identity():
                return (f"observation #{index} (seq {old.seq}, type "
                        f"{old.type!r}) differs: logged "
                        f"{old.identity()}, replayed {new.identity()}")
        new_checkpoints = self.durability.checkpoints
        if len(new_checkpoints) != len(old_checkpoints):
            return (f"replay produced {len(new_checkpoints)} "
                    f"checkpoints, WAL holds {len(old_checkpoints)}")
        for index, (old, new) in enumerate(zip(old_checkpoints,
                                               new_checkpoints)):
            if old.digest != new.digest:
                return (f"checkpoint #{index} (seq {old.seq}, type "
                        f"'checkpoint') digest mismatch")
        return None

    # -- live migration (docs/control-plane.md) -----------------------------------------

    def migrate(self, visibility: Union[str, VisibilityModel]
                ) -> MigrationReport:
        """Flip this home's visibility model live, at a checkpoint
        boundary, without discarding its history.

        Forces a checkpoint (the digest-pinned boundary), rebuilds the
        stack under the *target* model and deterministically replays the
        WAL's input records through the new policy — the same machinery
        as :meth:`recover`, pointed at a different controller.  Because
        inputs + seed are a complete recipe, the migrated hub's state
        and subsequent behavior are identical to a hub that ran under
        the target model from the start (pinned by the migration grid
        test).  A crash plan that fires during replay where the source
        model never hit it is transparently resumed and journaled.

        On failure the hub is left *crashed* with the pre-migration WAL
        intact for post-mortem and :class:`~repro.errors.MigrationError`
        is raised; a fleet supervisor treats the home as failed.
        """
        if self.durability is None:
            raise SafeHomeError(
                "live migration needs a durable hub: construct with "
                "SafeHome(..., durability=True)")
        self._ensure_alive()
        target = VisibilityModel.parse(visibility)
        source = VisibilityModel.parse(self._ctor["visibility"])
        started = DurabilityManager.wall_clock()
        # The flip happens at a forced checkpoint: its digest is the
        # boundary evidence carried into the migration report/marker.
        boundary = self.durability.take_checkpoint()
        old_manager = self.durability
        old_records = list(old_manager.wal.records)
        old_visibility = self._ctor["visibility"]
        if old_manager.storage is not None:
            # The source model's disk log becomes read-only input; the
            # target incarnation writes to staging until replay passes.
            old_manager.wal.sink = None
            old_manager.storage.close(write_final_seal=False)
        self._ctor["visibility"] = target.value
        try:
            self._build_stack()
            self._attach_durability(old_manager.config, staged=True)
            replayed, healed = self._replay_records(old_records,
                                                    heal_crashes=True)
            if self._crashed:
                raise MigrationError(
                    "replay under the target model ended crashed")
            if self.durability.storage is not None:
                self.durability.storage.commit_staging()
        except BaseException as exc:
            # A failed migration must not leave a half-replayed stack
            # accepting work: mark the hub crashed, drop the staged
            # disk log and point durability back at the intact
            # pre-migration WAL for post-mortem.
            if self.durability is not old_manager and \
                    self.durability is not None and \
                    self.durability.storage is not None:
                self.durability.storage.abort_staging()
            self._ctor["visibility"] = old_visibility
            self._crashed = True
            self._pending_crash = None
            self.durability = old_manager
            if isinstance(exc, Exception) and \
                    not isinstance(exc, MigrationError):
                raise MigrationError(
                    f"migration {source.value} -> {target.value} "
                    f"failed: {exc}") from exc
            raise
        self.durability.wal.append("migration", {
            "from": source.value,
            "to": target.value,
            "digest": boundary.digest,
            "events": self.sim.events_processed,
        }, self.sim.now)
        report = MigrationReport(
            from_model=source.value,
            to_model=target.value,
            at_time=boundary.time,
            at_events=boundary.events_processed,
            checkpoint_digest=boundary.digest,
            replayed_records=replayed,
            replayed_events=self.sim.events_processed,
            resumed_crashes=healed,
            wall_s=DurabilityManager.wall_clock() - started)
        self.migrations.append(report)
        return report

    # -- inspection ---------------------------------------------------------------------

    @property
    def last_result(self) -> Optional[RunResult]:
        """The :class:`RunResult` of the most recent :meth:`run`."""
        return self._last_result

    @property
    def initial(self) -> Optional[Dict[int, Any]]:
        """The initial device snapshot anchoring congruence checks
        (taken at workload load or first run/pump; ``None`` before)."""
        return self._initial

    def report(self, check_final: bool = True,
               exhaustive_limit: int = 7) -> MetricsReport:
        """Analyze the last run: every §7.1 metric for this home.

        Requires a prior :meth:`run`; the initial device snapshot taken
        at load/run time anchors the final-incongruence check.
        """
        if self._last_result is None or self._initial is None:
            raise SafeHomeError("no completed run to report on; "
                                "call run() first")
        return analyze(self._last_result, self._initial,
                       check_final=check_final,
                       exhaustive_limit=exhaustive_limit)

    def state_of(self, device_name: str) -> Any:
        return self.registry.by_name(device_name).state

    def snapshot(self) -> Dict[int, Any]:
        return self.registry.snapshot()
