"""The SafeHome edge hub (architecture of Fig 11).

Ties together the Routine Bank, the Routine Dispatcher (user/trigger
invocation), the Concurrency Controller (one of the visibility models)
and the Failure Detector.
"""

from repro.hub.durability import (DurabilityConfig, RecoveryReport,
                                  WriteAheadLog)
from repro.hub.failure_detector import FailureDetector
from repro.hub.log import FeedbackLog
from repro.hub.routine_bank import RoutineBank
from repro.hub.safehome import SafeHome

__all__ = ["SafeHome", "RoutineBank", "FailureDetector", "FeedbackLog",
           "DurabilityConfig", "RecoveryReport", "WriteAheadLog"]
