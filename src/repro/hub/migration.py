"""Live visibility-model migration for the durable hub.

A migration flips a running home's visibility model (e.g. WV -> EV) at
a checkpoint boundary without discarding its history.  The mechanism
reuses the crash-recovery machinery (docs/durability.md): the hub
forces a checkpoint (digest-pinned boundary evidence), rebuilds its
stack with the *target* model and deterministically replays every
durable input record under the new policy.  Because the WAL's inputs
plus the seed are a complete recipe for re-execution, the migrated hub
is indistinguishable from one that had been started under the target
model from the beginning — tests/test_migration.py pins byte-identical
final reports across the whole model grid.

The :class:`MigrationReport` here is the deterministic record of what
one migration did; :meth:`SafeHome.migrate` returns it and appends it
to ``SafeHome.migrations``.
"""

from dataclasses import dataclass
from typing import Any, Dict


@dataclass
class MigrationReport:
    """What one live model migration did, and what it cost."""

    from_model: str
    to_model: str
    at_time: float              # virtual time of the boundary checkpoint
    at_events: int              # simulator events at the boundary
    checkpoint_digest: str      # digest of the boundary checkpoint
    replayed_records: int       # input records re-applied
    replayed_events: int        # simulator events re-executed
    resumed_crashes: int        # crashes that (re)fired during replay
    wall_s: float = 0.0         # wall-clock migration time (measurement)

    def row(self) -> Dict[str, Any]:
        """Deterministic summary (wall time excluded)."""
        return {
            "from_model": self.from_model,
            "to_model": self.to_model,
            "at_time": round(self.at_time, 6),
            "at_events": self.at_events,
            "checkpoint_digest": self.checkpoint_digest,
            "replayed_records": self.replayed_records,
            "replayed_events": self.replayed_events,
            "resumed_crashes": self.resumed_crashes,
        }
