"""Hub checkpoints: periodic snapshots of every stateful layer.

A checkpoint captures, at an event boundary, the full recoverable state
of the hub: device states (and up/down flags), the execution core's
:class:`~repro.core.execution.locks.LockTable` and per-device FIFO
queues, and the active controller's model-specific state — EV lineage
entries, PSV/GSV admission holdings, OCC read/write sets — via the
``snapshot_state()`` contract every controller implements.

Checkpoints serve three roles:

* **compaction floor** — observation records below the checkpoint may
  be dropped from the WAL; the checkpoint's digest stands in for them;
* **replay verification** — recovery re-executes the input log, and the
  regenerated checkpoints' digests must match the logged ones, so a
  divergence anywhere in the prefix is caught even after compaction;
* **measurement** — `benchmarks/bench_recovery.py` sweeps the
  checkpoint interval against recovery time and WAL length.

The state dict holds raw in-memory values (rollback targets must keep
object identity); digests and the JSON form pass through
:func:`~repro.hub.durability.wal.jsonify`.
"""

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict

from repro.hub.durability.wal import jsonify


def state_digest(state: Dict[str, Any]) -> str:
    """Deterministic digest of a captured state dict."""
    canonical = json.dumps(jsonify(state), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class Checkpoint:
    """One captured hub state, taken at an event boundary."""

    seq: int                    # WAL sequence floor (first seq NOT covered)
    time: float                 # virtual time of capture
    events_processed: int       # simulator event count at capture
    digest: str                 # sha256 over the jsonified state
    state: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self, include_state: bool = True) -> Dict[str, Any]:
        data = {"seq": self.seq, "time": self.time,
                "events": self.events_processed, "digest": self.digest}
        if include_state:
            data["state"] = jsonify(self.state)
        return data


def capture_checkpoint(seq: int, time: float, events_processed: int,
                       state: Dict[str, Any]) -> Checkpoint:
    """Build a checkpoint (digest computed here, state kept raw)."""
    return Checkpoint(seq=seq, time=time,
                      events_processed=events_processed,
                      digest=state_digest(state), state=state)
