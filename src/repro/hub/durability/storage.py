"""On-disk segmented write-ahead log: the hub's durable substrate.

PR 3 gave the hub a typed in-memory WAL; this module puts it on disk in
a form that *detects and survives* storage faults instead of trusting
the filesystem.  A durable home constructed with
``SafeHome(durability=True, wal_dir=...)`` streams every materialized
WAL record into segment files:

* **segments** — append-only files ``wal-000000.seg``, rolled once a
  segment passes ``segment_max_bytes``.  Each starts with an 8-byte
  magic and a header frame carrying schema version, home label,
  segment index and the first record sequence number it holds, so a
  scanner can reject foreign files and detect missing segments.
* **frames** — every record is one length-prefixed frame
  (``<u32 payload_len, u32 crc32, u8 kind>`` + canonical-JSON payload).
  The CRC covers kind + payload, so a single flipped bit anywhere in a
  record is caught.  The payload is the same canonical JSON record form
  (``WalRecord.to_dict`` with sorted keys) the fleet spool writes, so
  both durable artifacts share one record format.
* **seals** — at every checkpoint boundary the writer appends a seal
  frame holding the checkpoint's sequence floor, event count and state
  digest; ``close()`` appends a final seal.  Everything at or before a
  seal is *fsynced history*; anything after the last seal is the
  crash-window tail.
* **flush discipline** — the observation buffer drains at simulator
  event boundaries (PR 5); the storage writer flushes at the same
  boundary, so the on-disk tail is torn only ever at an event boundary
  plus whatever the OS lost mid-write.

Reading back is a *detect-and-classify* scan (:func:`scan_wal_dir`):

* a structural failure (short frame, insane length, partial header) or
  a CRC mismatch on the **final** frame of the **last** segment is a
  torn tail — the designed crash image — and is truncated, loudly
  recorded in the scan, never raised;
* anything else — CRC mismatch mid-log, a sequence number that jumps,
  repeats or reorders, a truncated non-last segment, a checkpoint
  record whose seal frame is missing or disagrees — raises a typed
  :class:`~repro.errors.CorruptionError` carrying the record seq,
  record type and byte offset.

Recovery rewrites the log: a recovered hub's in-memory WAL re-copies
the input history under fresh sequence numbers, so the disk image of
the new incarnation is written into a staging directory and swapped in
only after replay verification passes (``commit_staging``); a failed
recovery leaves the crashed log untouched for retry or post-mortem.
"""

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CorruptionError, SafeHomeError
from repro.hub.durability.wal import WalRecord

#: File-format constants.  The magic rejects foreign files before any
#: frame parsing; the version lives in every segment header.
MAGIC = b"REPROWAL"
SEGMENT_SCHEMA = "repro-wal-seg/1"
SEGMENT_VERSION = 1
SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".seg"
STAGING_DIR = ".staging-wal"

#: Frame header: payload length, crc32(kind + payload), frame kind.
FRAME = struct.Struct("<IIB")
KIND_HEADER = 0
KIND_RECORD = 1
KIND_SEAL = 2
_KIND_NAMES = {KIND_HEADER: "header", KIND_RECORD: "record",
               KIND_SEAL: "seal"}

#: Upper bound on a single frame payload; larger lengths are treated as
#: structural damage (a torn length field), not an allocation request.
MAX_PAYLOAD = 64 * 1024 * 1024

#: How far past a structural failure the scanner searches for a
#: coherent frame before accepting the torn-tail classification.
RESYNC_WINDOW = 4 * 1024 * 1024


def _find_frame_after(data: bytes, start: int) -> Optional[int]:
    """Offset of the first coherent frame at/after ``start``, else None.

    The disambiguator between a torn tail and mid-log damage: appends
    are sequential, so a genuine crash truncates the file — nothing
    follows the tear.  A CRC-valid frame *after* a structural failure
    means bytes were lost or mangled mid-log (the odds of torn garbage
    passing a CRC32 are ~2^-32, ignored).
    """
    end = min(len(data), start + RESYNC_WINDOW)
    for candidate in range(start, end - FRAME.size + 1):
        length, crc, kind = FRAME.unpack_from(data, candidate)
        if kind > KIND_SEAL or length > MAX_PAYLOAD:
            continue
        body = candidate + FRAME.size
        if body + length > len(data):
            continue
        payload = data[body:body + length]
        if zlib.crc32(bytes([kind]) + payload) & 0xFFFFFFFF == crc:
            return candidate
    return None


def canonical_json(payload: Dict[str, Any]) -> bytes:
    """The one serialized form every frame payload uses (shared with
    the fleet spool: sorted keys, compact separators, UTF-8)."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def encode_frame(kind: int, payload: bytes) -> bytes:
    crc = zlib.crc32(bytes([kind]) + payload) & 0xFFFFFFFF
    return FRAME.pack(len(payload), crc, kind) + payload


def segment_name(index: int) -> str:
    return f"{SEGMENT_PREFIX}{index:06d}{SEGMENT_SUFFIX}"


def list_segments(wal_dir: str) -> List[str]:
    """Sorted segment file names in ``wal_dir`` (names only)."""
    return sorted(entry for entry in os.listdir(wal_dir)
                  if entry.startswith(SEGMENT_PREFIX)
                  and entry.endswith(SEGMENT_SUFFIX))


# ---------------------------------------------------------------------------
# writer


class SegmentedWalWriter:
    """Append-only segmented WAL writer for one durable home.

    ``staging=True`` writes into ``wal_dir/.staging-wal`` — recovery
    and migration build the new incarnation's log there and swap it in
    (:meth:`commit_staging`) only after replay verification, so the
    crashed log survives a failed recovery byte-for-byte.
    """

    def __init__(self, wal_dir: str, home: str = "home",
                 segment_max_bytes: int = 256 * 1024,
                 staging: bool = False) -> None:
        if segment_max_bytes < 1024:
            raise ValueError("segment_max_bytes must be >= 1024")
        self.wal_dir = wal_dir
        self.home = home
        self.segment_max_bytes = segment_max_bytes
        self.staging = staging
        self._dir = os.path.join(wal_dir, STAGING_DIR) if staging \
            else wal_dir
        os.makedirs(self._dir, exist_ok=True)
        existing = list_segments(self._dir)
        if existing:
            raise SafeHomeError(
                f"refusing to overwrite existing WAL segments in "
                f"{self._dir!r} (found {existing[0]}); scan or remove "
                f"them first")
        self._handle = None
        self._segment_index = -1
        self._segment_bytes = 0
        self._next_seq = 0
        self.closed = False

    # -- segment management ---------------------------------------------------

    def _roll(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
        self._segment_index += 1
        path = os.path.join(self._dir, segment_name(self._segment_index))
        self._handle = open(path, "wb")
        self._handle.write(MAGIC)
        header = canonical_json({
            "base_seq": self._next_seq,
            "home": self.home,
            "schema": SEGMENT_SCHEMA,
            "segment": self._segment_index,
            "version": SEGMENT_VERSION,
        })
        frame = encode_frame(KIND_HEADER, header)
        self._handle.write(frame)
        self._segment_bytes = len(MAGIC) + len(frame)

    def _write(self, kind: int, payload: Dict[str, Any]) -> None:
        if self.closed:
            raise SafeHomeError("the WAL writer is closed")
        if self._handle is None or \
                self._segment_bytes >= self.segment_max_bytes:
            self._roll()
        frame = encode_frame(kind, canonical_json(payload))
        self._handle.write(frame)
        self._segment_bytes += len(frame)

    # -- the durable surface --------------------------------------------------

    def append(self, record: WalRecord) -> None:
        """Append one materialized WAL record (any type, in order)."""
        self._write(KIND_RECORD, record.to_dict())
        self._next_seq = record.seq + 1

    def seal(self, seq: int, digest: Optional[str], events: int,
             time: float, index: int, final: bool = False) -> None:
        """Seal the log at a checkpoint boundary (or at clean close).

        Everything below ``seq`` is now digest-protected history; a
        torn tail can only ever cost records after the last seal.
        """
        payload = {"digest": digest, "events": events, "final": final,
                   "index": index, "seq": seq, "time": time}
        self._write(KIND_SEAL, payload)
        self.flush()

    def flush(self) -> None:
        """Event-boundary flush: push buffered bytes to the OS."""
        if self._handle is not None:
            self._handle.flush()

    def sync(self) -> None:
        """Full durability barrier (flush + fsync); checkpoint-rate."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self, seal_events: int = 0, seal_time: float = 0.0,
              seal_index: int = 0, write_final_seal: bool = True) -> None:
        """Finish the log: optional final seal, flush, close handles.

        A log whose last frame is a ``final`` seal was closed cleanly;
        the scanner reports anything else as a crash image.
        """
        if self.closed:
            return
        if write_final_seal and self._handle is not None:
            self.seal(seq=self._next_seq, digest=None, events=seal_events,
                      time=seal_time, index=seal_index, final=True)
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None
        self.closed = True

    # -- staging swap (recovery / migration) ----------------------------------

    def commit_staging(self) -> None:
        """Replace the live log with this staged incarnation."""
        if not self.staging:
            raise SafeHomeError("commit_staging on a non-staged writer")
        if not self.closed:
            if self._handle is not None:
                self._handle.flush()
                self._handle.close()
                self._handle = None
            self.closed = True
        for name in list_segments(self.wal_dir):
            os.remove(os.path.join(self.wal_dir, name))
        for name in list_segments(self._dir):
            os.replace(os.path.join(self._dir, name),
                       os.path.join(self.wal_dir, name))
        os.rmdir(self._dir)
        # The committed writer keeps appending to the live directory.
        self.staging = False
        self._dir = self.wal_dir
        self.closed = False
        if self._segment_index >= 0:
            path = os.path.join(self._dir,
                                segment_name(self._segment_index))
            self._handle = open(path, "ab")

    def abort_staging(self) -> None:
        """Drop the staged incarnation; the live log is untouched."""
        if not self.staging:
            return
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self.closed = True
        if os.path.isdir(self._dir):
            for name in os.listdir(self._dir):
                os.remove(os.path.join(self._dir, name))
            os.rmdir(self._dir)


# ---------------------------------------------------------------------------
# scanner


@dataclass
class SegmentInfo:
    """Per-segment scan summary (names only — reports stay relocatable)."""

    name: str
    index: int
    base_seq: int
    bytes: int
    records: int
    seals: int

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "index": self.index,
                "base_seq": self.base_seq, "bytes": self.bytes,
                "records": self.records, "seals": self.seals}


@dataclass
class WalScan:
    """Everything one pass over a WAL directory learned."""

    home: Optional[str] = None
    segments: List[SegmentInfo] = field(default_factory=list)
    records: List[WalRecord] = field(default_factory=list)
    #: Byte offset of each record's frame inside its segment, parallel
    #: to :attr:`records` — ``(segment_name, offset)``.
    record_offsets: List[Tuple[str, int]] = field(default_factory=list)
    seals: List[Dict[str, Any]] = field(default_factory=list)
    truncated: Optional[Dict[str, Any]] = None
    corruption: Optional[CorruptionError] = None
    clean_close: bool = False

    @property
    def status(self) -> str:
        if self.corruption is not None:
            return "corrupt"
        if self.truncated is not None:
            return "truncated"
        return "clean"

    def good_records(self) -> List[WalRecord]:
        """Records safe to replay: everything parsed before damage."""
        return self.records

    def last_seal_before_corruption(self) -> Optional[Dict[str, Any]]:
        """The salvage floor: seals always precede the damage point
        in scan order, so the last parsed seal is the last good
        checkpoint boundary."""
        non_final = [s for s in self.seals if not s.get("final")]
        return non_final[-1] if non_final else None


def _parse_frames(data: bytes, name: str, is_last_segment: bool,
                  scan: WalScan, expected_seq: int) -> int:
    """Parse one segment's frames into ``scan``; returns next seq.

    Sets ``scan.truncated`` (and stops) for the designed crash image;
    sets ``scan.corruption`` (and stops) for real damage.
    """

    def truncate(offset: int, reason: str) -> None:
        # A coherent frame beyond the failure point means this is not
        # a tail at all: appends are sequential, so a genuine crash
        # leaves nothing after the tear.
        resync = _find_frame_after(data, offset + 1)
        if resync is not None:
            corrupt(offset,
                    f"{reason}, but a coherent frame follows at offset "
                    f"{resync} (bytes lost or mangled mid-log)")
            return
        scan.truncated = {"segment": name, "offset": offset,
                          "bytes_dropped": len(data) - offset,
                          "reason": reason}

    def corrupt(offset: int, detail: str, seq=None,
                record_type=None) -> None:
        scan.corruption = CorruptionError(
            detail, path=name, offset=offset,
            seq=expected_seq if seq is None else seq,
            record_type=record_type)

    if not data.startswith(MAGIC):
        if is_last_segment:
            truncate(0, "bad or partial segment magic")
        else:
            corrupt(0, "bad segment magic", record_type="magic")
        return expected_seq

    offset = len(MAGIC)
    saw_header = False
    seg_records = 0
    seg_seals = 0
    base_seq = expected_seq
    while offset < len(data):
        remaining = len(data) - offset
        if remaining < FRAME.size:
            if is_last_segment:
                truncate(offset, "partial frame header at end of log")
            else:
                corrupt(offset, "partial frame header mid-log")
            break
        length, crc, kind = FRAME.unpack_from(data, offset)
        body_start = offset + FRAME.size
        if length > MAX_PAYLOAD:
            if is_last_segment:
                truncate(offset, "insane frame length (torn write)")
            else:
                corrupt(offset, f"insane frame length {length}")
            break
        if body_start + length > len(data):
            if is_last_segment:
                truncate(offset, "frame payload torn at end of log")
            else:
                corrupt(offset, "frame payload truncated mid-log")
            break
        payload = data[body_start:body_start + length]
        frame_end = body_start + length
        if zlib.crc32(bytes([kind]) + payload) & 0xFFFFFFFF != crc:
            # A bad CRC on the very last frame of the log is part of
            # the unsealed crash window; anywhere else it is bit rot.
            if is_last_segment and frame_end == len(data):
                truncate(offset, "crc mismatch on final unsealed frame")
            else:
                corrupt(offset,
                        f"crc mismatch in {_KIND_NAMES.get(kind, kind)} "
                        f"frame",
                        record_type=_KIND_NAMES.get(kind))
            break
        try:
            doc = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            corrupt(offset, "undecodable frame payload (valid crc)",
                    record_type=_KIND_NAMES.get(kind))
            break
        if kind == KIND_HEADER:
            if saw_header:
                corrupt(offset, "duplicate segment header",
                        record_type="header")
                break
            saw_header = True
            if doc.get("schema") != SEGMENT_SCHEMA or \
                    doc.get("version") != SEGMENT_VERSION:
                corrupt(offset,
                        f"unsupported segment schema "
                        f"{doc.get('schema')!r} v{doc.get('version')!r}",
                        record_type="header")
                break
            if segment_name(int(doc.get("segment", -1))) != name:
                corrupt(offset,
                        f"segment header claims index "
                        f"{doc.get('segment')!r} in file {name}",
                        record_type="header")
                break
            if doc.get("base_seq") != expected_seq:
                corrupt(offset,
                        f"segment base_seq {doc.get('base_seq')}, "
                        f"expected {expected_seq} (missing segment?)",
                        record_type="header")
                break
            base_seq = doc["base_seq"]
            if scan.home is None:
                scan.home = doc.get("home")
        elif not saw_header:
            corrupt(offset, "first frame is not a segment header",
                    record_type=_KIND_NAMES.get(kind))
            break
        elif kind == KIND_RECORD:
            try:
                record = WalRecord.from_dict(doc)
            except (KeyError, TypeError, ValueError):
                corrupt(offset, "malformed WAL record dict",
                        record_type="record")
                break
            if record.seq != expected_seq:
                corrupt(offset,
                        f"sequence break: record seq {record.seq}, "
                        f"expected {expected_seq} (duplicated, "
                        f"reordered or dropped frame)",
                        seq=record.seq, record_type=record.type)
                break
            scan.records.append(record)
            scan.record_offsets.append((name, offset))
            seg_records += 1
            expected_seq += 1
        elif kind == KIND_SEAL:
            if doc.get("seq") != expected_seq:
                corrupt(offset,
                        f"seal claims sequence floor {doc.get('seq')}, "
                        f"stream is at {expected_seq}",
                        record_type="seal")
                break
            scan.seals.append(doc)
            seg_seals += 1
            scan.clean_close = bool(doc.get("final")) \
                and is_last_segment and frame_end == len(data)
        else:
            corrupt(offset, f"unknown frame kind {kind}",
                    record_type=str(kind))
            break
        offset = frame_end

    scan.segments.append(SegmentInfo(
        name=name, index=len(scan.segments), base_seq=base_seq,
        bytes=len(data), records=seg_records, seals=seg_seals))
    return expected_seq


def _cross_check_seals(scan: WalScan) -> None:
    """Every checkpoint observation record must have a matching seal.

    The seal frame is written at capture time, the checkpoint record
    flushes at the next event boundary — so a checkpoint record whose
    seal is absent (or whose digest disagrees) means a seal frame was
    removed or tampered with, not a crash window.
    """
    seals_by_index = {s.get("index"): s for s in scan.seals
                      if not s.get("final")}
    for position, record in enumerate(scan.records):
        if record.type != "checkpoint":
            continue
        index = record.payload.get("index")
        seal = seals_by_index.get(index)
        name, offset = scan.record_offsets[position]
        if seal is None:
            scan.corruption = CorruptionError(
                f"checkpoint {index} has no seal frame (missing seal)",
                path=name, offset=offset, seq=record.seq,
                record_type=record.type)
            return
        if seal.get("digest") != record.payload.get("digest"):
            scan.corruption = CorruptionError(
                f"checkpoint {index} digest disagrees with its seal",
                path=name, offset=offset, seq=record.seq,
                record_type=record.type)
            return


def scan_wal_dir(wal_dir: str, strict: bool = True) -> WalScan:
    """Read a segmented WAL directory into a classified :class:`WalScan`.

    ``strict=True`` (verify semantics) raises the scan's
    :class:`~repro.errors.CorruptionError`; ``strict=False`` (salvage
    semantics) returns the scan with the damage attached and the good
    prefix intact.  Tail truncation never raises — it is the designed
    crash image, recorded in ``scan.truncated``.
    """
    names = list_segments(wal_dir)
    if not names:
        raise SafeHomeError(f"no WAL segments in {wal_dir!r}")
    scan = WalScan()
    expected_seq = 0
    for position, name in enumerate(names):
        if scan.truncated is not None:
            # Frames after a torn tail would mean the tail was not a
            # tail at all: segments beyond the truncation are damage.
            scan.corruption = CorruptionError(
                f"segment {name} follows a torn tail in "
                f"{scan.truncated['segment']}",
                path=name, offset=0, seq=expected_seq)
            break
        if scan.corruption is not None:
            break
        with open(os.path.join(wal_dir, name), "rb") as handle:
            data = handle.read()
        expected_seq = _parse_frames(
            data, name, is_last_segment=(position == len(names) - 1),
            scan=scan, expected_seq=expected_seq)
    if scan.corruption is None:
        _cross_check_seals(scan)
    if strict and scan.corruption is not None:
        raise scan.corruption
    return scan
