"""Crash/recovery protocol for the durable hub.

The hub is a deterministic asynchronous system: the event queue is
totally ordered and every random draw comes from a named seeded stream.
Recovery therefore follows the deterministic-replay school (Vlad's
*regular asynchronous systems*): rebuild a fresh stack, re-apply the
WAL's input records in order, and re-execute the simulation to the
exact crash boundary.  The regenerated observation stream and
checkpoint digests must match the log byte-for-byte — replay is
*verified*, not assumed — and any divergence raises
:class:`~repro.errors.RecoveryError`.

Two recovery modes decide the fate of routines that were running when
the hub died (``DurabilityConfig.recovery``):

* ``"replay"`` (default) — every in-flight routine resumes exactly
  where it was; the recovered hub's final report is byte-identical to
  an uninterrupted run.
* ``"policy"`` — each visibility model applies its own rule via
  ``Controller.hub_recovery_action``: strict models (GSV/S-GSV/PSV)
  abort routines caught mid-execution because a strict serialization
  cannot span an outage, while WV, EV and OCC re-issue (WV promises
  nothing, EV's lineage reconstructs every in-flight position, OCC
  re-validates at its finish point).
"""

import time as _wall
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.hub.durability.checkpoint import Checkpoint, capture_checkpoint
from repro.hub.durability.wal import WriteAheadLog

#: Recovery modes (see module docstring).
RECOVERY_MODES = ("replay", "policy")


@dataclass
class DurabilityConfig:
    """Tunables of the durable hub."""

    #: Take a checkpoint every N observation records (0 disables).
    checkpoint_every: int = 64
    #: Default recovery mode for :meth:`SafeHome.recover`.
    recovery: str = "replay"
    #: Drop observation records below each new checkpoint (bounds WAL
    #: memory; verification then covers the digest-protected prefix
    #: plus the live suffix).
    compact_on_checkpoint: bool = False

    def __post_init__(self) -> None:
        if self.recovery not in RECOVERY_MODES:
            raise ValueError(f"unknown recovery mode {self.recovery!r}; "
                             f"pick from {RECOVERY_MODES}")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")


@dataclass(frozen=True)
class CrashPlan:
    """A scheduled hub crash: at a virtual time or an event index.

    ``after_events`` counts *total* simulator events (cumulative across
    run calls), which stays meaningful across recoveries because replay
    re-processes exactly the pre-crash events.
    """

    at: Optional[float] = None
    after_events: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.at is None) == (self.after_events is None):
            raise ValueError(
                "exactly one of at= / after_events= must be given")
        if self.after_events is not None and self.after_events < 1:
            raise ValueError("after_events must be >= 1")

    def to_payload(self) -> Dict[str, Any]:
        return {"at": self.at, "after_events": self.after_events}

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "CrashPlan":
        return cls(at=payload.get("at"),
                   after_events=payload.get("after_events"))


@dataclass
class RecoveryReport:
    """What one recovery did, and what it cost."""

    mode: str
    crash_time: float
    crash_events: int
    replayed_events: int        # simulator events re-executed
    replayed_records: int       # observation records re-verified
    wal_records: int            # total WAL length at crash
    checkpoints_verified: int
    resumed: List[int] = field(default_factory=list)    # routine ids
    aborted: List[int] = field(default_factory=list)    # routine ids
    wall_s: float = 0.0         # wall-clock recovery time (measurement)
    #: Present only after ``recover(mode="salvage")``: what the salvage
    #: cut (floor seq / events, dropped record counts, oracle verdict).
    #: ``None`` keeps :meth:`row` byte-identical for replay/policy.
    salvage: Optional[Dict[str, Any]] = None

    def row(self) -> Dict[str, Any]:
        """Deterministic summary (wall time excluded — see to_row_timed)."""
        row = {
            "mode": self.mode,
            "crash_time": round(self.crash_time, 6),
            "crash_events": self.crash_events,
            "replayed_events": self.replayed_events,
            "replayed_records": self.replayed_records,
            "wal_records": self.wal_records,
            "checkpoints_verified": self.checkpoints_verified,
            "resumed": list(self.resumed),
            "aborted": list(self.aborted),
        }
        if self.salvage is not None:
            row["salvage"] = dict(self.salvage)
        return row


class DurabilityManager:
    """WAL + checkpoints for one hub; the controller's journal target.

    The manager never drives execution: controllers call
    :meth:`observe`, the facade records inputs via :meth:`record_input`,
    and the simulator's post-event hook gives checkpoints their
    event-boundary timing.  ``capture_state``/``events``/``now`` are
    callables supplied by the owning :class:`SafeHome` so the manager
    survives the facade rebuilding its stack during recovery.
    """

    def __init__(self, config: DurabilityConfig, capture_state,
                 events, now) -> None:
        self.config = config
        self.wal = WriteAheadLog()
        self.checkpoints: List[Checkpoint] = []
        self._capture_state = capture_state
        self._events = events
        self._now = now
        self._observations_since_checkpoint = 0
        self._checkpoint_due = False
        #: Optional on-disk segmented writer (storage.SegmentedWalWriter).
        #: Attached by SafeHome when ``wal_dir`` is given; the manager
        #: streams records through ``wal.sink``, seals at checkpoints
        #: and flushes at event boundaries.
        self.storage = None

    def attach_storage(self, storage) -> None:
        """Stream every materialized record into ``storage`` and give
        checkpoints their on-disk seal frames."""
        self.storage = storage
        self.wal.sink = storage.append

    # -- journal protocol (called by controllers and the facade) --------------

    def record_input(self, type_: str,
                     payload: Dict[str, Any]) -> None:
        self.wal.append(type_, payload, self._now())

    def observe(self, type_: str, payload: Dict[str, Any],
                time: float) -> None:
        # Buffered: the WAL materializes (and sequence-numbers) the
        # observation at the next event boundary — see on_event_processed
        # — so the hub's per-decision path only appends a tuple.
        self.wal.buffer_observation(type_, payload, time)
        if self.config.checkpoint_every:
            self._observations_since_checkpoint += 1
            if self._observations_since_checkpoint >= \
                    self.config.checkpoint_every:
                # Capture is deferred to the next event boundary so the
                # snapshot never sees a half-applied event.
                self._checkpoint_due = True

    def mark_crash(self, plan_payload: Dict[str, Any]) -> None:
        self.wal.append("crash", {
            **plan_payload,
            "time": self._now(),
            "events": self._events(),
        }, self._now())

    # -- checkpointing ---------------------------------------------------------

    def on_event_processed(self) -> None:
        """Simulator post-event hook: flush the observation buffer
        (batch JSON-ready record construction per event boundary) and
        take due checkpoints here."""
        wal = self.wal
        if wal._pending:
            wal.flush()
        if self._checkpoint_due:
            self._checkpoint_due = False
            self.take_checkpoint()
        elif self.storage is not None:
            # Event-boundary durability: the on-disk tail is torn only
            # ever at an event boundary (checkpoints flush via seal()).
            self.storage.flush()

    def take_checkpoint(self) -> Checkpoint:
        self.wal.flush()        # the seq floor must cover the buffer
        self._observations_since_checkpoint = 0
        checkpoint = capture_checkpoint(
            seq=self.wal._next_seq, time=self._now(),
            events_processed=self._events(),
            state=self._capture_state())
        self.checkpoints.append(checkpoint)
        if self.storage is not None:
            # The seal lands *before* the checkpoint observation record
            # (which materializes at the next flush with this seq), so
            # the scanner's floor invariant is seal.seq == next record.
            self.storage.seal(
                seq=checkpoint.seq, digest=checkpoint.digest,
                events=checkpoint.events_processed, time=checkpoint.time,
                index=len(self.checkpoints) - 1)
        # The marker doubles as in-log digest evidence: replay
        # regenerates it and the observation comparison covers it.
        self.observe("checkpoint", {
            "digest": checkpoint.digest,
            "events": checkpoint.events_processed,
            "index": len(self.checkpoints) - 1,
        }, self._now())
        if self.config.compact_on_checkpoint:
            self.wal.compact(checkpoint.seq)
        return checkpoint

    # -- measurement helpers ----------------------------------------------------

    @staticmethod
    def wall_clock() -> float:
        return _wall.perf_counter()
