"""``repro fsck``: offline verification and salvage of durable logs.

The filesystem-checker for this repo's two durable artifacts:

* **single-home WAL directories** — segmented CRC-framed logs written
  by ``SafeHome(durability=True, wal_dir=...)``;
* **fleet spool directories** — ``fleet-wal.jsonl`` plus its byte
  offset index, written by :func:`repro.fleet.spool.merge_spool`.

A home check runs the full pipeline: :func:`~repro.hub.durability.
storage.scan_wal_dir` classifies the bytes (clean / crash-consistent
torn tail / corrupt), then the surviving records are *replayed and
verified* — regenerated observation identities and checkpoint digests
against the log — and the congruence oracle passes over the replayed
home.  With ``salvage=True`` a corrupt log is additionally cut at its
last good checkpoint and salvaged (:meth:`SafeHome.salvage_records`).

Exit-code contract (classic fsck convention, pinned by tests):

* ``0`` — healthy: clean log, or a crash-consistent torn tail whose
  surviving prefix replays and verifies;
* ``1`` — damage found and corrected: corruption detected, salvage
  produced an oracle-clean home;
* ``2`` — damage found and NOT corrected: corruption without salvage,
  a salvage that failed verification, or a prefix replay divergence.

Every report field is deterministic (virtual times, relative segment
names, no wall clocks), so ``tests/fixtures/fsck`` pins byte-exact
expected reports for golden damaged logs.
"""

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import CorruptionError, RecoveryError, SafeHomeError
from repro.hub.durability.storage import (SEGMENT_PREFIX, SEGMENT_SUFFIX,
                                          WalScan, scan_wal_dir)

REPORT_SCHEMA = "repro-fsck-report/1"


@dataclass
class FsckReport:
    """Outcome of one ``repro fsck`` pass over one artifact."""

    target: str                       # "home" | "fleet"
    path: str
    status: str                       # "clean" | "truncated" | "corrupt"
    clean_close: bool = False
    home: Optional[str] = None
    segments: List[Dict[str, Any]] = field(default_factory=list)
    records: int = 0
    seals: int = 0
    truncated: Optional[Dict[str, Any]] = None
    corruption: Optional[Dict[str, Any]] = None
    verify: Optional[Dict[str, Any]] = None
    salvage: Optional[Dict[str, Any]] = None
    fleet: Optional[Dict[str, Any]] = None
    #: The home rebuilt by verification/salvage (not serialized).
    replayed_home: Any = None

    def exit_code(self) -> int:
        if self.status in ("clean", "truncated"):
            if self.verify is not None and not self.verify["ok"]:
                return 2
            return 0
        if self.salvage is not None and self.salvage["ok"]:
            oracle = self.salvage.get("oracle")
            if oracle is None or oracle["ok"]:
                return 1
        return 2

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "schema": REPORT_SCHEMA,
            "target": self.target,
            "status": self.status,
            "exit_code": self.exit_code(),
        }
        if self.target == "home":
            data.update({
                "clean_close": self.clean_close,
                "home": self.home,
                "segments": self.segments,
                "records": self.records,
                "seals": self.seals,
                "truncated": self.truncated,
                "corruption": self.corruption,
                "verify": self.verify,
                "salvage": self.salvage,
            })
        else:
            data["fleet"] = self.fleet
            data["corruption"] = self.corruption
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def _build_home_from_records(records):
    """A fresh durable hub matching the log's ``home-created`` record."""
    from repro.hub.durability.recovery import DurabilityConfig
    from repro.hub.safehome import SafeHome

    if not records or records[0].type != "home-created":
        raise CorruptionError(
            "log has no home-created record; nothing to replay",
            seq=records[0].seq if records else None,
            record_type=records[0].type if records else None)
    created = records[0].payload
    return SafeHome(
        visibility=created["visibility"],
        scheduler=created["scheduler"],
        execution=created["execution"],
        seed=created["seed"],
        detector_ping_period_s=created["detector_ping_period_s"],
        durability=DurabilityConfig(
            checkpoint_every=created["checkpoint_every"]))


def _oracle_verdict(home) -> Optional[Dict[str, Any]]:
    """Congruence-oracle pass over a replayed home (None: no run)."""
    if home.last_result is None or home.initial is None:
        return None
    from repro.metrics.oracle import check_run

    return check_run(home.last_result, home.initial).to_dict()


def _replay_and_verify(scan: WalScan, bounded: bool) -> tuple:
    """(result_dict, replayed_home_or_None) for one scanned log."""
    try:
        home = _build_home_from_records(scan.records)
        report = home.salvage_records(scan.records, bounded=bounded)
        if bounded:
            # Salvage leaves the hub at the checkpoint boundary with
            # the event queue intact; life resumes from there.  Run to
            # the natural end so the oracle judges a finished run, not
            # a mid-flight snapshot.
            home.run()
    except (CorruptionError, RecoveryError, SafeHomeError,
            ValueError, KeyError) as exc:
        return ({"ok": False, "error": str(exc), "oracle": None,
                 "replayed_events": 0, "row": None}, None)
    return ({"ok": True, "error": None,
             "oracle": _oracle_verdict(home),
             "replayed_events": report.replayed_events,
             "row": report.row()}, home)


def fsck_home_dir(wal_dir: str, salvage: bool = False) -> FsckReport:
    """Check (and optionally salvage) one segmented home WAL dir."""
    scan = scan_wal_dir(wal_dir, strict=False)
    report = FsckReport(
        target="home", path=wal_dir, status=scan.status,
        clean_close=scan.clean_close, home=scan.home,
        segments=[seg.to_dict() for seg in scan.segments],
        records=len(scan.records), seals=len(scan.seals),
        truncated=scan.truncated,
        corruption=scan.corruption.to_dict()
        if scan.corruption is not None else None)
    if scan.status in ("clean", "truncated"):
        # Full replay verification: every surviving input re-applied,
        # every surviving digest re-checked, oracle on the result.
        report.verify, report.replayed_home = _replay_and_verify(
            scan, bounded=False)
    elif salvage:
        report.salvage, report.replayed_home = _replay_and_verify(
            scan, bounded=True)
        floor = scan.last_seal_before_corruption()
        if report.salvage["ok"]:
            report.salvage["floor"] = (
                {"seq": floor["seq"], "events": floor["events"]}
                if floor is not None else None)
    return report


def fsck_fleet_dir(wal_dir: str) -> FsckReport:
    """Verify a merged fleet spool (``fleet-wal.jsonl`` + index).

    Structural check per home: index entry in bounds, line decodes,
    identity matches, record counts agree with the index summary.
    Damage surfaces as the typed ``CorruptionError`` the spool loader
    raises (satellite: never a raw ``json.JSONDecodeError``).
    """
    from repro.fleet.spool import INDEX_NAME, MERGED_NAME, load_spooled_home

    index_path = os.path.join(wal_dir, INDEX_NAME)
    merged_path = os.path.join(wal_dir, MERGED_NAME)
    if not os.path.exists(index_path):
        raise SafeHomeError(f"no {INDEX_NAME} in {wal_dir!r}")
    with open(index_path, "r", encoding="utf-8") as handle:
        index = json.load(handle)
    fleet: Dict[str, Any] = {
        "homes": index.get("homes"),
        "wal_records": index.get("wal_records"),
        "verified_homes": 0,
        "verified_records": 0,
        "merged_bytes": os.path.getsize(merged_path)
        if os.path.exists(merged_path) else None,
    }
    report = FsckReport(target="fleet", path=wal_dir, status="clean",
                        fleet=fleet)
    try:
        for key in sorted(index.get("index", {}), key=int):
            record = load_spooled_home(wal_dir, int(key))
            fleet["verified_homes"] += 1
            fleet["verified_records"] += len(record["wal"])
        if fleet["verified_homes"] != fleet["homes"]:
            raise CorruptionError(
                f"index names {fleet['homes']} homes but "
                f"{fleet['verified_homes']} were loadable",
                path=index_path)
        if fleet["wal_records"] is not None and \
                fleet["verified_records"] != fleet["wal_records"]:
            raise CorruptionError(
                f"index sums {fleet['wal_records']} WAL records, merged "
                f"log holds {fleet['verified_records']}",
                path=index_path)
    except CorruptionError as exc:
        report.status = "corrupt"
        report.corruption = exc.to_dict()
    return report


def fsck_path(path: str, salvage: bool = False) -> FsckReport:
    """Dispatch on artifact type: home WAL dir or fleet spool dir."""
    from repro.fleet.spool import MERGED_NAME

    if os.path.isfile(path) and os.path.basename(path) == MERGED_NAME:
        return fsck_fleet_dir(os.path.dirname(path) or ".")
    if not os.path.isdir(path):
        raise SafeHomeError(f"{path!r} is not a WAL directory")
    entries = os.listdir(path)
    if any(entry.startswith(SEGMENT_PREFIX)
           and entry.endswith(SEGMENT_SUFFIX) for entry in entries):
        return fsck_home_dir(path, salvage=salvage)
    if MERGED_NAME in entries:
        return fsck_fleet_dir(path)
    raise SafeHomeError(
        f"{path!r} holds neither WAL segments ({SEGMENT_PREFIX}*"
        f"{SEGMENT_SUFFIX}) nor a fleet spool ({MERGED_NAME})")
