"""Durable hub: write-ahead log, checkpoints, crash/restart recovery.

See ``docs/durability.md`` for the record taxonomy, checkpoint format,
the on-disk frame layout and the per-model recovery policy table.
"""

from repro.hub.durability.checkpoint import (Checkpoint, capture_checkpoint,
                                             state_digest)
from repro.hub.durability.faults import FAULT_KINDS, inject_fault
from repro.hub.durability.fsck import FsckReport, fsck_path
from repro.hub.durability.recovery import (RECOVERY_MODES, CrashPlan,
                                           DurabilityConfig,
                                           DurabilityManager, RecoveryReport)
from repro.hub.durability.storage import (SegmentedWalWriter, WalScan,
                                          scan_wal_dir)
from repro.hub.durability.wal import (INPUT_TYPES, MARKER_TYPES,
                                      OBSERVATION_TYPES, WalRecord,
                                      WriteAheadLog, jsonify)

__all__ = [
    "WriteAheadLog",
    "WalRecord",
    "INPUT_TYPES",
    "OBSERVATION_TYPES",
    "MARKER_TYPES",
    "jsonify",
    "Checkpoint",
    "capture_checkpoint",
    "state_digest",
    "DurabilityConfig",
    "DurabilityManager",
    "CrashPlan",
    "RecoveryReport",
    "RECOVERY_MODES",
    "SegmentedWalWriter",
    "WalScan",
    "scan_wal_dir",
    "FAULT_KINDS",
    "inject_fault",
    "FsckReport",
    "fsck_path",
]
