"""Durable hub: write-ahead log, checkpoints, crash/restart recovery.

See ``docs/durability.md`` for the record taxonomy, checkpoint format
and the per-model recovery policy table.
"""

from repro.hub.durability.checkpoint import (Checkpoint, capture_checkpoint,
                                             state_digest)
from repro.hub.durability.recovery import (RECOVERY_MODES, CrashPlan,
                                           DurabilityConfig,
                                           DurabilityManager, RecoveryReport)
from repro.hub.durability.wal import (INPUT_TYPES, MARKER_TYPES,
                                      OBSERVATION_TYPES, WalRecord,
                                      WriteAheadLog, jsonify)

__all__ = [
    "WriteAheadLog",
    "WalRecord",
    "INPUT_TYPES",
    "OBSERVATION_TYPES",
    "MARKER_TYPES",
    "jsonify",
    "Checkpoint",
    "capture_checkpoint",
    "state_digest",
    "DurabilityConfig",
    "DurabilityManager",
    "CrashPlan",
    "RecoveryReport",
    "RECOVERY_MODES",
]
