"""Seeded storage-fault injector for on-disk WAL directories.

The hub-crash chaos machinery (PR 3) injects *process* deaths; this
module injects *storage* deaths into the segmented log that survives
them: the byte-level damage real disks and filesystems produce.  Every
fault is a pure function of ``(wal_dir contents, kind, seed)``, so a
corruption grid is exactly replayable — the same discipline the
simulator applies to time and randomness, extended to bit rot.

Fault kinds (:data:`FAULT_KINDS`):

* ``torn-tail`` — chop the last segment mid-frame: the designed crash
  image.  The scanner must classify it as truncation, never raise.
* ``truncated-segment`` — damage that *cannot* be a crash: cut the
  tail off a non-last segment, or carve bytes out of the middle when
  only one segment exists.
* ``bit-flip`` — flip one bit inside a frame that is not the final
  frame of the log (that position would be a legal torn tail).
* ``duplicate-frame`` — re-insert a copy of a record frame right after
  itself (a replayed write): valid CRC, broken sequence.
* ``reorder-frames`` — swap two adjacent record frames (reordered
  writeback): valid CRCs, broken sequence.
* ``missing-seal`` — remove a checkpoint seal frame; the checkpoint
  record that references it survives, so the cross-check must fire.

:func:`run_corruption_matrix` is the headline property harness (shared
by ``tests/test_fsck.py``, ``scripts/check.sh`` and the CI ``fsck``
job): for every model × execution × fault kind it corrupts a finished
home's log, runs ``fsck``, and classifies the outcome — byte-identical
replay, crash-consistent truncation, or loud salvage.  A *silent
divergence* (scanner says clean, nothing missing, state differs) is
what the whole layer exists to prevent; the matrix asserts zero.
"""

import json
import os
import random
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CorruptionError, RecoveryError, SafeHomeError
from repro.hub.durability.storage import (FRAME, KIND_HEADER, KIND_RECORD,
                                          KIND_SEAL, MAGIC, list_segments)

#: Every injectable fault kind, in grid order.
FAULT_KINDS = (
    "torn-tail",
    "truncated-segment",
    "bit-flip",
    "duplicate-frame",
    "reorder-frames",
    "missing-seal",
)


def _index_frames(data: bytes) -> List[Tuple[int, int, int]]:
    """Frame table of one healthy segment: (offset, total_len, kind)."""
    frames = []
    offset = len(MAGIC)
    while offset + FRAME.size <= len(data):
        length, _crc, kind = FRAME.unpack_from(data, offset)
        total = FRAME.size + length
        if offset + total > len(data):
            break
        frames.append((offset, total, kind))
        offset += total
    return frames


def _read(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _write(path: str, data: bytes) -> None:
    with open(path, "wb") as handle:
        handle.write(data)


def inject_fault(wal_dir: str, kind: str, seed: int = 0) -> Dict[str, Any]:
    """Damage one WAL directory in place, deterministically.

    Returns a description of what was done (segment, offset, bytes) so
    reports and fixtures can name the damage.  Raises ``ValueError``
    for an unknown kind and :class:`~repro.errors.SafeHomeError` when
    the log is too small to host the requested fault.
    """
    if kind not in FAULT_KINDS:
        raise ValueError(f"unknown fault kind {kind!r}; "
                         f"pick from {FAULT_KINDS}")
    names = list_segments(wal_dir)
    if not names:
        raise SafeHomeError(f"no WAL segments in {wal_dir!r}")
    # Stable per-kind stream (zlib.crc32, not hash(): the latter is
    # salted per process and would unseed the grid).
    rng = random.Random(zlib.crc32(kind.encode("utf-8")) * 1_000_003
                        + seed)

    if kind == "torn-tail":
        name = names[-1]
        path = os.path.join(wal_dir, name)
        data = _read(path)
        frames = _index_frames(data)
        victims = [f for f in frames if f[2] != KIND_HEADER]
        if not victims:
            raise SafeHomeError("last segment has no frames to tear")
        offset, total, _ = victims[-1] if len(victims) == 1 \
            else rng.choice(victims[len(victims) // 2:])
        cut = offset + rng.randrange(1, total)
        _write(path, data[:cut])
        return {"kind": kind, "segment": name, "offset": offset,
                "cut": cut, "bytes_dropped": len(data) - cut}

    if kind == "truncated-segment":
        if len(names) > 1:
            name = names[rng.randrange(len(names) - 1)]
            path = os.path.join(wal_dir, name)
            data = _read(path)
            frames = _index_frames(data)
            victims = [f for f in frames if f[2] != KIND_HEADER]
            if not victims:
                raise SafeHomeError(f"segment {name} has no frames")
            offset, total, _ = victims[-1]
            cut = offset + rng.randrange(1, total)
            _write(path, data[:cut])
            return {"kind": kind, "segment": name, "offset": offset,
                    "cut": cut, "bytes_dropped": len(data) - cut}
        # Single segment: carve a slice out of the middle instead (the
        # tail position would read as a legal torn tail).
        name = names[0]
        path = os.path.join(wal_dir, name)
        data = _read(path)
        frames = _index_frames(data)
        victims = [f for f in frames if f[2] == KIND_RECORD][:-1]
        if not victims:
            raise SafeHomeError("log too small to truncate mid-stream")
        offset, total, _ = rng.choice(victims)
        hole = rng.randrange(1, total)
        _write(path, data[:offset] + data[offset + hole:])
        return {"kind": kind, "segment": name, "offset": offset,
                "cut": offset, "bytes_dropped": hole}

    if kind == "bit-flip":
        name = names[rng.randrange(len(names))]
        path = os.path.join(wal_dir, name)
        data = _read(path)
        frames = _index_frames(data)
        # The final frame of the final segment is the one position
        # where a bad CRC is (correctly) read as a torn tail.
        victims = [f for f in frames if f[2] != KIND_HEADER]
        if name == names[-1] and len(victims) > 1:
            victims = victims[:-1]
        if not victims:
            raise SafeHomeError("log too small for a mid-log bit flip")
        offset, total, _ = rng.choice(victims)
        position = offset + FRAME.size + \
            rng.randrange(max(1, total - FRAME.size))
        flipped = bytearray(data)
        flipped[position] ^= 1 << rng.randrange(8)
        _write(path, bytes(flipped))
        return {"kind": kind, "segment": name, "offset": offset,
                "byte": position}

    if kind == "duplicate-frame":
        name = names[rng.randrange(len(names))]
        path = os.path.join(wal_dir, name)
        data = _read(path)
        frames = _index_frames(data)
        victims = [f for f in frames if f[2] == KIND_RECORD]
        if not victims:
            raise SafeHomeError("no record frames to duplicate")
        offset, total, _ = rng.choice(victims)
        frame = data[offset:offset + total]
        _write(path, data[:offset + total] + frame
               + data[offset + total:])
        return {"kind": kind, "segment": name, "offset": offset,
                "bytes_added": total}

    if kind == "reorder-frames":
        name = names[rng.randrange(len(names))]
        path = os.path.join(wal_dir, name)
        data = _read(path)
        frames = _index_frames(data)
        pairs = [(frames[i], frames[i + 1])
                 for i in range(len(frames) - 1)
                 if frames[i][2] == KIND_RECORD
                 and frames[i + 1][2] == KIND_RECORD]
        if not pairs:
            raise SafeHomeError("no adjacent record frames to reorder")
        (off_a, len_a, _), (off_b, len_b, _) = rng.choice(pairs)
        swapped = (data[:off_a] + data[off_b:off_b + len_b]
                   + data[off_a:off_a + len_a] + data[off_b + len_b:])
        _write(path, swapped)
        return {"kind": kind, "segment": name, "offset": off_a,
                "swapped_with": off_b}

    # missing-seal
    for name in names:
        path = os.path.join(wal_dir, name)
        data = _read(path)
        frames = _index_frames(data)
        seals = [f for f in frames if f[2] == KIND_SEAL]
        # Never remove the final seal of the last segment: a log whose
        # clean-close marker is missing is a legal crash image.
        if name == names[-1] and seals:
            end_off, end_len, _ = seals[-1]
            if end_off + end_len == len(data):
                seals = seals[:-1]
        if seals:
            offset, total, _ = rng.choice(seals)
            _write(path, data[:offset] + data[offset + total:])
            return {"kind": kind, "segment": name, "offset": offset,
                    "bytes_dropped": total}
    raise SafeHomeError("log has no removable seal (no checkpoint "
                        "fired); lower checkpoint_every")


# ---------------------------------------------------------------------------
# the corruption grid


def build_durable_home(model: str, execution: str, wal_dir: Optional[str],
                       seed: int = 0, checkpoint_every: int = 8):
    """One finished durable chaos home (the grid's subject).

    Loads the shared chaos workload, runs it to completion and — when
    ``wal_dir`` is given — leaves a cleanly closed on-disk log behind.
    """
    from repro.hub.durability.recovery import DurabilityConfig
    from repro.hub.safehome import SafeHome
    from repro.workloads.chaos import chaos_workload

    home = SafeHome(visibility=model, execution=execution, seed=seed,
                    durability=DurabilityConfig(
                        checkpoint_every=checkpoint_every),
                    wal_dir=wal_dir)
    home.load_workload(chaos_workload(seed=seed))
    home.run()
    if wal_dir is not None:
        home.close_wal()
    return home


def baseline_state(home) -> str:
    """Canonical final-state string a replayed twin must reproduce."""
    from repro.hub.durability.wal import jsonify

    # check_final=False: WV's chaos runs are legitimately cyclic and
    # would raise; byte-equality is the point here, the congruence
    # verdict comes from the oracle pass.
    return json.dumps({
        "devices": jsonify(home.snapshot()),
        "report": home.report(check_final=False).row(),
    }, sort_keys=True)


def corruption_trial(model: str, execution: str, kind: str,
                     wal_dir: str, seed: int = 0,
                     checkpoint_every: int = 8) -> Dict[str, Any]:
    """One grid cell: build → corrupt → fsck → classify the outcome.

    Outcome classes (``outcome`` key):

    * ``identical`` — the log read back clean and replay reproduced a
      byte-identical final state;
    * ``truncated`` — the scanner classified the damage as a
      crash-consistent torn tail and bounded replay of the surviving
      prefix passed verification + the congruence oracle;
    * ``salvaged`` — the scanner raised ``CorruptionError`` and salvage
      produced an oracle-clean home from the good prefix;
    * ``loud-failure`` — corruption was detected but salvage refused
      (typed error, nothing silently accepted);
    * ``SILENT-DIVERGENCE`` — the scanner saw nothing wrong, no records
      are missing, and the replayed state differs.  The grid asserts
      this never happens.
    """
    from repro.hub.durability.fsck import fsck_path

    baseline_home = build_durable_home(model, execution, wal_dir,
                                       seed=seed,
                                       checkpoint_every=checkpoint_every)
    baseline = baseline_state(baseline_home)
    pristine_records = len(baseline_home.wal.records)
    injection = inject_fault(wal_dir, kind, seed=seed)

    trial: Dict[str, Any] = {
        "model": model, "execution": execution, "kind": kind,
        "seed": seed, "injection": injection,
    }
    try:
        report = fsck_path(wal_dir, salvage=True)
    except (CorruptionError, RecoveryError, SafeHomeError) as exc:
        trial["outcome"] = "loud-failure"
        trial["error"] = str(exc)
        return trial
    doc = report.to_dict()
    trial["fsck"] = {"status": doc["status"],
                     "exit_code": report.exit_code()}

    if doc["status"] == "clean":
        replayed = report.replayed_home
        state = baseline_state(replayed) if replayed is not None else None
        if state == baseline and doc["records"] == pristine_records:
            trial["outcome"] = "identical"
        elif doc["records"] == pristine_records:
            # Nothing flagged, nothing missing, state differs: the
            # exact hole this layer exists to close.
            trial["outcome"] = "SILENT-DIVERGENCE"
        else:
            # A frame-boundary chop is indistinguishable from a crash
            # at that boundary — but fsck must still surface that the
            # close marker is gone.
            trial["outcome"] = ("truncated" if not doc["clean_close"]
                               and doc["verify"]["ok"]
                               else "SILENT-DIVERGENCE")
    elif doc["status"] == "truncated":
        ok = doc["verify"] is not None and doc["verify"]["ok"] and \
            (doc["verify"]["oracle"] is None or doc["verify"]["oracle"]["ok"])
        trial["outcome"] = "truncated" if ok else "loud-failure"
        if not ok:
            trial["error"] = "truncated-log replay failed verification"
    else:  # corrupt
        salvage = doc.get("salvage")
        ok = salvage is not None and salvage.get("ok") and \
            (salvage.get("oracle") is None or salvage["oracle"]["ok"])
        trial["outcome"] = "salvaged" if ok else "loud-failure"
        if not ok:
            trial["error"] = (salvage or {}).get("error",
                                                "salvage not attempted")
    return trial


def run_corruption_matrix(models=None, executions=None, kinds=None,
                          seeds=(0,), base_dir: Optional[str] = None,
                          checkpoint_every: int = 8) -> Dict[str, Any]:
    """The full grid; returns a deterministic summary report."""
    import shutil
    import tempfile

    from repro.core.visibility import VisibilityModel

    models = list(models) if models else \
        [m.value for m in VisibilityModel]
    executions = list(executions) if executions else ["serial", "parallel"]
    kinds = list(kinds) if kinds else list(FAULT_KINDS)
    trials: List[Dict[str, Any]] = []
    owned = base_dir is None
    root = base_dir or tempfile.mkdtemp(prefix="repro-fsck-grid-")
    try:
        for model in models:
            for execution in executions:
                for kind in kinds:
                    for seed in seeds:
                        cell = os.path.join(
                            root, f"{model}-{execution}-{kind}-{seed}")
                        os.makedirs(cell, exist_ok=True)
                        trials.append(corruption_trial(
                            model, execution, kind, cell, seed=seed,
                            checkpoint_every=checkpoint_every))
                        shutil.rmtree(cell, ignore_errors=True)
    finally:
        if owned:
            shutil.rmtree(root, ignore_errors=True)
    outcomes: Dict[str, int] = {}
    for trial in trials:
        outcomes[trial["outcome"]] = outcomes.get(trial["outcome"], 0) + 1
    return {
        "schema": "repro-fsck-matrix/1",
        "models": models,
        "executions": executions,
        "kinds": kinds,
        "seeds": list(seeds),
        "trials": trials,
        "outcomes": dict(sorted(outcomes.items())),
        "silent_divergences": outcomes.get("SILENT-DIVERGENCE", 0),
    }
