"""Routine Dispatcher (Fig 11): trigger-driven routine invocation.

Routines "can be invoked either by the user or triggers" (§6).  The
dispatcher supports the trigger kinds mainstream hubs offer:

* **timed** triggers — "every Monday at 11pm" style schedules (the
  paper's Rtrash example); modelled as periodic virtual-time triggers;
* **state** triggers — invoke a routine when a device enters a given
  state (IFTTT-style "if the door unlocks, run welcome"); and
* **event** triggers — invoke on failure/restart detections (e.g. a
  caretaker notification routine).

Trigger-initiated routines flow through the same concurrency controller
as user-initiated ones, so every visibility/atomicity guarantee applies.
"""

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.core.controller import Controller, RoutineRun
from repro.devices.registry import DeviceRegistry
from repro.hub.routine_bank import RoutineBank
from repro.sim.engine import Simulator


@dataclass
class TriggerFiring:
    """Audit record of one trigger activation."""

    trigger_name: str
    time: float
    routine_name: str
    run: Optional[RoutineRun]
    kind: str = "user"      # user | timed | state | event


class Dispatcher:
    """Wires triggers to routine invocations through the controller."""

    def __init__(self, sim: Simulator, registry: DeviceRegistry,
                 bank: RoutineBank, controller: Controller) -> None:
        self.sim = sim
        self.registry = registry
        self.bank = bank
        self.controller = controller
        self.firings: List[TriggerFiring] = []
        self._armed = True

    # -- invocation -------------------------------------------------------------

    def invoke(self, routine_name: str,
               trigger_name: str = "user",
               kind: str = "user") -> RoutineRun:
        routine = self.bank.instantiate(routine_name)
        routine.trigger = trigger_name
        run = self.controller.submit(routine)
        self.firings.append(TriggerFiring(trigger_name, self.sim.now,
                                          routine_name, run, kind=kind))
        return run

    def firings_of_kind(self, kind: str) -> List[TriggerFiring]:
        """Audit helper: every firing of one trigger kind."""
        return [firing for firing in self.firings if firing.kind == kind]

    def disarm(self) -> None:
        """Stop all future trigger firings (end of simulation)."""
        self._armed = False

    # -- timed triggers -----------------------------------------------------------

    def every(self, routine_name: str, period: float,
              start_at: float = 0.0,
              count: Optional[int] = None,
              trigger_name: str = "") -> None:
        """Fire ``routine_name`` every ``period`` seconds.

        ``count`` bounds the firings (None = until disarmed); in a
        discrete-event world an unbounded timer would keep the
        simulation alive forever, so prefer a count.
        """
        if period <= 0:
            raise ValueError("period must be positive")
        trigger_name = trigger_name or f"timer:{routine_name}"
        remaining = count if count is not None else -1

        def fire() -> None:
            nonlocal remaining
            if not self._armed or remaining == 0:
                return
            self.invoke(routine_name, trigger_name, kind="timed")
            if remaining > 0:
                remaining -= 1
            if remaining != 0:
                self.sim.call_after(period, fire, label=trigger_name)

        self.sim.call_at(start_at, fire, label=trigger_name)

    # -- device-state triggers -------------------------------------------------------

    def when_state(self, device_name: str, state: Any,
                   routine_name: str, once: bool = True,
                   trigger_name: str = "") -> None:
        """Invoke ``routine_name`` when the device reaches ``state``."""
        device = self.registry.by_name(device_name)
        trigger_name = trigger_name or \
            f"state:{device_name}={state}->{routine_name}"
        fired = False

        def watcher(dev, value) -> None:
            nonlocal fired
            if not self._armed or (once and fired):
                return
            if value == state:
                fired = True
                # Defer to an event so the invocation does not nest
                # inside the device write that triggered it.
                self.sim.call_after(0.0, self.invoke, routine_name,
                                    trigger_name, "state",
                                    label=trigger_name)

        device.watch(watcher)

    # -- failure/restart triggers -------------------------------------------------------

    def on_detection(self, kind: str, routine_name: str,
                     device_id: Optional[int] = None,
                     trigger_name: str = "") -> None:
        """Invoke a routine when the hub detects a failure or restart.

        ``kind`` is "failure" or "restart"; ``device_id`` narrows the
        trigger to one device (None = any device).
        """
        if kind not in ("failure", "restart"):
            raise ValueError("kind must be 'failure' or 'restart'")
        trigger_name = trigger_name or f"{kind}->{routine_name}"
        controller = self.controller
        original = (controller._policy_on_failure if kind == "failure"
                    else controller._policy_on_restart)

        def hook(detected_id: int) -> None:
            original(detected_id)
            if self._armed and (device_id is None
                                or detected_id == device_id):
                self.sim.call_after(0.0, self.invoke, routine_name,
                                    trigger_name, "event",
                                    label=trigger_name)

        if kind == "failure":
            controller._policy_on_failure = hook
        else:
            controller._policy_on_restart = hook
