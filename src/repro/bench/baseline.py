"""Baseline files and the perf-regression comparison.

A baseline is a checked-in JSON file recording the throughput metrics a
CI machine is expected to roughly reproduce::

    {
      "schema": "repro-bench-baseline/1",
      "benchmarks": {
        "fleet_scale": {"events_per_sec": 21000.0, "homes_per_sec": 190.0}
      },
      "hotpath_pass": {...}           # optional: before/after speedup table
    }

The gate is relative: a benchmark fails when a tracked metric drops
below ``baseline * (1 - tolerance)``.  Improvements never fail (the
baseline is a floor, not a pin); refresh it with
``repro bench --update-baseline`` when a PR deliberately shifts
throughput.
"""

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.registry import BenchError
from repro.bench.result import BenchResult

BASELINE_SCHEMA = "repro-bench-baseline/1"

#: Metrics the gate tracks, in report order.
TRACKED_METRICS = ("events_per_sec", "homes_per_sec")


def load_baseline(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != BASELINE_SCHEMA:
        raise BenchError(f"{path}: expected schema {BASELINE_SCHEMA!r}, "
                         f"got {payload.get('schema')!r}")
    return payload


def make_baseline(results: List[BenchResult],
                  extra: Optional[Dict[str, Any]] = None,
                  merge_into: Optional[Dict[str, Any]] = None,
                  min_events: int = 0) -> Dict[str, Any]:
    """Build a baseline payload from measured results.

    Args:
        results: measurements to record floors for.
        extra: additional top-level keys (e.g. a ``hotpath_pass`` table).
        merge_into: an existing baseline payload; its entries for
            benchmarks *not* in ``results`` are preserved, so a
            filtered run never silently drops other floors.
        min_events: skip benchmarks that processed fewer simulator
            events than this per iteration — micro entries are
            noise-dominated and make terrible absolute floors.
    """
    benchmarks: Dict[str, Dict[str, float]] = dict(
        merge_into.get("benchmarks", {})) if merge_into else {}
    for result in results:
        if result.events is not None and result.events < min_events:
            continue
        entry = {metric: round(getattr(result, metric), 3)
                 for metric in TRACKED_METRICS
                 if getattr(result, metric)}
        if entry:
            benchmarks[result.name] = entry
    payload: Dict[str, Any] = {"schema": BASELINE_SCHEMA,
                               "benchmarks": benchmarks}
    if extra:
        payload.update(extra)
    return payload


def compare(results: List[BenchResult], baseline: Dict[str, Any],
            tolerance: float = 0.25
            ) -> Tuple[List[Dict[str, Any]], bool]:
    """Check results against a baseline; returns (rows, ok).

    One row per (benchmark, tracked metric) pair present in the
    baseline.  ``ok`` is False when any measured metric lands below its
    floor; benchmarks absent from the baseline (or metrics the result
    cannot report) are listed as untracked and never fail.
    """
    if not 0.0 <= tolerance < 1.0:
        raise BenchError(f"tolerance must be in [0, 1), got {tolerance}")
    recorded = baseline.get("benchmarks", {})
    rows: List[Dict[str, Any]] = []
    ok = True
    for result in results:
        entry = recorded.get(result.name)
        if not entry:
            rows.append({"name": result.name, "metric": None,
                         "status": "untracked"})
            continue
        for metric in TRACKED_METRICS:
            if metric not in entry:
                continue
            expected = entry[metric]
            current = getattr(result, metric)
            if current is None:
                rows.append({"name": result.name, "metric": metric,
                             "status": "unmeasured",
                             "baseline": expected})
                ok = False
                continue
            floor = expected * (1.0 - tolerance)
            passed = current >= floor
            ok = ok and passed
            rows.append({
                "name": result.name,
                "metric": metric,
                "status": "ok" if passed else "regression",
                "current": round(current, 3),
                "baseline": expected,
                "floor": round(floor, 3),
                "ratio": round(current / expected, 3) if expected else None,
            })
    return rows, ok
