"""The shared benchmark result schema.

Every harness run produces one :class:`BenchResult` per benchmark and
one merged summary dict (see :mod:`repro.bench.runner`).  The schema
separates *deterministic* fields (name, params, events, virtual time,
``metrics``) from *timing* fields (wall seconds, events/sec, homes/sec,
the free-form ``timing`` dict): two seeded runs of the same suite must
agree on every non-timing field, and the CI determinism test holds the
harness to that.
"""

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

SCHEMA = "repro-bench/1"

#: Fields whose values depend on the host's wall clock.  Everything
#: else must be bit-deterministic for a fixed seed and code version.
TIMING_FIELDS = ("wall_s", "wall_s_all", "events_per_sec",
                 "homes_per_sec", "timing")


@dataclass
class BenchResult:
    """One benchmark's measured outcome.

    Attributes:
        name: registry name.
        suite: suite the entry is registered under.
        params: the parameters the benchmark actually ran with.
        warmup: untimed warmup iterations executed first.
        repeats: timed iterations; ``wall_s`` is their minimum.
        wall_s: best (min-of-N) wall-clock seconds per iteration.
        wall_s_all: every timed iteration, in order.
        events: simulator events processed by one iteration (None when
            the benchmark runs no simulator, e.g. pure-CPU paths).
        events_per_sec: ``events / wall_s`` (the perf-gate metric).
        homes: fleet size for fleet benchmarks.
        homes_per_sec: ``homes / wall_s``.
        virtual_s: simulated virtual time covered by one iteration.
        latency_p50 / latency_p95: headline latency summary when the
            benchmark reports one (virtual seconds — deterministic).
        metrics: free-form deterministic payload (figure rows, counts).
        timing: free-form wall-clock-derived payload (excluded from
            determinism and baseline checks).
        meta: environment stamp (git describe etc.); summary-level by
            default, per-result when running a single benchmark.
    """

    name: str
    suite: str
    params: Dict[str, Any] = field(default_factory=dict)
    warmup: int = 0
    repeats: int = 1
    wall_s: float = 0.0
    wall_s_all: List[float] = field(default_factory=list)
    events: Optional[int] = None
    events_per_sec: Optional[float] = None
    homes: Optional[int] = None
    homes_per_sec: Optional[float] = None
    virtual_s: Optional[float] = None
    latency_p50: Optional[float] = None
    latency_p95: Optional[float] = None
    metrics: Dict[str, Any] = field(default_factory=dict)
    timing: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["schema"] = SCHEMA
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BenchResult":
        data = {key: value for key, value in payload.items()
                if key != "schema"}
        return cls(**data)

    def deterministic_dict(self) -> Dict[str, Any]:
        """The result minus every timing-dependent field."""
        payload = self.to_dict()
        for key in TIMING_FIELDS:
            payload.pop(key, None)
        payload.pop("meta", None)
        return payload

    def row(self) -> Dict[str, Any]:
        """Flat row for the CLI table."""
        return {
            "name": self.name,
            "suite": self.suite,
            "wall_ms": round(self.wall_s * 1e3, 2),
            "events": self.events,
            "events_per_sec": (round(self.events_per_sec)
                               if self.events_per_sec else None),
            "homes_per_sec": (round(self.homes_per_sec, 1)
                              if self.homes_per_sec else None),
            "lat_p50": (round(self.latency_p50, 3)
                        if self.latency_p50 is not None else None),
            "lat_p95": (round(self.latency_p95, 3)
                        if self.latency_p95 is not None else None),
        }
