"""Smoke-suite benchmarks: the fast, CI-gated performance entries.

These are the hot-path probes — the simulator dispatch loop, the fleet
engine, parallel plan execution, scheduler insertion and durable-hub
recovery.  Each runs in well under a second per iteration so the CI
perf job stays cheap.
"""

from typing import Any, Dict

from repro.bench.registry import benchmark
from repro.core.controller import ControllerConfig
from repro.experiments.figures import fig02_example, fig15d_insertion_time
from repro.experiments.runner import ExperimentSetup, run_workload
from repro.workloads.fanout import fanout_scenario

PARALLEL_EXEC_MODELS = ("wv", "gsv", "psv", "ev", "occ")


@benchmark("fleet_scale", suite="smoke", homes=100, seed=42)
def fleet_scale(homes: int, seed: int) -> Dict[str, Any]:
    """Fleet engine throughput: N heterogeneous homes, serial backend."""
    from repro.fleet import FleetConfig, FleetEngine

    result = FleetEngine(FleetConfig(
        homes=homes, seed=seed, backend="serial",
        # The scale benchmark measures engine throughput; the O(n!)-ish
        # final-serializability search is benchmarked elsewhere.
        check_final=False)).run()
    aggregate = result.aggregate
    return {
        "homes": homes,
        "virtual_s": aggregate["makespan_mean"],
        "latency_p50": aggregate["latency"]["p50"],
        "latency_p95": aggregate["latency"]["p95"],
        "metrics": {
            "routines": aggregate["routines"],
            "committed": aggregate["committed"],
            "abort_rate": round(aggregate["abort_rate"], 6),
            "latency_p99": round(aggregate["latency"]["p99"], 6),
            "makespan_max": round(aggregate["makespan_max"], 6),
        },
    }


@benchmark("fleet_scale_process", suite="smoke", homes=100, seed=42,
           chunk=0)
def fleet_scale_process(homes: int, seed: int, chunk: int
                        ) -> Dict[str, Any]:
    """Fleet engine throughput on the process pool (persistent workers,
    one-time context broadcast, compact tuple chunks).

    Simulator events fire in the worker processes, so only ``homes``
    (and therefore homes/sec) is measurable from the parent.  Worker
    count follows the machine (one per CPU) — the recorded floor is
    machine-dependent; see docs/fleet-performance.md.
    """
    from repro.fleet import FleetConfig, FleetEngine

    result = FleetEngine(FleetConfig(
        homes=homes, seed=seed, backend="process", chunk=chunk,
        check_final=False)).run()
    aggregate = result.aggregate
    return {
        "homes": homes,
        "virtual_s": aggregate["makespan_mean"],
        "latency_p50": aggregate["latency"]["p50"],
        "latency_p95": aggregate["latency"]["p95"],
        "metrics": {
            "routines": aggregate["routines"],
            "committed": aggregate["committed"],
            "abort_rate": round(aggregate["abort_rate"], 6),
        },
    }


@benchmark("fleet_scale_mp", suite="scale", homes=96, seed=42,
           worker_counts=(1, 2, 4), inner_repeats=2)
def fleet_scale_mp(homes: int, seed: int, worker_counts,
                   inner_repeats: int) -> Dict[str, Any]:
    """Multi-core scaling: homes/s and parallel efficiency vs workers.

    Runs the same fixed fleet at each worker count on the process pool
    with streaming aggregation and the shared-memory transport,
    interleaving the worker counts across ``inner_repeats`` rounds and
    taking the min wall per count (so machine noise hits every count
    equally).  Two efficiencies are reported per count ``k``:

    * ``efficiency_raw``  = speedup(k) / k — the headline parallel
      efficiency; only meaningful when the machine has ≥ k cores.
    * ``efficiency`` = speedup(k) / min(k, cores) — core-normalized;
      identical to ``efficiency_raw`` on a ≥4-core machine, and on
      smaller machines it measures pool overhead (how close k GIL-free
      processes on c cores come to the ideal c-fold speedup).  This is
      the number ``scripts/gate_scaling.py`` gates at ≥ 0.75.

    Wall-clock numbers are machine-dependent, so the whole scaling
    table lives under ``timing`` (excluded from determinism checks);
    ``metrics`` keeps the layout-independent exact counters.
    """
    import time

    from repro.fleet import FleetConfig, FleetEngine
    from repro.fleet.affinity import available_cpus
    from repro.fleet.shm import shm_available

    worker_counts = tuple(worker_counts)
    if not worker_counts or worker_counts[0] != 1:
        raise ValueError("worker_counts must start at 1 (the "
                         "single-worker reference time)")
    cores = available_cpus()
    transport = "shm" if shm_available() else "pickle"
    walls: Dict[int, list] = {count: [] for count in worker_counts}
    aggregate = None
    for _ in range(max(1, inner_repeats)):
        for count in worker_counts:
            config = FleetConfig(
                homes=homes, seed=seed, backend="process",
                workers=count, aggregate="stream", transport=transport,
                check_final=False)
            started = time.perf_counter()
            result = FleetEngine(config).run()
            walls[count].append(time.perf_counter() - started)
            aggregate = result.aggregate
    best = {count: min(samples) for count, samples in walls.items()}
    reference = best[1]
    scaling = []
    for count in worker_counts:
        speedup = reference / best[count] if best[count] > 0 else 0.0
        scaling.append({
            "workers": count,
            "wall_s": round(best[count], 4),
            "homes_per_sec": round(homes / best[count], 2)
                             if best[count] > 0 else 0.0,
            "speedup": round(speedup, 4),
            "efficiency_raw": round(speedup / count, 4),
            "efficiency": round(speedup / min(count, cores), 4),
        })
    return {
        "homes": homes,
        "metrics": {
            "routines": aggregate["routines"],
            "committed": aggregate["committed"],
            "abort_rate": round(aggregate["abort_rate"], 6),
        },
        "timing": {"cores": cores, "transport": transport,
                   "scaling": scaling},
    }


@benchmark("sim_dispatch", suite="smoke", events=20000, fanout=4)
def sim_dispatch(events: int, fanout: int) -> Dict[str, Any]:
    """Raw simulator dispatch: chained timer events, no controller.

    The purest probe of the event-loop hot path (heap, Event
    construction, clock advance, hook dispatch): each fired event
    schedules ``fanout`` children until ``events`` have been requested,
    plus one cancelled event per firing to keep the lazy-cancellation
    bookkeeping honest.
    """
    from repro.sim.engine import Simulator

    sim = Simulator()
    state = {"scheduled": 0}

    def tick() -> None:
        doomed = sim.call_after(1000.0, tick)
        sim.cancel(doomed)
        for _ in range(fanout):
            if state["scheduled"] >= events:
                return
            state["scheduled"] += 1
            sim.call_after(0.001 * (state["scheduled"] % 7 + 1), tick)

    state["scheduled"] += 1
    sim.call_after(0.0, tick)
    sim.run()
    return {
        "virtual_s": sim.now,
        "metrics": {"events_processed": sim.events_processed,
                    "requested": state["scheduled"]},
    }


def parallel_exec_compare(model: str, seed: int = 0, routines: int = 6,
                          width: int = 8) -> Dict[str, Any]:
    """Serial vs parallel plan strategy on the wide fan-out workload."""
    row: Dict[str, Any] = {}
    for execution in ("serial", "parallel"):
        workload = fanout_scenario(seed=seed, routines=routines,
                                   width=width)
        setup = ExperimentSetup(
            model=model, seed=seed, check_final=False,
            config=ControllerConfig(execution=execution))
        result, report, _controller = run_workload(workload, setup)
        row[execution] = {
            "makespan": round(result.makespan, 6),
            "plan_makespan_p50": round(
                report.plan_makespan.get("p50", 0.0), 6),
            "lock_wait_total": round(
                sum(run.lock_wait_s for run in result.runs), 6),
            "committed": len(result.committed),
            "aborted": len(result.aborted),
        }
    serial_p50 = row["serial"]["plan_makespan_p50"]
    parallel_p50 = row["parallel"]["plan_makespan_p50"]
    row["speedup"] = round(serial_p50 / parallel_p50, 3) \
        if parallel_p50 > 0 else None
    return row


@benchmark("parallel_exec", suite="smoke", seed=0, routines=6, width=8)
def parallel_exec(seed: int, routines: int, width: int) -> Dict[str, Any]:
    """Virtual-time speedup of parallel command plans, per model."""
    models = {model: parallel_exec_compare(model, seed=seed,
                                           routines=routines, width=width)
              for model in PARALLEL_EXEC_MODELS}
    return {
        "metrics": {
            "workload": {"name": "fanout", "seed": seed,
                         "routines": routines, "width": width},
            "models": models,
        },
    }


@benchmark("example_timeline", suite="smoke", seed=1)
def example_timeline(seed: int) -> Dict[str, Any]:
    """Fig 2 / Table 1: the five-routine example under GSV/PSV/EV."""
    rows = fig02_example(seed=seed)
    return {"metrics": {"rows": rows}}


@benchmark("scheduler_insertion", suite="smoke",
           routine_sizes=(1, 4, 10))
def scheduler_insertion(routine_sizes) -> Dict[str, Any]:
    """Fig 15d: Timeline (Algorithm 1) placement cost vs routine size.

    Per-insertion milliseconds are wall-clock, so they live under
    ``timing``; the deterministic part is the sweep shape itself.
    """
    rows = fig15d_insertion_time(routine_sizes=tuple(routine_sizes))
    return {
        "metrics": {"routine_sizes": list(routine_sizes),
                    "insertions": len(rows)},
        "timing": {"rows": rows},
    }


@benchmark("synth_throughput", suite="smoke", seed=11, specs=6,
           routines=24)
def synth_throughput(seed: int, specs: int, routines: int
                     ) -> Dict[str, Any]:
    """Scenario-synthesis engine throughput: generate + run N specs.

    Measures the ``repro hunt`` hot path — compile a :class:`SynthSpec`
    into a workload, run it under EV, score the congruence pressure —
    over a seeded batch of random specs (events/sec across the batch).
    """
    import dataclasses

    from repro.metrics.congruence import temporary_incongruence_events
    from repro.sim.random import RandomStreams, derive_seed
    from repro.workloads.synth import compile_spec, random_spec

    rng = RandomStreams(seed=seed).stream("bench-synth")
    events = 0
    scores = []
    generated_routines = 0
    for index in range(specs):
        spec = dataclasses.replace(
            random_spec(rng, seed=derive_seed(seed, f"bench:{index}")),
            routines=routines, failed_device_pct=0.0)
        workload = compile_spec(spec)
        generated_routines += workload.routine_count
        setup = ExperimentSetup(model="ev", seed=spec.seed,
                                check_final=False)
        result, _report, controller = run_workload(workload, setup)
        events += controller.sim.events_processed
        scores.append(temporary_incongruence_events(result))
    return {
        "events": events,
        "metrics": {
            "specs": specs,
            "routines": generated_routines,
            "incongruence_scores": scores,
        },
    }


@benchmark("recovery_replay", suite="smoke", repeats_workload=2,
           checkpoint_every=32)
def recovery_replay(repeats_workload: int,
                    checkpoint_every: int) -> Dict[str, Any]:
    """Durable-hub crash at the end of history, verified replay."""
    from repro.bench.suites.recovery_util import crash_and_recover

    _home, report = crash_and_recover(
        repeats_workload, checkpoint_every=checkpoint_every)
    return {
        "metrics": {
            "wal_records": report.wal_records,
            "replayed_events": report.replayed_events,
            "replayed_records": report.replayed_records,
            "checkpoints_verified": report.checkpoints_verified,
        },
        "timing": {"recovery_ms": round(report.wall_s * 1e3, 3)},
    }


@benchmark("serve_latency", suite="smoke", tenants=8, per_tenant=40,
           seed=7)
def serve_latency(tenants: int, per_tenant: int,
                  seed: int) -> Dict[str, Any]:
    """Service-mode hub throughput: virtual-paced closed-loop serving.

    One home, ``tenants`` closed-loop clients each submitting
    ``per_tenant`` seeded menu picks through admission control; the
    deterministic metrics double as a drift alarm on service latency.
    Untracked-first in the baseline: missing entries report
    "unmeasured", so the floor is adopted on the next baseline update.
    """
    from repro.serve import (ServeConfig, ServeHub, build_serve_home,
                             run_closed_loop)

    hub = ServeHub(build_serve_home(seed=seed), ServeConfig())
    for i in range(tenants):
        hub.add_tenant(f"t{i}", weight=1 + (i % 2))
    run_closed_loop(hub, per_tenant=per_tenant, seed=seed)
    status = hub.status()
    total = status["latency"]["total"]
    return {
        "events": sum(row["events_processed"]
                      for row in status["homes"].values()),
        "virtual_s": max(row["virtual_now"]
                         for row in status["homes"].values()),
        "metrics": {
            "routines": tenants * per_tenant,
            "committed": sum(row["committed"]
                             for row in status["tenants"].values()),
            "latency_p50": total["p50"],
            "latency_p95": total["p95"],
            "latency_p99": total["p99"],
            "max_queue_depth": max(row["max_depth"]
                                   for row in status["tenants"].values()),
        },
    }
