"""Full-suite benchmarks: the paper-figure sweeps and extensions.

Each entry wraps one driver from :mod:`repro.experiments.figures` (or
:mod:`repro.experiments.ablations`) with reduced trial counts — the
shapes are stable at these sizes — and reports the figure's rows as
deterministic metrics.  ``docs/benchmarks.md`` carries the paper-figure
→ benchmark-name table.
"""

from typing import Any, Dict

from repro.bench.registry import benchmark
from repro.experiments import figures as fig_mod


def _rows(rows) -> Dict[str, Any]:
    return {"metrics": {"rows": rows}}


@benchmark("weak_visibility", trials=20,
           device_counts=(2, 4, 8, 15), offsets=(0.0, 0.5, 2.0))
def weak_visibility(trials: int, device_counts, offsets) -> Dict[str, Any]:
    """Fig 1: incongruent end states vs device count under WV."""
    return _rows(fig_mod.fig01_weak_visibility(
        device_counts=tuple(device_counts), offsets=tuple(offsets),
        trials=trials))


@benchmark("scenarios", trials=5)
def scenarios(trials: int) -> Dict[str, Any]:
    """Fig 12a: Morning/Party/Factory latency, incongruence, parallelism."""
    return _rows(fig_mod.fig12a_scenarios(trials=trials))


@benchmark("final_incongruence", runs=40, n_routines=9)
def final_incongruence(runs: int, n_routines: int) -> Dict[str, Any]:
    """Fig 12b: end-state serial equivalence over repeated runs."""
    return _rows(fig_mod.fig12b_final_incongruence(
        runs=runs, n_routines=n_routines))


@benchmark("failures", trials=4)
def failures(trials: int) -> Dict[str, Any]:
    """Fig 13: abort rate and rollback overhead under device failures."""
    data = fig_mod.fig13_failures(trials=trials)
    return {"metrics": {"must_sweep": data["must_sweep"],
                        "failure_sweep": data["failure_sweep"]}}


@benchmark("schedulers", trials=4, concurrencies=(1, 2, 4, 8))
def schedulers(trials: int, concurrencies) -> Dict[str, Any]:
    """Fig 14: FCFS vs JiT vs Timeline under EV."""
    return _rows(fig_mod.fig14_schedulers(
        trials=trials, concurrencies=tuple(concurrencies)))


@benchmark("leasing", trials=4, concurrencies=(2, 4, 8))
def leasing(trials: int, concurrencies) -> Dict[str, Any]:
    """Fig 15a/b: pre/post lock-leasing ablation."""
    return _rows(fig_mod.fig15ab_leasing(
        trials=trials, concurrencies=tuple(concurrencies)))


@benchmark("stretch", trials=4, command_counts=(2, 4, 8))
def stretch(trials: int, command_counts) -> Dict[str, Any]:
    """Fig 15c: stretch-factor distribution vs routine size."""
    rows = [{key: value for key, value in row.items() if key != "cdf"}
            for row in fig_mod.fig15c_stretch(
                trials=trials, command_counts=tuple(command_counts))]
    return _rows(rows)


@benchmark("routine_size", trials=4, command_counts=(1, 2, 3, 4, 6, 8))
def routine_size(trials: int, command_counts) -> Dict[str, Any]:
    """Fig 16a-c: impact of commands per routine."""
    return _rows(fig_mod.fig16_routine_size(
        trials=trials, command_counts=tuple(command_counts)))


@benchmark("device_popularity", trials=4,
           alphas=(0.0, 0.05, 0.5, 1.0))
def device_popularity(trials: int, alphas) -> Dict[str, Any]:
    """Fig 16d: device-popularity (Zipf) skew vs latency."""
    return _rows(fig_mod.fig16d_popularity(
        trials=trials, alphas=tuple(alphas)))


@benchmark("long_routines", trials=4,
           long_durations=(60.0, 300.0, 900.0),
           long_pcts=(0, 10, 25, 50))
def long_routines(trials: int, long_durations, long_pcts) -> Dict[str, Any]:
    """Fig 17: long-running routines vs incongruence and order."""
    data = fig_mod.fig17_long_routines(
        trials=trials, long_durations=tuple(long_durations),
        long_pcts=tuple(long_pcts))
    return {"metrics": {"duration_sweep": data["duration_sweep"],
                        "pct_sweep": data["pct_sweep"]}}


ABLATION_SWEEPS = ("leniency", "estimate_error", "detector_period",
                   "network_jitter")


@benchmark("ablations", trials=3, sweeps=ABLATION_SWEEPS,
           jitter_trials=None)
def ablations(trials: int, sweeps, jitter_trials) -> Dict[str, Any]:
    """Design-choice sweeps: leniency, estimate error, detector, jitter."""
    from repro.experiments import ablations as abl_mod

    drivers = {
        "leniency": lambda: abl_mod.ablate_leniency(trials=trials),
        "estimate_error": lambda: abl_mod.ablate_estimate_error(
            trials=trials),
        "detector_period": lambda: abl_mod.ablate_detector_period(
            trials=trials),
        "network_jitter": lambda: abl_mod.ablate_network_jitter(
            trials=jitter_trials or max(10, trials)),
    }
    unknown = [sweep for sweep in sweeps if sweep not in drivers]
    if unknown:
        raise ValueError(f"unknown ablation sweeps {unknown}; "
                         f"pick from {ABLATION_SWEEPS}")
    return {"metrics": {sweep: drivers[sweep]() for sweep in sweeps}}


def occ_vs_ev(trials: int = 6, seed: int = 31,
              alphas=(0.0, 0.5, 1.5)):
    """OCC vs EV across the contention spectrum (Zipf alpha rows)."""
    from repro.experiments.runner import ExperimentSetup, run_workload
    from repro.metrics.stats import mean
    from repro.workloads.micro import MicroParams, generate_microbenchmark

    rows = []
    for model in ("occ", "ev"):
        for alpha in alphas:
            params = MicroParams(routines=30, concurrency=4, devices=12,
                                 zipf_alpha=alpha, long_routine_pct=10,
                                 long_duration_s=120.0,
                                 short_duration_s=5.0)
            latencies, aborts, undo = [], [], []
            for trial in range(trials):
                workload = generate_microbenchmark(
                    params, seed=seed * 37 + trial)
                setup = ExperimentSetup(model=model, seed=seed + trial,
                                        check_final=False)
                result, report, _c = run_workload(workload, setup,
                                                  trial=trial)
                latencies.append(report.latency["p50"])
                aborts.append(report.abort_rate)
                undo.append(sum(r.rolled_back_commands
                                for r in result.runs))
            rows.append({
                "model": model, "alpha": alpha,
                "lat_p50": mean(latencies),
                "abort_rate": mean(aborts),
                "undo_commands_per_run": mean(undo),
            })
    return rows


@benchmark("occ_extension", trials=3, seed=31, alphas=(0.0, 0.5, 1.5))
def occ_extension(trials: int, seed: int, alphas) -> Dict[str, Any]:
    """Extension: optimistic vs pessimistic control across contention."""
    return _rows(occ_vs_ev(trials=trials, seed=seed,
                           alphas=tuple(alphas)))


@benchmark("fleet_scale_sweep", scales=(1, 10, 100), seed=42)
def fleet_scale_sweep(scales, seed: int) -> Dict[str, Any]:
    """Fleet engine scale-out table (the standalone script's sweep)."""
    from repro.fleet import FleetConfig, FleetEngine

    rows = []
    for homes in scales:
        result = FleetEngine(FleetConfig(
            homes=homes, seed=seed, check_final=False)).run()
        rows.append({
            "homes": homes,
            "routines": result.aggregate["routines"],
            "lat_p99": round(result.aggregate["latency"]["p99"], 6),
            "abort_rate": round(result.aggregate["abort_rate"], 6),
        })
    return {"metrics": {"rows": rows}}


@benchmark("recovery_sweep", repeats_list=(1, 2, 4),
           intervals=(8, 32, 0))
def recovery_sweep(repeats_list, intervals) -> Dict[str, Any]:
    """Recovery cost vs WAL length and checkpoint interval."""
    from repro.bench.suites.recovery_util import crash_and_recover

    rows = []
    for repeats in repeats_list:
        _home, report = crash_and_recover(repeats)
        rows.append({
            "sweep": "wal-length", "repeats": repeats,
            "checkpoint_every": 32,
            "wal_records": report.wal_records,
            "replayed_events": report.replayed_events,
            "replayed_records": report.replayed_records,
            "checkpoints_verified": report.checkpoints_verified,
            "recovery_ms": round(report.wall_s * 1e3, 3),
        })
    for interval in intervals:
        _home, report = crash_and_recover(
            4, checkpoint_every=interval, compact=bool(interval))
        rows.append({
            "sweep": "checkpoint-interval", "repeats": 4,
            "checkpoint_every": interval,
            "wal_records": report.wal_records,
            "replayed_events": report.replayed_events,
            "replayed_records": report.replayed_records,
            "checkpoints_verified": report.checkpoints_verified,
            "recovery_ms": round(report.wall_s * 1e3, 3),
        })
    # recovery_ms is wall clock: split it out of the deterministic rows.
    deterministic = [{k: v for k, v in row.items() if k != "recovery_ms"}
                     for row in rows]
    return {"metrics": {"rows": deterministic},
            "timing": {"rows": rows}}
