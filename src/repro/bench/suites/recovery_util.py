"""Shared builders for the durable-hub recovery benchmarks.

Used by the ``recovery_replay`` smoke entry, the ``recovery_sweep``
full entry and the ``benchmarks/bench_recovery.py`` wrapper.
"""

from typing import Tuple

from repro.hub.durability import DurabilityConfig
from repro.hub.safehome import SafeHome
from repro.workloads.chaos import chaos_workload


def build_home(repeats: int, checkpoint_every: int = 32,
               compact: bool = False, seed: int = 7) -> SafeHome:
    """A durable EV home running ``repeats`` copies of the chaos scene."""
    home = SafeHome(visibility="ev", seed=seed,
                    durability=DurabilityConfig(
                        checkpoint_every=checkpoint_every,
                        compact_on_checkpoint=compact))
    workload = chaos_workload(seed)
    home.load_workload(workload)
    # Stack additional rounds of the same routines, shifted in time, so
    # the WAL grows linearly with `repeats`.
    for round_index in range(1, repeats):
        offset = 20.0 * round_index
        for routine, at in workload.arrivals:
            home.invoke(routine, at=at + offset)
    return home


def crash_and_recover(repeats: int, checkpoint_every: int = 32,
                      compact: bool = False) -> Tuple[SafeHome, object]:
    """Run to near-completion, crash, recover; return (home, report)."""
    probe = build_home(repeats, checkpoint_every, compact)
    probe.run()
    total_events = probe.sim.events_processed

    home = build_home(repeats, checkpoint_every, compact)
    home.crash(after_events=max(1, total_events - 1))
    home.run()
    report = home.recover()
    home.run()
    return home, report
