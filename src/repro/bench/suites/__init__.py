"""Built-in benchmark entries.

Importing this package registers every built-in benchmark; the runner
and CLI call :func:`load_builtin_suites` instead of importing at
``repro.bench`` import time so the registry stays cheap to touch and
tests can build isolated registries.
"""

_LOADED = False


def load_builtin_suites() -> None:
    """Idempotently import every suite module (registration side-effect)."""
    global _LOADED
    if _LOADED:
        return
    from repro.bench.suites import figures, perf  # noqa: F401
    _LOADED = True
