"""Run benchmark suites and emit the merged summary JSON.

The summary is one document per invocation::

    {
      "schema": "repro-bench-summary/1",
      "suite": "smoke",
      "meta": {"git": "...", "python": "...", ...},
      "results": [BenchResult..., keyed-by-name order],
      "baseline": {"tolerance": 0.25, "rows": [...], "ok": true},
      "hotpath_pass": {...}     # copied from the baseline file when present
    }

``repro bench --json BENCH_summary.json`` writes it; the CI perf job
fails the build when the baseline comparison reports a regression.
"""

import json
import platform
import subprocess
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from repro.bench import baseline as baseline_mod
from repro.bench import registry, timing
from repro.bench.registry import BenchError
from repro.bench.result import BenchResult
from repro.bench.suites import load_builtin_suites

SUMMARY_SCHEMA = "repro-bench-summary/1"


def describe_environment(with_timestamp: bool = True) -> Dict[str, Any]:
    """Git-describable metadata stamped on every summary."""
    meta: Dict[str, Any] = {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
    }
    try:
        meta["git"] = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            capture_output=True, text=True, check=True,
            timeout=10).stdout.strip()
    except Exception:
        meta["git"] = None
    if with_timestamp:
        meta["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    return meta


def run_suite(suite: str = "smoke", pattern: Optional[str] = None,
              warmup: int = 1, repeats: int = 3,
              overrides: Optional[Dict[str, Dict[str, Any]]] = None,
              baseline_path: Optional[str] = None,
              tolerance: float = 0.25,
              progress: Optional[Callable[[str], None]] = None,
              ) -> Dict[str, Any]:
    """Measure every selected benchmark in one process.

    Args:
        suite: ``smoke`` or ``full``.
        pattern: optional glob/substring filter on benchmark names.
        warmup / repeats: timing policy per benchmark (min-of-N).
        overrides: per-benchmark parameter overrides,
            ``{"fleet_scale": {"homes": 10}}`` — used by tests to
            shrink workloads; the CLI runs registry defaults.
        baseline_path: compare tracked metrics against this file.
        tolerance: allowed fractional drop before a comparison fails.
        progress: optional callable for one line per benchmark.

    Returns:
        The summary dict (see module docstring).  ``summary["ok"]`` is
        False when a baseline comparison failed.
    """
    load_builtin_suites()
    specs = registry.select(suite=suite, pattern=pattern)
    if not specs:
        raise BenchError(
            f"no benchmarks match suite={suite!r} pattern={pattern!r}")
    overrides = overrides or {}
    results: List[BenchResult] = []
    for spec in specs:
        if progress:
            progress(f"bench {spec.name} ...")
        result = timing.run_benchmark(spec, warmup=warmup,
                                      repeats=repeats,
                                      **overrides.get(spec.name, {}))
        results.append(result)
        if progress:
            row = result.row()
            progress(f"bench {spec.name}: {row['wall_ms']} ms"
                     + (f", {row['events_per_sec']} events/s"
                        if row["events_per_sec"] else ""))

    summary: Dict[str, Any] = {
        "schema": SUMMARY_SCHEMA,
        "suite": suite,
        "filter": pattern,
        "meta": describe_environment(),
        "results": [result.to_dict() for result in results],
        "ok": True,
    }
    if baseline_path:
        payload = baseline_mod.load_baseline(baseline_path)
        rows, ok = baseline_mod.compare(results, payload,
                                        tolerance=tolerance)
        summary["baseline"] = {"path": baseline_path,
                               "tolerance": tolerance,
                               "rows": rows, "ok": ok}
        summary["ok"] = ok
        # Surface the recorded optimization-pass before/after speedup
        # tables so BENCH_summary.json carries them alongside the fresh
        # numbers.
        for table in ("hotpath_pass", "fleet_pass", "scaling_mp"):
            if table in payload:
                summary[table] = payload[table]
    return summary


def summary_results(summary: Dict[str, Any]) -> List[BenchResult]:
    """Rehydrate the results list from a summary dict."""
    return [BenchResult.from_dict(entry)
            for entry in summary.get("results", [])]


def write_summary(summary: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
