"""Warmup / repeat / min-of-N timing around one benchmark call.

``min`` of the timed iterations is the estimator (the least-noise
sample on a busy machine); every iteration is recorded so summaries can
show spread.  Simulator events are counted via the process-wide
counter in :mod:`repro.sim.engine`, diffed around each iteration.
"""

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.bench.registry import BenchError, BenchSpec
from repro.bench.result import BenchResult
from repro.sim.engine import total_events_processed


@dataclass
class Measurement:
    """Raw timing of one benchmark: walls, events and the last outcome."""

    wall_s_all: List[float] = field(default_factory=list)
    events: int = 0
    outcome: Dict[str, Any] = field(default_factory=dict)

    @property
    def wall_s(self) -> float:
        return min(self.wall_s_all) if self.wall_s_all else 0.0


def measure(spec: BenchSpec, warmup: int = 1, repeats: int = 3,
            **overrides: Any) -> Measurement:
    """Time ``spec`` with ``warmup`` untimed then ``repeats`` timed calls."""
    if repeats < 1:
        raise BenchError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise BenchError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        spec.call(**overrides)
    measurement = Measurement()
    for _ in range(repeats):
        events_before = total_events_processed()
        started = time.perf_counter()
        outcome = spec.call(**overrides)
        measurement.wall_s_all.append(time.perf_counter() - started)
        measurement.events = total_events_processed() - events_before
        measurement.outcome = outcome
    return measurement


def to_result(spec: BenchSpec, measurement: Measurement,
              warmup: int, repeats: int,
              **overrides: Any) -> BenchResult:
    """Fold a measurement into the shared :class:`BenchResult` schema."""
    outcome = measurement.outcome
    params = dict(spec.params)
    params.update(overrides)
    wall = measurement.wall_s
    events = outcome.get("events", measurement.events or None)
    homes = outcome.get("homes")
    return BenchResult(
        name=spec.name,
        suite=spec.suite,
        params=params,
        warmup=warmup,
        repeats=repeats,
        wall_s=wall,
        wall_s_all=list(measurement.wall_s_all),
        events=events,
        events_per_sec=(events / wall if events and wall > 0 else None),
        homes=homes,
        homes_per_sec=(homes / wall if homes and wall > 0 else None),
        virtual_s=outcome.get("virtual_s"),
        latency_p50=outcome.get("latency_p50"),
        latency_p95=outcome.get("latency_p95"),
        metrics=dict(outcome.get("metrics", {})),
        timing=dict(outcome.get("timing", {})),
    )


def run_benchmark(spec: BenchSpec, warmup: int = 1, repeats: int = 3,
                  **overrides: Any) -> BenchResult:
    """Measure one spec and return its :class:`BenchResult`."""
    measurement = measure(spec, warmup=warmup, repeats=repeats,
                          **overrides)
    return to_result(spec, measurement, warmup=warmup, repeats=repeats,
                     **overrides)
