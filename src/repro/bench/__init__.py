"""The unified benchmark subsystem.

One registry, one result schema, one runner — every ``benchmarks/``
script and the ``repro bench`` CLI route through here, and the CI perf
job gates events/sec against ``benchmarks/baseline.json``.  See
docs/benchmarks.md for the full design and workflow.

    >>> from repro.bench import registry
    >>> from repro.bench.suites import load_builtin_suites
    >>> load_builtin_suites()
    >>> "fleet_scale" in registry.names("smoke")
    True
"""

from repro.bench.baseline import compare, load_baseline, make_baseline
from repro.bench.registry import (BenchError, BenchSpec, benchmark, call,
                                  get, names, select)
from repro.bench.result import BenchResult
from repro.bench.runner import run_suite, write_summary
from repro.bench.timing import run_benchmark

__all__ = [
    "BenchError", "BenchResult", "BenchSpec", "benchmark", "call",
    "compare", "get", "load_baseline", "make_baseline", "names",
    "run_benchmark", "run_suite", "select", "write_summary",
]
