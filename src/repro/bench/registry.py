"""The benchmark registry: one named entry per measurable workload.

A benchmark is a plain function returning a deterministic ``metrics``
dict (plus an optional ``timing`` dict for wall-clock-derived numbers
that are *excluded* from determinism and baseline checks)::

    @benchmark("fleet_scale", suite="smoke", homes=100, seed=42)
    def fleet_scale(homes, seed):
        ...
        return {"metrics": {...}, "timing": {...}, "homes": homes}

The decorator's keyword arguments are the entry's default parameters;
``repro bench`` (and :func:`repro.bench.runner.run_suite`) times the
call with warmup/repeat/min-of-N and wraps the outcome in a
:class:`~repro.bench.result.BenchResult`.

Suites
------

* ``smoke`` — the fast, CI-gated subset (seconds, not minutes); every
  smoke benchmark is also part of ``full``.
* ``scale`` — multi-core scaling measurements (``fleet_scale_mp``);
  separate from ``smoke`` because the numbers are machine-dependent
  and CI gates them with their own parallel-efficiency floor
  (``scripts/gate_scaling.py``) rather than the throughput baseline.
* ``full``  — everything, including the paper-figure sweeps.
"""

import fnmatch
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.errors import SafeHomeError

SUITES = ("smoke", "scale", "full")


class BenchError(SafeHomeError):
    """Registry or harness misuse (duplicate name, unknown suite...)."""


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark: its callable plus default parameters."""

    name: str
    fn: Callable[..., Dict[str, Any]]
    suite: str = "full"
    params: Mapping[str, Any] = field(default_factory=dict)
    description: str = ""

    def call(self, **overrides: Any) -> Dict[str, Any]:
        """Invoke once (untimed) with params merged over defaults."""
        kwargs = dict(self.params)
        kwargs.update(overrides)
        outcome = self.fn(**kwargs)
        if not isinstance(outcome, dict):
            raise BenchError(
                f"benchmark {self.name!r} returned "
                f"{type(outcome).__name__}, expected a dict outcome")
        return outcome


_REGISTRY: Dict[str, BenchSpec] = {}


def benchmark(name: str, suite: str = "full",
              **params: Any) -> Callable[[Callable], Callable]:
    """Register a benchmark function under ``name``.

    ``suite`` must be one of :data:`SUITES`; smoke entries are included
    in the full suite automatically.  Keyword arguments become the
    entry's default parameters.  Duplicate names are an error — the
    merged summary keys results by name.
    """
    def decorate(fn: Callable) -> Callable:
        register(BenchSpec(name=name, fn=fn, suite=suite, params=params,
                           description=(fn.__doc__ or "").strip()
                           .split("\n")[0]))
        return fn
    return decorate


def register(spec: BenchSpec) -> None:
    if spec.suite not in SUITES:
        raise BenchError(f"unknown suite {spec.suite!r}; "
                         f"pick from {SUITES}")
    if spec.name in _REGISTRY:
        raise BenchError(f"duplicate benchmark name {spec.name!r}")
    _REGISTRY[spec.name] = spec


def get(name: str) -> BenchSpec:
    spec = _REGISTRY.get(name)
    if spec is None:
        # Lazily pull in the built-in suites so registry.call() works
        # without an explicit load (the benchmarks/ wrappers rely on it).
        from repro.bench.suites import load_builtin_suites

        load_builtin_suites()
        spec = _REGISTRY.get(name)
    if spec is None:
        raise BenchError(
            f"unknown benchmark {name!r}; registered: {sorted(_REGISTRY)}")
    return spec


def call(name: str, **overrides: Any) -> Dict[str, Any]:
    """Run one registered benchmark untimed; returns its outcome dict.

    This is the hook the thin ``benchmarks/bench_*.py`` wrappers use to
    fetch rows for their figure-shape assertions.
    """
    return get(name).call(**overrides)


def select(suite: str = "full",
           pattern: Optional[str] = None) -> List[BenchSpec]:
    """Specs in a suite (name-sorted), optionally filtered.

    ``pattern`` is one or more ``|``-separated alternatives, each a
    glob (fnmatch) or plain substring.
    """
    if suite not in SUITES:
        raise BenchError(f"unknown suite {suite!r}; pick from {SUITES}")
    specs = [spec for spec in _REGISTRY.values()
             if suite == "full" or spec.suite == suite]
    if pattern:
        alternatives = [alt for alt in pattern.split("|") if alt]
        specs = [spec for spec in specs
                 if any(fnmatch.fnmatch(spec.name, alt)
                        or alt in spec.name
                        for alt in alternatives)]
    return sorted(specs, key=lambda spec: spec.name)


def names(suite: str = "full") -> List[str]:
    return [spec.name for spec in select(suite)]
