"""The stable public API facade.

Eight PRs grew entry points across ``repro.hub``, ``repro.fleet``,
``repro.serve`` and ``repro.workloads.synth``; this module is the one
import users (and the docs examples) should reach for::

    from repro.api import SafeHome, FleetEngine, FleetConfig, FleetPlan

Everything exported here is covered by the API test
(``tests/test_api.py``) and the docs doctests, and follows two rules:

* **keyword-only construction** — ``SafeHome(visibility="ev")``, never
  ``SafeHome("ev")``.  Positional arguments still work (old call sites
  keep running) but emit a pinned :class:`DeprecationWarning`;
* **plan round-trips** — configuration objects serialize through
  ``to_plan()`` / ``from_plan()`` dicts (and :class:`FleetPlan`
  documents the full ``repro-fleet-plan/1`` schema), so every run is
  reproducible from a JSON artifact.
"""

import warnings

from repro.fleet.control.loop import (ControlLoop, ControlResult,
                                      apply_plan)
from repro.fleet.control.opslog import OpsLog
from repro.fleet.control.plan import FleetPlan as _FleetPlan
from repro.fleet.control.plan import (CanarySpec, Cohort, MigrationStep,
                                      load_plan)
from repro.fleet.control.program import SupervisionPolicy
from repro.fleet.engine import FleetConfig, FleetResult
from repro.fleet.engine import FleetEngine as _FleetEngine
from repro.fleet.sharding import HomeSpec
from repro.hub.durability.recovery import DurabilityConfig
from repro.hub.migration import MigrationReport
from repro.hub.safehome import SafeHome as _SafeHome
from repro.serve.hub import ServeConfig
from repro.serve.hub import ServeHub as _ServeHub
from repro.workloads.synth.spec import SynthSpec as _SynthSpec

#: The pinned deprecation text (tests/test_api.py matches it verbatim).
POSITIONAL_DEPRECATION = (
    "positional arguments to repro.api constructors are deprecated; "
    "pass keyword arguments")


def _warn_positional(name: str, args: tuple) -> None:
    if args:
        warnings.warn(f"{name}: {POSITIONAL_DEPRECATION}",
                      DeprecationWarning, stacklevel=3)


class SafeHome(_SafeHome):
    """:class:`repro.hub.safehome.SafeHome` with keyword-only
    construction: ``SafeHome(visibility="ev", durability=True)``."""

    def __init__(self, *args, **kwargs) -> None:
        _warn_positional("SafeHome", args)
        super().__init__(*args, **kwargs)


class FleetEngine(_FleetEngine):
    """:class:`repro.fleet.engine.FleetEngine` with keyword-only
    construction: ``FleetEngine(config=FleetConfig(homes=100))``."""

    def __init__(self, *args, **kwargs) -> None:
        _warn_positional("FleetEngine", args)
        super().__init__(*args, **kwargs)


class ServeHub(_ServeHub):
    """:class:`repro.serve.hub.ServeHub` with keyword-only
    construction: ``ServeHub(homes={"home-0": home})``."""

    def __init__(self, *args, **kwargs) -> None:
        _warn_positional("ServeHub", args)
        super().__init__(*args, **kwargs)


class SynthSpec(_SynthSpec):
    """:class:`repro.workloads.synth.spec.SynthSpec` with keyword-only
    construction: ``SynthSpec(seed=7, devices=6)``."""

    def __init__(self, *args, **kwargs) -> None:
        _warn_positional("SynthSpec", args)
        super().__init__(*args, **kwargs)


class FleetPlan(_FleetPlan):
    """:class:`repro.fleet.control.plan.FleetPlan` with keyword-only
    construction: ``FleetPlan(fleet={"homes": 100, "seed": 42})``."""

    def __init__(self, *args, **kwargs) -> None:
        _warn_positional("FleetPlan", args)
        super().__init__(*args, **kwargs)


__all__ = [
    # facades (keyword-only constructors)
    "SafeHome",
    "FleetEngine",
    "ServeHub",
    "SynthSpec",
    "FleetPlan",
    # plan-round-trip config objects
    "FleetConfig",
    "FleetResult",
    "HomeSpec",
    "DurabilityConfig",
    "ServeConfig",
    # control plane
    "ControlLoop",
    "ControlResult",
    "OpsLog",
    "Cohort",
    "MigrationStep",
    "CanarySpec",
    "SupervisionPolicy",
    "MigrationReport",
    "load_plan",
    "apply_plan",
    # deprecation contract
    "POSITIONAL_DEPRECATION",
]
