"""repro — reproduction of "Home, SafeHome: Smart Home Reliability with
Visibility and Atomicity" (Ahsan et al., EuroSys 2021).

Quick start::

    from repro import SafeHome

    home = SafeHome(visibility="ev", scheduler="timeline")
    home.add_device("window", "living-window")
    home.add_device("ac", "living-ac")
    home.register_routine_spec({
        "routineName": "cooling",
        "commands": [
            {"device": "living-window", "action": "CLOSED",
             "durationSec": 2},
            {"device": "living-ac", "action": "ON", "durationSec": 2},
        ],
    })
    home.invoke("cooling")
    result = home.run()

See ``examples/`` for realistic scenarios, ``benchmarks/`` for the
paper's figures and tables, ``docs/architecture.md`` for the
architecture map, and :mod:`repro.fleet` for running N homes at once.
"""

from repro.core.command import Command
from repro.core.controller import (ControllerConfig, RoutineRun,
                                   RoutineStatus, RunResult)
from repro.core.routine import Routine, sequential
from repro.core.visibility import VisibilityModel, make_controller
from repro.hub.safehome import SafeHome

__version__ = "1.2.0"

__all__ = [
    "SafeHome",
    "Command",
    "Routine",
    "sequential",
    "RoutineRun",
    "RoutineStatus",
    "RunResult",
    "ControllerConfig",
    "VisibilityModel",
    "make_controller",
    "__version__",
]
