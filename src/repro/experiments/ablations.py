"""Ablation experiments for SafeHome's design choices.

DESIGN.md calls out several tunables the paper fixes by fiat; these
sweeps characterize each one:

* **leniency factor** (§4.1, fixed at 1.1×) — revocation aggressiveness
  vs abort rate and latency under noisy duration estimates;
* **estimate error** — how wrong the Timeline scheduler's duration
  estimates can be before placements degrade;
* **detector ping period** (§6, fixed at 1 s) — detection latency vs
  abort timing under failures;
* **network jitter** — how link quality moves WV's incongruence and
  EV's latency overhead.
"""

from dataclasses import replace
from typing import Any, Dict, List

from repro.core.controller import ControllerConfig
from repro.devices.network import LatencyModel
from repro.experiments.runner import ExperimentSetup, run_workload
from repro.metrics.stats import mean
from repro.workloads.lights import lights_workload
from repro.workloads.micro import MicroParams, generate_microbenchmark


def _sweep_micro(params: MicroParams, setup: ExperimentSetup,
                 trials: int, seed: int) -> List:
    reports = []
    for trial in range(trials):
        workload = generate_microbenchmark(params, seed=seed * 97 + trial)
        _result, report, _c = run_workload(workload, setup, trial=trial)
        reports.append(report)
    return reports


def ablate_leniency(trials: int = 6, seed: int = 21,
                    leniencies=(1.0, 1.1, 1.5, 3.0),
                    estimate_error: float = 0.5
                    ) -> List[Dict[str, Any]]:
    """Leniency factor vs spurious revocations (with noisy estimates)."""
    params = MicroParams(routines=30, concurrency=4, devices=10,
                         long_duration_s=120.0, short_duration_s=5.0)
    rows = []
    for leniency in leniencies:
        config = ControllerConfig(leniency_factor=leniency,
                                  revoke_slack_s=0.0,
                                  estimate_error=estimate_error)
        setup = ExperimentSetup(model="ev", scheduler="timeline",
                                config=config, seed=seed,
                                check_final=False)
        reports = _sweep_micro(params, setup, trials, seed)
        rows.append({
            "leniency": leniency,
            "abort_rate": mean([r.abort_rate for r in reports]),
            "lat_p50": mean([r.latency["p50"] for r in reports]),
        })
    return rows


def ablate_estimate_error(trials: int = 6, seed: int = 22,
                          errors=(0.0, 0.25, 0.5, 1.0)
                          ) -> List[Dict[str, Any]]:
    """Timeline placement quality vs duration-estimate error."""
    params = MicroParams(routines=30, concurrency=4, devices=10,
                         long_duration_s=120.0, short_duration_s=5.0)
    rows = []
    for error in errors:
        config = ControllerConfig(estimate_error=error)
        setup = ExperimentSetup(model="ev", scheduler="timeline",
                                config=config, seed=seed,
                                check_final=False)
        reports = _sweep_micro(params, setup, trials, seed)
        stretches = [s for r in reports for s in r.stretch]
        rows.append({
            "estimate_error": error,
            "lat_p50": mean([r.latency["p50"] for r in reports]),
            "stretch_mean": mean(stretches),
            "abort_rate": mean([r.abort_rate for r in reports]),
        })
    return rows


def ablate_detector_period(trials: int = 6, seed: int = 23,
                           periods=(0.25, 1.0, 4.0)
                           ) -> List[Dict[str, Any]]:
    """Ping period vs detection latency and rollback overhead."""
    from repro.devices.driver import Driver
    from repro.devices.registry import DeviceRegistry
    from repro.hub.failure_detector import FailureDetector
    from repro.core.controller import RunResult
    from repro.core.visibility import make_controller
    from repro.devices.failures import FailureInjector
    from repro.sim.engine import Simulator
    from repro.sim.random import RandomStreams

    params = MicroParams(routines=30, concurrency=4, devices=10,
                         failed_device_pct=25.0, long_duration_s=120.0,
                         short_duration_s=5.0)
    rows = []
    for period in periods:
        detection_lags, abort_rates = [], []
        for trial in range(trials):
            workload = generate_microbenchmark(params,
                                               seed=seed * 97 + trial)
            sim = Simulator()
            registry = DeviceRegistry()
            for type_name, name in workload.devices:
                registry.create(type_name, name)
            driver = Driver(sim=sim, registry=registry,
                            latency=LatencyModel(),
                            streams=RandomStreams(seed).spawn(trial))
            controller = make_controller("ev", sim, registry, driver,
                                         ControllerConfig())
            FailureDetector(sim, registry, driver, controller,
                            ping_period_s=period).start()
            injector = FailureInjector(sim, registry,
                                       plans=list(workload.failure_plans))
            injector.arm()
            for stream in workload.streams:
                for routine in stream:
                    controller.submit(routine)
            sim.run(max_events=2_000_000)
            result = RunResult.from_controller(controller)
            fail_times = {plan.device_id: plan.fail_at
                          for plan in workload.failure_plans}
            for kind, device_id, when in result.detection_events:
                if kind == "failure" and device_id in fail_times:
                    detection_lags.append(when - fail_times[device_id])
            abort_rates.append(result.abort_rate)
        rows.append({
            "ping_period_s": period,
            "detection_lag_mean_s": mean(detection_lags),
            "abort_rate": mean(abort_rates),
        })
    return rows


def ablate_network_jitter(trials: int = 20, seed: int = 24,
                          sigmas=(0.0, 0.4, 0.8, 1.2)
                          ) -> List[Dict[str, Any]]:
    """Link jitter vs WV incongruence on the Fig 1 workload."""
    rows = []
    for sigma in sigmas:
        incongruent = 0
        latency = LatencyModel(median_ms=150.0, sigma=sigma,
                               floor_ms=20.0)
        for trial in range(trials):
            workload = lights_workload(10, offset_s=0.0)
            setup = ExperimentSetup(model="wv", latency=latency,
                                    seed=seed + trial, check_final=False)
            result, _report, _c = run_workload(workload, setup,
                                               trial=trial)
            if len(set(result.end_state.values())) > 1:
                incongruent += 1
        rows.append({
            "sigma": sigma,
            "incongruent_fraction": incongruent / trials,
        })
    return rows
