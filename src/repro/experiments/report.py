"""Plain-text table formatting for experiment outputs."""

from typing import Any, Dict, List, Sequence


def format_table(rows: List[Dict[str, Any]],
                 columns: Sequence[str] = ()) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no data)"
    columns = list(columns) if columns else list(rows[0].keys())

    def cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    table = [[cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in table))
              for i, col in enumerate(columns)]
    header = "  ".join(col.ljust(widths[i])
                       for i, col in enumerate(columns))
    rule = "  ".join("-" * width for width in widths)
    body = "\n".join("  ".join(line[i].ljust(widths[i])
                               for i in range(len(columns)))
                     for line in table)
    return f"{header}\n{rule}\n{body}"


def print_table(title: str, rows: List[Dict[str, Any]],
                columns: Sequence[str] = ()) -> str:
    text = f"\n== {title} ==\n{format_table(rows, columns)}\n"
    print(text)
    return text
