"""Shared experiment executor.

Builds a fresh simulator + device stack per trial, injects the workload
(open-loop arrivals and/or closed-loop streams), runs to completion and
returns the :class:`RunResult` (plus a :class:`MetricsReport` from
:func:`repro.metrics.analyze`).
"""

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.controller import (Controller, ControllerConfig, RunResult)
from repro.core.visibility import VisibilityModel, make_controller
from repro.devices.driver import Driver
from repro.devices.failures import FailureInjector
from repro.devices.network import LatencyModel
from repro.devices.registry import DeviceRegistry
from repro.hub.failure_detector import FailureDetector
from repro.metrics.collector import MetricsReport, analyze
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.workloads.base import Workload, attach_streams


@dataclass
class ExperimentSetup:
    """Everything fixed across the trials of one experiment."""

    model: Union[str, VisibilityModel] = "ev"
    scheduler: str = "timeline"
    execution: Optional[str] = None     # None = keep config's strategy
    config: Optional[ControllerConfig] = None
    latency: LatencyModel = field(default_factory=LatencyModel)
    seed: int = 0
    check_final: bool = True
    exhaustive_limit: int = 7
    max_events: int = 5_000_000

    def make_config(self) -> ControllerConfig:
        config = self.config or ControllerConfig()
        config = replace(config, scheduler=self.scheduler)
        if self.execution is not None:
            config = replace(config, execution=self.execution)
        return config


def run_workload(workload: Workload, setup: ExperimentSetup,
                 trial: int = 0
                 ) -> Tuple[RunResult, MetricsReport, Controller]:
    """Execute one trial of ``workload`` under ``setup``.

    Workloads marked ``meta["scale_failures"]`` get a calibration pass:
    a failure-free dry run measures the model's makespan, and failure
    times are rescaled so devices fail "at a random point during the
    run" (§7.4) regardless of how long the model takes.
    """
    if workload.failure_plans and workload.meta.get("scale_failures"):
        workload = _scale_failure_plans(workload, setup, trial)
    return _run_once(workload, setup, trial)


def _scale_failure_plans(workload: Workload, setup: ExperimentSetup,
                         trial: int) -> Workload:
    dry = replace(workload, failure_plans=[],
                  meta={**workload.meta, "scale_failures": False})
    dry_result, _report, _controller = _run_once(
        replace(dry, arrivals=list(workload.arrivals),
                streams=[list(s) for s in workload.streams]),
        replace(setup, check_final=False), trial)
    makespan = max(dry_result.makespan, 1.0)
    generated_horizon = workload.meta.get(
        "failure_horizon", workload.horizon_hint or makespan)
    scale = makespan / max(generated_horizon, 1e-9)
    from repro.devices.failures import FailurePlan
    scaled = []
    for plan in workload.failure_plans:
        fail_at = plan.fail_at * scale
        restart_at = None
        if plan.restart_at is not None:
            restart_at = fail_at + (plan.restart_at - plan.fail_at)
        scaled.append(FailurePlan(plan.device_id, fail_at, restart_at))
    return replace(workload, failure_plans=scaled,
                   meta={**workload.meta, "scale_failures": False})


def _run_once(workload: Workload, setup: ExperimentSetup,
              trial: int = 0
              ) -> Tuple[RunResult, MetricsReport, Controller]:
    sim = Simulator()
    registry = DeviceRegistry()
    for type_name, name in workload.devices:
        registry.create(type_name, name)
    initial = registry.snapshot()

    streams = RandomStreams(seed=setup.seed).spawn(trial)
    driver = Driver(sim=sim, registry=registry, latency=setup.latency,
                    streams=streams)
    controller = make_controller(setup.model, sim, registry, driver,
                                 setup.make_config())

    injector = FailureInjector(sim, registry,
                               plans=list(workload.failure_plans))
    injector.arm()
    if workload.failure_plans:
        detector = FailureDetector(sim, registry, driver, controller)
        detector.start()
    else:
        # Implicit detection still feeds the controller.
        driver.on_timeout = controller.on_failure_detected

    for routine, at in workload.arrivals:
        controller.submit(routine, when=at)
    attach_streams(controller, workload.streams)

    sim.run(max_events=setup.max_events)
    result = RunResult.from_controller(controller)
    report = analyze(result, initial, check_final=setup.check_final,
                     exhaustive_limit=setup.exhaustive_limit)
    return result, report, controller


def run_trials(workload_factory, setup: ExperimentSetup, trials: int,
               ) -> List[MetricsReport]:
    """Run ``trials`` independent trials; ``workload_factory(trial)``
    returns the (re-seeded) workload for each."""
    reports = []
    for trial in range(trials):
        workload = workload_factory(trial)
        _result, report, _controller = run_workload(workload, setup,
                                                    trial=trial)
        reports.append(report)
    return reports


def aggregate(reports: List[MetricsReport]) -> Dict[str, Any]:
    """Pool per-trial reports into one experiment row."""
    from repro.metrics.stats import mean

    def pooled(attr: str) -> float:
        return mean([getattr(report, attr) for report in reports])

    latencies_p50 = mean([r.latency["p50"] for r in reports])
    latencies_p95 = mean([r.latency["p95"] for r in reports])
    final_checked = [r.final_congruent for r in reports
                     if r.final_congruent is not None]
    return {
        "trials": len(reports),
        "lat_p50": latencies_p50,
        "lat_p95": latencies_p95,
        "wait_p50": mean([r.wait_time["p50"] for r in reports]),
        "temp_incong": pooled("temporary_incongruence"),
        "parallelism": pooled("parallelism_mean"),
        "abort_rate": pooled("abort_rate"),
        "rollback": pooled("rollback_overhead_mean"),
        "order_mismatch": pooled("order_mismatch"),
        "final_incongruence": (
            1.0 - sum(final_checked) / len(final_checked)
            if final_checked else None),
    }
