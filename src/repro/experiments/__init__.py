"""Experiment drivers: one function per paper table/figure.

``repro.experiments.runner`` executes a workload under a visibility
model; ``repro.experiments.figures`` regenerates each figure's series.
"""

from repro.experiments.runner import ExperimentSetup, run_workload, run_trials

__all__ = ["ExperimentSetup", "run_workload", "run_trials"]
