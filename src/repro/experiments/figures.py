"""Figure/table drivers: each ``figNN`` function regenerates the data
series behind the corresponding figure in the paper's evaluation (§7),
returning printable rows.  Trial counts are parameters — the paper used
up to 1M trials per datapoint; defaults here keep the full suite fast
while preserving the shapes (see EXPERIMENTS.md).
"""

from dataclasses import replace
from typing import Any, Dict, List, Optional

from repro.core.controller import ControllerConfig
from repro.devices.network import LatencyModel
from repro.experiments.runner import (ExperimentSetup, aggregate,
                                      run_workload)
from repro.metrics.stats import cdf_points, mean, percentile
from repro.workloads.lights import lights_workload
from repro.workloads.micro import MicroParams, generate_microbenchmark
from repro.workloads.scenarios import (factory_scenario, morning_scenario,
                                       party_scenario)

MODELS = ("wv", "ev", "psv", "gsv")
_SCENARIOS = {
    "morning": morning_scenario,
    "party": party_scenario,
    "factory": factory_scenario,
}


def _micro_reports(params: MicroParams, model: str, trials: int,
                   seed: int, scheduler: str = "timeline",
                   config: Optional[ControllerConfig] = None,
                   check_final: bool = False) -> List:
    setup = ExperimentSetup(model=model, scheduler=scheduler,
                            config=config, seed=seed,
                            check_final=check_final)
    reports = []
    for trial in range(trials):
        workload = generate_microbenchmark(params, seed=seed * 7919 + trial)
        _result, report, _controller = run_workload(workload, setup,
                                                    trial=trial)
        reports.append(report)
    return reports


# -- Fig 1: concurrency causes incongruent end states under WV ------------------


def fig01_weak_visibility(device_counts=(2, 4, 6, 8, 10, 12, 15),
                          offsets=(0.0, 0.5, 1.0, 2.0),
                          trials: int = 50, seed: int = 1
                          ) -> List[Dict[str, Any]]:
    """Fraction of non-serialized end states: R1=all-ON vs R2=all-OFF.

    Reproduces the real-deployment mechanism with a slow, jittery
    device link (TP-Link commands take 100-300 ms)."""
    latency = LatencyModel(median_ms=150.0, sigma=0.8, floor_ms=20.0)
    rows = []
    for offset in offsets:
        for n_devices in device_counts:
            incongruent = 0
            for trial in range(trials):
                workload = lights_workload(n_devices, offset)
                setup = ExperimentSetup(model="wv", latency=latency,
                                        seed=seed + trial,
                                        check_final=False)
                result, _report, _c = run_workload(workload, setup,
                                                   trial=trial)
                if len(set(result.end_state.values())) > 1:
                    incongruent += 1
            rows.append({"offset_s": offset, "devices": n_devices,
                         "incongruent_fraction": incongruent / trials})
    return rows


# -- Fig 2: the 5-routine example under GSV / PSV / EV ----------------------------


def fig02_example(seed: int = 1) -> List[Dict[str, Any]]:
    """Execution times of the paper's 5 concurrent example routines.

    R1/R2 make coffee+pancakes, R3 pancakes, R4 Roomba+mop (living),
    R5 mop (kitchen).  One "time unit" = 60 s.  GSV serializes (8 units),
    PSV parallelizes disjoint routines (5), EV pipelines (3)."""
    from repro.core.command import Command
    from repro.core.routine import Routine
    from repro.workloads.base import Workload

    unit = 60.0
    # devices: 0 coffee, 1 pancake, 2 roomba, 3 mop-living, 4 mop-kitchen
    devices = [("coffee_maker", "coffee"), ("pancake_maker", "pancake"),
               ("vacuum", "roomba"), ("mop", "mop-living"),
               ("mop", "mop-kitchen")]

    def routine(name, steps):
        return Routine(name=name, commands=[
            Command(device_id=d, value=v, duration=t * unit)
            for d, v, t in steps])

    routines = [
        routine("R1", [(0, "Espresso", 1), (1, "Vanilla", 1)]),
        routine("R2", [(0, "Americano", 1), (1, "Strawberry", 1)]),
        routine("R3", [(1, "Regular", 1)]),
        routine("R4", [(2, "CLEANING", 1), (3, "MOPPING", 1)]),
        routine("R5", [(4, "MOPPING", 1)]),
    ]
    workload = Workload(name="fig2", devices=devices,
                        arrivals=[(r, 0.0) for r in routines])
    rows = []
    for model in ("gsv", "psv", "ev"):
        setup = ExperimentSetup(model=model, seed=seed,
                                latency=LatencyModel.deterministic(10.0),
                                check_final=True, exhaustive_limit=5)
        result, report, _c = run_workload(workload, setup)
        rows.append({
            "model": model,
            "makespan_units": round(max(r.finish_time for r in result.runs)
                                    / unit, 2),
            "mean_latency_units": round(mean(result.latencies()) / unit, 2),
            "mean_wait_units": round(
                mean([r.wait_time for r in result.runs]) / unit, 2),
            "temporary_incongruence": report.temporary_incongruence,
            "final_serializable": report.final_congruent,
        })
    return rows


# -- Fig 12a/12b: trace-based scenarios -------------------------------------------


def fig12a_scenarios(trials: int = 20, seed: int = 3,
                     scenarios=("morning", "party", "factory"),
                     models=MODELS) -> List[Dict[str, Any]]:
    """Latency / temporary incongruence / parallelism per scenario."""
    rows = []
    for scenario_name in scenarios:
        factory = _SCENARIOS[scenario_name]
        for model in models:
            latencies: List[float] = []
            waits: List[float] = []
            incongruences: List[float] = []
            parallelisms: List[float] = []
            for trial in range(trials):
                workload = factory(seed=seed * 131 + trial)
                setup = ExperimentSetup(model=model, seed=seed + trial,
                                        check_final=False)
                result, report, _c = run_workload(workload, setup,
                                                  trial=trial)
                latencies.extend(result.latencies())
                waits.extend([r.wait_time for r in result.runs
                              if r.wait_time is not None])
                incongruences.append(report.temporary_incongruence)
                parallelisms.append(report.parallelism_mean)
            rows.append({
                "scenario": scenario_name,
                "model": model,
                "lat_p50": percentile(latencies, 50),
                "lat_p90": percentile(latencies, 90),
                "lat_p95": percentile(latencies, 95),
                "wait_p50": percentile(waits, 50),
                "temp_incong": mean(incongruences),
                "parallelism": mean(parallelisms),
            })
    return rows


def fig12b_final_incongruence(runs: int = 100, n_routines: int = 9,
                              seed: int = 4,
                              models=MODELS) -> List[Dict[str, Any]]:
    """Ratio of end states not equivalent to any serial order.

    9 routines per run, all launched concurrently over a small, skewed
    device pool (high contention — the regime Fig 12b targets); the
    serial-equivalence check searches the 9! orders (designated-last-
    writer pruning makes it fast)."""
    params = MicroParams(routines=n_routines, concurrency=n_routines,
                         devices=5, commands_per_routine=3,
                         long_routine_pct=0, short_duration_s=0.2,
                         zipf_alpha=0.3)
    rows = []
    for model in models:
        incongruent = 0
        for trial in range(runs):
            workload = generate_microbenchmark(params,
                                               seed=seed * 7 + trial)
            setup = ExperimentSetup(model=model, seed=seed + trial,
                                    check_final=True, exhaustive_limit=7)
            _result, report, _c = run_workload(workload, setup,
                                               trial=trial)
            if report.final_congruent is False:
                incongruent += 1
        rows.append({"model": model, "runs": runs,
                     "final_incongruence": incongruent / runs})
    return rows


# -- Fig 13: effect of failures -----------------------------------------------------


def fig13_failures(trials: int = 10, seed: int = 5,
                   must_pcts=(0, 25, 50, 75, 100),
                   failure_pcts=(0, 10, 25, 50, 75),
                   models=("gsv", "sgsv", "psv", "ev")
                   ) -> Dict[str, List[Dict[str, Any]]]:
    """Abort rate and rollback overhead vs Must% (F=25%) and vs F%
    (M=100%) — Fig 13a-d."""
    base = MicroParams(routines=40, concurrency=4, devices=15,
                       long_duration_s=120.0, short_duration_s=5.0)
    must_rows, failure_rows = [], []
    for model in models:
        for must in must_pcts:
            params = replace(base, must_pct=float(must),
                             failed_device_pct=25.0)
            reports = _micro_reports(params, model, trials, seed)
            must_rows.append({
                "model": model, "must_pct": must,
                "abort_rate": mean([r.abort_rate for r in reports]),
                "rollback_overhead": mean(
                    [r.rollback_overhead_mean for r in reports]),
            })
        for failed in failure_pcts:
            params = replace(base, failed_device_pct=float(failed))
            reports = _micro_reports(params, model, trials, seed)
            failure_rows.append({
                "model": model, "failed_pct": failed,
                "abort_rate": mean([r.abort_rate for r in reports]),
                "rollback_overhead": mean(
                    [r.rollback_overhead_mean for r in reports]),
            })
    return {"must_sweep": must_rows, "failure_sweep": failure_rows}


# -- Fig 14: scheduling policies -----------------------------------------------------


def fig14_schedulers(trials: int = 10, seed: int = 6,
                     concurrencies=(1, 2, 4, 8),
                     schedulers=("fcfs", "jit", "timeline")
                     ) -> List[Dict[str, Any]]:
    """FCFS vs JiT vs Timeline under EV (normalized latency,
    temporary incongruence, parallelism)."""
    rows = []
    for scheduler in schedulers:
        for rho in concurrencies:
            params = MicroParams(routines=40, concurrency=rho, devices=15,
                                 long_duration_s=120.0,
                                 short_duration_s=5.0)
            reports = _micro_reports(params, "ev", trials, seed,
                                     scheduler=scheduler)
            rows.append({
                "scheduler": scheduler, "rho": rho,
                "norm_lat_p50": mean(
                    [r.norm_latency["p50"] for r in reports]),
                "lat_p50": mean([r.latency["p50"] for r in reports]),
                "temp_incong": mean(
                    [r.temporary_incongruence for r in reports]),
                "parallelism": mean(
                    [r.parallelism_mean for r in reports]),
            })
    return rows


# -- Fig 15: leasing ablation and TL internals ----------------------------------------


def fig15ab_leasing(trials: int = 10, seed: int = 7,
                    concurrencies=(2, 4, 8),
                    variants=None) -> List[Dict[str, Any]]:
    """Pre/post-lease ablation under TL scheduling (Fig 15a/15b)."""
    if variants is None:
        variants = {
            "both-on": (True, True),
            "pre-off": (False, True),
            "post-off": (True, False),
            "both-off": (False, False),
        }
    rows = []
    for label, (pre, post) in variants.items():
        for rho in concurrencies:
            params = MicroParams(routines=40, concurrency=rho, devices=15,
                                 long_duration_s=120.0,
                                 short_duration_s=5.0)
            config = ControllerConfig(pre_lease=pre, post_lease=post)
            reports = _micro_reports(params, "ev", trials, seed,
                                     scheduler="timeline", config=config)
            rows.append({
                "variant": label, "rho": rho,
                "lat_p50": mean([r.latency["p50"] for r in reports]),
                "temp_incong": mean(
                    [r.temporary_incongruence for r in reports]),
            })
    return rows


def fig15c_stretch(trials: int = 10, seed: int = 8,
                   command_counts=(2, 4, 8)) -> List[Dict[str, Any]]:
    """CDF of the stretch factor as routine size C varies."""
    rows = []
    for c in command_counts:
        params = MicroParams(routines=40, concurrency=4, devices=15,
                             commands_per_routine=float(c),
                             long_duration_s=120.0, short_duration_s=5.0)
        stretches: List[float] = []
        for trial in range(trials):
            workload = generate_microbenchmark(params,
                                               seed=seed * 13 + trial)
            setup = ExperimentSetup(model="ev", scheduler="timeline",
                                    seed=seed + trial, check_final=False)
            _result, report, _c2 = run_workload(workload, setup,
                                                trial=trial)
            stretches.extend(report.stretch)
        stretched = [s for s in stretches if s > 1.05]
        rows.append({
            "commands_per_routine": c,
            "stretch_p50": percentile(stretches, 50),
            "stretch_p90": percentile(stretches, 90),
            "stretch_p99": percentile(stretches, 99),
            "fraction_stretched": len(stretched) / max(1, len(stretches)),
            "cdf": cdf_points(stretches, points=20),
        })
    return rows


def fig15d_insertion_time(routine_sizes=(1, 2, 4, 6, 8, 10),
                          n_devices: int = 15, n_routines: int = 30,
                          seed: int = 9) -> List[Dict[str, Any]]:
    """CPU time of one Timeline placement (Algorithm 1) vs routine size."""
    rows = []
    for size in routine_sizes:
        params = MicroParams(routines=n_routines, concurrency=6,
                             devices=n_devices,
                             commands_per_routine=float(size),
                             long_routine_pct=0.0, short_duration_s=5.0)
        workload = generate_microbenchmark(params, seed=seed)
        setup = ExperimentSetup(model="ev", scheduler="timeline",
                                seed=seed, check_final=False)
        _result, _report, controller = run_workload(workload, setup)
        samples = [elapsed for (n, elapsed)
                   in controller.scheduler.insertion_times if n >= size]
        rows.append({
            "commands": size,
            "mean_insert_ms": mean(samples) * 1000 if samples else 0.0,
            "max_insert_ms": max(samples, default=0.0) * 1000,
        })
    return rows


# -- Fig 16: routine size and device popularity -------------------------------------------


def fig16_routine_size(trials: int = 10, seed: int = 10,
                       command_counts=(1, 2, 3, 4, 6, 8),
                       models=MODELS) -> List[Dict[str, Any]]:
    """Latency / parallelism / temp-incongruence & order mismatch vs C."""
    rows = []
    for model in models:
        for c in command_counts:
            params = MicroParams(routines=40, concurrency=4, devices=15,
                                 commands_per_routine=float(c),
                                 long_duration_s=120.0,
                                 short_duration_s=5.0)
            reports = _micro_reports(params, model, trials, seed)
            rows.append({
                "model": model, "commands": c,
                "lat_p50": mean([r.latency["p50"] for r in reports]),
                "parallelism": mean([r.parallelism_mean for r in reports]),
                "temp_incong": mean(
                    [r.temporary_incongruence for r in reports]),
                "order_mismatch": mean(
                    [r.order_mismatch for r in reports]),
            })
    return rows


def fig16d_popularity(trials: int = 10, seed: int = 11,
                      alphas=(0.0, 0.05, 0.2, 0.5, 1.0),
                      models=MODELS) -> List[Dict[str, Any]]:
    """Latency vs Zipf device-popularity skew α."""
    rows = []
    for model in models:
        for alpha in alphas:
            params = MicroParams(routines=40, concurrency=4, devices=15,
                                 zipf_alpha=alpha, long_duration_s=120.0,
                                 short_duration_s=5.0)
            reports = _micro_reports(params, model, trials, seed)
            rows.append({
                "model": model, "alpha": alpha,
                "lat_p50": mean([r.latency["p50"] for r in reports]),
            })
    return rows


# -- Fig 17: long-running routines --------------------------------------------------------


def fig17_long_routines(trials: int = 10, seed: int = 12,
                        long_durations=(60.0, 300.0, 900.0),
                        long_pcts=(0, 10, 25, 50)
                        ) -> Dict[str, List[Dict[str, Any]]]:
    """Temporary incongruence & order mismatch vs |L| and L% (EV/TL)."""
    duration_rows, pct_rows = [], []
    for duration in long_durations:
        params = MicroParams(routines=40, concurrency=4, devices=15,
                             long_routine_pct=10.0,
                             long_duration_s=duration,
                             short_duration_s=5.0)
        reports = _micro_reports(params, "ev", trials, seed)
        duration_rows.append({
            "long_duration_s": duration,
            "temp_incong": mean(
                [r.temporary_incongruence for r in reports]),
            "order_mismatch": mean([r.order_mismatch for r in reports]),
        })
    for pct in long_pcts:
        params = MicroParams(routines=40, concurrency=4, devices=15,
                             long_routine_pct=float(pct),
                             long_duration_s=300.0, short_duration_s=5.0)
        reports = _micro_reports(params, "ev", trials, seed)
        pct_rows.append({
            "long_pct": pct,
            "temp_incong": mean(
                [r.temporary_incongruence for r in reports]),
            "order_mismatch": mean([r.order_mismatch for r in reports]),
        })
    return {"duration_sweep": duration_rows, "pct_sweep": pct_rows}
