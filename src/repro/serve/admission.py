"""Per-tenant admission queues with weighted fair dequeue.

The front door between concurrent clients and the single-threaded
simulator: every submission lands in its tenant's bounded FIFO queue,
and the serve loop drains the queues into the controller with deficit
round-robin — each drain round grants every backlogged tenant credit
proportional to its weight, so under sustained skewed load admitted
counts converge to the weight ratios regardless of who submits faster
(pinned by the fairness tests in ``tests/test_serve.py``).

Backpressure is 429-shaped: a full queue rejects the submission with a
``retry_after_s`` hint that grows with the backlog the tenant would
have to wait behind.  The structure itself is not thread-safe; the
:class:`~repro.serve.hub.ServeHub` serializes access under its lock.
"""

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.errors import AdmissionRejected, ServeError


class TenantState:
    """One tenant's queue, weight, fair-dequeue credit and counters."""

    __slots__ = ("name", "weight", "home", "queue", "credit",
                 "offered", "admitted", "rejected", "dropped",
                 "committed", "aborted", "max_depth")

    def __init__(self, name: str, weight: int, home: str) -> None:
        self.name = name
        self.weight = weight
        self.home = home
        self.queue: Deque = deque()
        self.credit = 0.0
        self.offered = 0
        self.admitted = 0
        self.rejected = 0
        self.dropped = 0
        self.committed = 0
        self.aborted = 0
        self.max_depth = 0

    @property
    def depth(self) -> int:
        return len(self.queue)


class AdmissionControl:
    """Bounded per-tenant queues + deficit-round-robin drain."""

    def __init__(self, capacity: int = 64,
                 retry_after_s: float = 0.05) -> None:
        if capacity < 1:
            raise ServeError(f"queue capacity must be >= 1, got {capacity}")
        if retry_after_s <= 0:
            raise ServeError("retry_after_s must be positive")
        self.capacity = capacity
        self.retry_after_s = retry_after_s
        # Registration order is the (deterministic) drain order.
        self._tenants: Dict[str, TenantState] = {}

    # -- tenants ---------------------------------------------------------------

    def register(self, name: str, weight: int = 1,
                 home: str = "") -> TenantState:
        if name in self._tenants:
            raise ServeError(f"tenant {name!r} already registered")
        if weight < 1:
            raise ServeError(f"tenant weight must be >= 1, got {weight}")
        tenant = TenantState(name, int(weight), home)
        self._tenants[name] = tenant
        return tenant

    def tenant(self, name: str) -> TenantState:
        state = self._tenants.get(name)
        if state is None:
            raise ServeError(f"unknown tenant {name!r}; register it first")
        return state

    def tenants(self) -> List[TenantState]:
        return list(self._tenants.values())

    # -- enqueue / dequeue -----------------------------------------------------

    def offer(self, name: str, ticket) -> None:
        """Enqueue one request, or reject it when the queue is full.

        The rejection's ``retry_after_s`` scales with the backlog the
        request would sit behind, discounted by the tenant's weight
        (heavier tenants drain faster, so their hint is shorter).
        """
        state = self.tenant(name)
        state.offered += 1
        if len(state.queue) >= self.capacity:
            state.rejected += 1
            retry = self.retry_after_s * (len(state.queue) + 1) \
                / state.weight
            raise AdmissionRejected(
                f"tenant {name!r} queue is full "
                f"({len(state.queue)}/{self.capacity})",
                tenant=name, retry_after_s=retry)
        state.queue.append(ticket)
        if len(state.queue) > state.max_depth:
            state.max_depth = len(state.queue)

    def drain(self, limit: int) -> List:
        """Weighted fair dequeue of up to ``limit`` tickets.

        Deficit round-robin: every round each backlogged tenant earns
        ``weight`` credit and dequeues one ticket per whole credit, in
        registration order — deterministic given queue contents, and
        weight-proportional under saturation.
        """
        out: List = []
        if limit < 1:
            return out
        order = list(self._tenants.values())
        while len(out) < limit:
            progressed = False
            for state in order:
                if not state.queue:
                    # Classic DRR: an empty queue forfeits its credit,
                    # so an idle tenant cannot hoard a burst allowance.
                    state.credit = 0.0
                    continue
                state.credit += state.weight
                while state.credit >= 1 and state.queue \
                        and len(out) < limit:
                    state.credit -= 1
                    ticket = state.queue.popleft()
                    state.admitted += 1
                    out.append(ticket)
                    progressed = True
            if not progressed:
                break
        return out

    def drop_all(self) -> List:
        """Empty every queue (hard shutdown); returns dropped tickets."""
        dropped: List = []
        for state in self._tenants.values():
            while state.queue:
                ticket = state.queue.popleft()
                state.dropped += 1
                dropped.append(ticket)
            state.credit = 0.0
        return dropped

    # -- gauges ----------------------------------------------------------------

    def total_depth(self) -> int:
        return sum(len(s.queue) for s in self._tenants.values())

    def saturation(self) -> float:
        """Fullest queue as a fraction of capacity (0.0 when idle)."""
        if not self._tenants:
            return 0.0
        return max(len(s.queue) for s in self._tenants.values()) \
            / self.capacity

    def record_finish(self, name: str, committed: bool) -> None:
        state = self.tenant(name)
        if committed:
            state.committed += 1
        else:
            state.aborted += 1
