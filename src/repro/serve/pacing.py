"""Bridging the virtual clock to wall-clock: the ``RealTimeDriver``.

Everything below the hub is a discrete-event simulation whose clock
jumps from event to event.  A *served* home must instead advance in
real time — a routine that takes 4 virtual seconds should take 4 wall
seconds (or ``4 / speedup`` under test acceleration).  The driver sits
*next to* the simulator without forking it: it owns no events, it only
decides **when** the simulator is allowed to process the events that
are already due.

Pacing contract
---------------

``speedup`` is virtual seconds per wall second:

* finite (``speedup=50``) — each :meth:`pump` processes every event
  whose virtual time the wall clock has "earned" since :meth:`start`,
  then sleeps briefly (never past the next due event).  Soak tests run
  at ``speedup >= 100`` so thousands of virtual seconds cost a few
  wall seconds.
* ``math.inf`` — *virtual-paced*: no wall coupling and no sleeping at
  all; :meth:`pump` simply drains every pending event.  This mode is
  byte-deterministic (the request layer runs inline, see
  docs/serving.md) and is what the determinism gate compares.

The wall clock and sleep function are injectable so pacing itself is
testable with a fake clock (no flaky real sleeps in the suite).
"""

import math
import time
from typing import Callable, Optional

from repro.errors import ServeError
from repro.sim.engine import Simulator


class RealTimeDriver:
    """Paces one :class:`~repro.sim.engine.Simulator` against wall time."""

    def __init__(self, sim: Simulator, speedup: float = math.inf,
                 poll_s: float = 0.002,
                 monotonic: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if not speedup > 0:
            raise ServeError(f"speedup must be positive, got {speedup!r}")
        if poll_s <= 0:
            raise ServeError(f"poll_s must be positive, got {poll_s!r}")
        self.sim = sim
        self.speedup = float(speedup)
        self.poll_s = poll_s
        self._monotonic = monotonic
        self._sleep = sleep
        self._origin_wall: Optional[float] = None
        self._origin_virtual = 0.0
        # Monotonicity watermark: the virtual clock of a served home
        # must never run backwards (asserted on every pump; the soak
        # test reads `clock_regressions`).
        self._last_virtual = sim.now
        self.clock_regressions = 0

    @property
    def virtual_paced(self) -> bool:
        """True when ``speedup`` is infinite (no wall coupling)."""
        return math.isinf(self.speedup)

    @property
    def started(self) -> bool:
        return self.virtual_paced or self._origin_wall is not None

    def start(self) -> None:
        """Anchor virtual ``sim.now`` to the current wall instant."""
        self._origin_wall = self._monotonic()
        self._origin_virtual = self.sim.now

    def target(self) -> float:
        """Virtual time the wall clock has earned since :meth:`start`."""
        if self.virtual_paced:
            raise ServeError("a virtual-paced driver has no wall target")
        if self._origin_wall is None:
            raise ServeError("start() the driver before pacing")
        elapsed = self._monotonic() - self._origin_wall
        return self._origin_virtual + elapsed * self.speedup

    def behind_s(self) -> float:
        """Wall seconds the simulation lags its pacing schedule.

        Zero (or slightly negative) when keeping up; a growing value
        means the machine cannot process events as fast as the chosen
        ``speedup`` demands (a saturation signal surfaced in
        ``/status``).  Always zero when virtual-paced.
        """
        if self.virtual_paced or self._origin_wall is None:
            return 0.0
        return max(0.0, (self.target() - self.sim.now) / self.speedup)

    def wall_elapsed(self) -> float:
        if self._origin_wall is None:
            return 0.0
        return self._monotonic() - self._origin_wall

    def pump(self, max_events: Optional[int] = None) -> int:
        """Process due events; returns how many fired.

        Virtual-paced: drain the queue.  Real-time: run events up to
        :meth:`target` (advancing the clock to the target so virtual
        time tracks wall time even through idle gaps), then sleep —
        at most ``poll_s``, and never past the next event's due time —
        when there is nothing to do yet.
        """
        sim = self.sim
        before = sim.events_processed
        if self.virtual_paced:
            sim.run(max_events=max_events)
        else:
            if self._origin_wall is None:
                self.start()
            target = self.target()
            if target > sim.now or sim.next_event_time() is not None:
                sim.run(until=target, max_events=max_events)
            pumped = sim.events_processed - before
            if pumped == 0:
                next_due = sim.next_event_time()
                if next_due is None:
                    self._sleep(self.poll_s)
                else:
                    wait = (next_due - self.target()) / self.speedup
                    if wait > 0:
                        self._sleep(min(self.poll_s, wait))
        if sim.now < self._last_virtual:
            self.clock_regressions += 1
        self._last_virtual = sim.now
        return sim.events_processed - before


def parse_speedup(text: str) -> float:
    """CLI parser for ``--speedup``: a positive float or ``inf``."""
    raw = str(text).strip().lower()
    if raw in ("inf", "infinite", "virtual"):
        return math.inf
    try:
        value = float(raw)
    except ValueError:
        raise ServeError(
            f"--speedup must be a positive number or 'inf', got {text!r}")
    if not value > 0:
        raise ServeError(f"--speedup must be positive, got {text!r}")
    return value
