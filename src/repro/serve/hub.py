"""The long-running front door: ``ServeHub``.

A served deployment is one or more live :class:`SafeHome` instances
fielding routine submissions from many concurrent tenants.  Clients
(threads, or the inline closed-loop generator) call :meth:`submit`,
which only touches the tenant's bounded admission queue; a single
serve loop — the only code that ever drives the simulators — admits
queued requests with weighted fair dequeue and paces each home's
virtual clock through a :class:`~repro.serve.pacing.RealTimeDriver`.

Determinism: with ``speedup=inf`` and the loop run inline
(:meth:`serve_until_idle`), submissions only ever happen between pump
steps — from the caller before serving or from completion hooks inside
the loop — so admission order is a pure function of the seed and the
request layer adds no nondeterminism (the byte-identical-reports gate
in ``tests/test_serve_soak.py`` and CI pins this).

Lifecycle::

    hub = ServeHub({"home-0": home}, ServeConfig(speedup=100.0))
    hub.add_tenant("alice", weight=2)
    hub.start()                      # background serve loop
    ticket = hub.submit("alice", "scene-warm")
    ticket.done.wait()
    hub.shutdown(drain=True)         # finish in-flight, reject new
    report = hub.final_report()
"""

import json
import math
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Union

from repro.core.controller import RoutineStatus, RunResult
from repro.core.routine import Routine
from repro.core.spec import parse_routine
from repro.errors import AdmissionRejected, ServeError
from repro.hub.safehome import SafeHome
from repro.metrics.collector import MetricsReport
from repro.serve.admission import AdmissionControl
from repro.serve.pacing import RealTimeDriver
from repro.serve.slo import LatencyTracker


@dataclass
class ServeConfig:
    """Knobs for one served deployment (see docs/serving.md)."""

    speedup: float = math.inf       # virtual s per wall s; inf = virtual-paced
    queue_capacity: int = 64        # per-tenant admission queue bound
    retry_after_s: float = 0.05     # base backoff hint per queued request
    admit_batch: int = 16           # admissions per loop iteration
    window_s: float = 60.0          # rolling SLO window (virtual seconds)
    window_buckets: int = 6
    resolution: float = 1e-3        # latency histogram bin width (s)
    poll_s: float = 0.002           # idle sleep bound (real-time mode)
    max_total_events: Optional[int] = None   # per-home livelock valve


class Ticket:
    """One submission's journey through the served hub."""

    __slots__ = ("seq", "tenant", "routine", "home", "status",
                 "enqueued_v", "admitted_v", "finished_v", "routine_id",
                 "done")

    def __init__(self, seq: int, tenant: str, routine: Any,
                 home: str, enqueued_v: float) -> None:
        self.seq = seq
        self.tenant = tenant
        self.routine = routine
        self.home = home
        self.status = "queued"      # queued|admitted|committed|aborted|dropped
        self.enqueued_v = enqueued_v
        self.admitted_v: Optional[float] = None
        self.finished_v: Optional[float] = None
        self.routine_id: Optional[int] = None
        self.done = threading.Event()

    @property
    def latency_v(self) -> Optional[float]:
        """Virtual enqueue → finish (queue wait + execution), the SLO
        latency; ``None`` until the routine reaches a terminal state."""
        if self.finished_v is None:
            return None
        return self.finished_v - self.enqueued_v


class ServeHub:
    """A multi-tenant service front end over live SafeHome instances."""

    def __init__(self,
                 homes: Union[SafeHome, Dict[str, SafeHome]],
                 config: Optional[ServeConfig] = None) -> None:
        if isinstance(homes, SafeHome):
            homes = {"home-0": homes}
        if not homes:
            raise ServeError("a served hub needs at least one home")
        self.config = config or ServeConfig()
        self.homes: Dict[str, SafeHome] = dict(homes)
        self._home_order = list(self.homes)
        for name, home in self.homes.items():
            if home.durability is not None:
                raise ServeError(
                    f"home {name!r} is durable; service-mode pumping "
                    "does not journal (serve homes must be non-durable)")
        self.drivers: Dict[str, RealTimeDriver] = {
            name: RealTimeDriver(home.sim, self.config.speedup,
                                 poll_s=self.config.poll_s)
            for name, home in self.homes.items()}
        self.admission = AdmissionControl(
            capacity=self.config.queue_capacity,
            retry_after_s=self.config.retry_after_s)
        self.latency = LatencyTracker(
            window_s=self.config.window_s,
            buckets=self.config.window_buckets,
            resolution=self.config.resolution)
        # One lock guards queues, tickets, counters and state; the
        # serve loop holds it only for short bookkeeping sections, so
        # submit() from client threads never blocks on a sim pump.
        self._lock = threading.RLock()
        self._state = "new"           # new|serving|draining|stopped
        self._seq = 0
        self._live: Dict[tuple, Ticket] = {}     # (home, routine_id) -> ticket
        self._next_home = 0
        self._thread: Optional[threading.Thread] = None
        self._results: Optional[Dict[str, RunResult]] = None
        # Fired (inside the serve loop) whenever a ticket reaches a
        # terminal state — the closed-loop generator's resubmit hook.
        self.on_ticket_done: List[Callable[[Ticket], None]] = []
        for name, home in self.homes.items():
            home.controller.on_routine_finished.append(
                self._finished_callback(name))

    # -- tenants ---------------------------------------------------------------

    def add_tenant(self, name: str, weight: int = 1,
                   home: Optional[str] = None) -> None:
        """Register a tenant; ``home`` defaults to round-robin routing
        across the hub's homes at registration time."""
        with self._lock:
            if home is None:
                home = self._home_order[self._next_home
                                        % len(self._home_order)]
                self._next_home += 1
            elif home not in self.homes:
                raise ServeError(f"unknown home {home!r}; "
                                 f"pick from {self._home_order}")
            self.admission.register(name, weight=weight, home=home)

    # -- submission (any thread) ----------------------------------------------

    def submit(self, tenant: str,
               routine: Union[str, Dict[str, Any], Routine]) -> Ticket:
        """Submit one routine invocation for ``tenant``.

        ``routine`` is a bank name, a Fig-10 JSON spec dict, or a
        :class:`Routine`.  Returns a :class:`Ticket` whose ``done``
        event fires at commit/abort; raises
        :class:`~repro.errors.AdmissionRejected` when the tenant's
        queue is full (``retry_after_s`` backoff hint) or the hub is
        draining (``retry_after_s is None``).
        """
        with self._lock:
            if self._state in ("draining", "stopped"):
                raise AdmissionRejected(
                    f"hub is {self._state}; not accepting new routines",
                    tenant=tenant, retry_after_s=None)
            state = self.admission.tenant(tenant)
            ticket = Ticket(self._seq, tenant, routine, state.home,
                            enqueued_v=self.homes[state.home].sim.now)
            self.admission.offer(tenant, ticket)   # raises when full
            self._seq += 1
            return ticket

    # -- completion plumbing (serve-loop thread) -------------------------------

    def _finished_callback(self, home_name: str):
        def on_finished(run) -> None:
            ticket = self._live.pop((home_name, run.routine_id), None)
            if ticket is None:
                return               # submitted outside the serve layer
            committed = run.status is RoutineStatus.COMMITTED
            with self._lock:
                ticket.finished_v = run.finish_time
                ticket.status = "committed" if committed else "aborted"
                self.admission.record_finish(ticket.tenant, committed)
                self.latency.add(ticket.finished_v, ticket.latency_v)
            for hook in self.on_ticket_done:
                hook(ticket)
            ticket.done.set()
        return on_finished

    # -- the serve loop --------------------------------------------------------

    def _admit_batch(self) -> int:
        with self._lock:
            batch = self.admission.drain(self.config.admit_batch)
        for ticket in batch:
            home = self.homes[ticket.home]
            routine = ticket.routine
            if isinstance(routine, (str, Routine)):
                run = home.invoke(routine)
            else:
                run = home.invoke(parse_routine(routine, home.registry))
            ticket.routine_id = run.routine_id
            ticket.admitted_v = home.sim.now
            ticket.status = "admitted"
            self._live[(ticket.home, run.routine_id)] = ticket
        return len(batch)

    def _pump_all(self) -> int:
        events = 0
        for name in self._home_order:
            self.homes[name].service_prepare()
            events += self.drivers[name].pump(
                max_events=self.config.max_total_events)
        return events

    def _idle(self) -> bool:
        with self._lock:
            return self.admission.total_depth() == 0 \
                and not self._live

    def serve_until_idle(self) -> None:
        """Run the serve loop inline until all accepted work is done.

        This is the deterministic entry point: with ``speedup=inf``
        the whole service — admission, execution, completion hooks and
        closed-loop resubmission — runs single-threaded in virtual
        time.  With a finite ``speedup`` it paces against wall clock
        but still returns once every queue and home is idle.
        """
        self._enter_serving()
        while True:
            admitted = self._admit_batch()
            events = self._pump_all()
            if admitted or events:
                continue
            if self._idle():
                break
            with self._lock:
                depth = self.admission.total_depth()
            if depth:
                continue             # admit the next batch
            # Nothing queued, nothing fired, but routines are live: in
            # real-time mode the next event is simply not due yet.
            if not self.drivers[self._home_order[0]].virtual_paced:
                continue             # pump() sleeps; keep pacing
            raise ServeError(
                f"serve loop stalled with {len(self._live)} live "
                "routine(s) and no pending events (deadlock?)")
        with self._lock:
            if self._state == "serving":
                self._state = "draining"
            self._state = "stopped"

    def _serve_loop(self) -> None:
        while True:
            with self._lock:
                state = self._state
            if state == "stopped":
                break
            admitted = self._admit_batch()
            events = self._pump_all()
            if state == "draining" and not admitted and not events \
                    and self._idle():
                break
            if not admitted and not events \
                    and self.drivers[self._home_order[0]].virtual_paced:
                # Virtual-paced + threaded: nothing to do until a
                # client enqueues; don't spin.
                threading.Event().wait(self.config.poll_s)
        with self._lock:
            self._state = "stopped"

    def _enter_serving(self) -> None:
        with self._lock:
            if self._state == "stopped":
                raise ServeError("hub already stopped")
            if self._state == "new":
                self._state = "serving"
                for driver in self.drivers.values():
                    if not driver.virtual_paced:
                        driver.start()

    def start(self) -> None:
        """Run the serve loop in a background thread."""
        if self._thread is not None:
            raise ServeError("hub already started")
        self._enter_serving()
        self._thread = threading.Thread(target=self._serve_loop,
                                        name="repro-serve", daemon=True)
        self._thread.start()

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop serving.

        ``drain=True`` (graceful): new submissions are rejected
        immediately, everything already queued or in flight runs to a
        terminal state, then the loop exits.  ``drain=False`` (hard):
        the loop stops at the next iteration and queued tickets are
        marked ``dropped`` (their ``done`` events fire so no waiter
        hangs).
        """
        with self._lock:
            if self._state == "stopped":
                return
            self._state = "draining" if drain else "stopped"
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise ServeError("serve loop did not stop in time")
            self._thread = None
        with self._lock:
            self._state = "stopped"
            if not drain:
                for ticket in self.admission.drop_all():
                    ticket.status = "dropped"
                    ticket.done.set()

    # -- results / metrics -----------------------------------------------------

    def results(self) -> Dict[str, RunResult]:
        """Finalize (once) and return each home's :class:`RunResult`."""
        with self._lock:
            if self._state != "stopped":
                raise ServeError("shut the hub down before finalizing")
            if self._results is None:
                self._results = {name: self.homes[name].finalize_service()
                                 for name in self._home_order}
            return self._results

    def reports(self, check_final: bool = False
                ) -> Dict[str, MetricsReport]:
        """Per-home §7.1 metrics reports over the served run."""
        self.results()
        return {name: self.homes[name].report(check_final=check_final)
                for name in self._home_order}

    def oracle_reports(self) -> Dict[str, Any]:
        """Per-home congruence-oracle reports (docs/scenario-synthesis.md)."""
        from repro.metrics.oracle import check_run

        results = self.results()
        out = {}
        for name in self._home_order:
            home = self.homes[name]
            out[name] = check_run(results[name], home.initial)
        return out

    def status(self, include_wall: bool = False) -> Dict[str, Any]:
        """The streaming SLO surface (``/status``, ``--json-status``).

        Deterministic for a seeded virtual-paced run; ``include_wall``
        adds the explicitly wall-clock-dependent gauges (elapsed time,
        pacing lag) under a ``"wall"`` key.
        """
        with self._lock:
            now_by_home = {name: self.homes[name].sim.now
                           for name in self._home_order}
            max_now = max(now_by_home.values())
            tenants = {}
            for state in self.admission.tenants():
                finished = state.committed + state.aborted
                tenants[state.name] = {
                    "home": state.home,
                    "weight": state.weight,
                    "depth": state.depth,
                    "max_depth": state.max_depth,
                    "saturation": round(
                        state.depth / self.admission.capacity, 6),
                    "offered": state.offered,
                    "admitted": state.admitted,
                    "rejected": state.rejected,
                    "dropped": state.dropped,
                    "committed": state.committed,
                    "aborted": state.aborted,
                    "abort_rate": round(state.aborted / finished, 6)
                    if finished else 0.0,
                }
            payload: Dict[str, Any] = {
                "state": self._state,
                "config": {
                    "speedup": None if math.isinf(self.config.speedup)
                    else self.config.speedup,
                    "queue_capacity": self.config.queue_capacity,
                    "window_s": self.config.window_s,
                },
                "homes": {
                    name: {
                        "virtual_now": round(now_by_home[name], 6),
                        "pending_events": self.homes[name].sim.pending_events,
                        "events_processed":
                            self.homes[name].sim.events_processed,
                    } for name in self._home_order},
                "queue": {
                    "depth": self.admission.total_depth(),
                    "saturation": round(self.admission.saturation(), 6),
                },
                "tenants": tenants,
                "latency": self.latency.snapshot(max_now),
                "in_flight": len(self._live),
            }
            if include_wall:
                payload["wall"] = {
                    "elapsed_s": round(max(d.wall_elapsed()
                                           for d in self.drivers.values()), 3),
                    "behind_s": round(max(d.behind_s()
                                          for d in self.drivers.values()), 3),
                    "clock_regressions": sum(d.clock_regressions
                                             for d in self.drivers.values()),
                }
            return payload

    def status_json(self, include_wall: bool = False) -> str:
        return json.dumps(self.status(include_wall=include_wall),
                          sort_keys=True, indent=2)

    def final_report(self) -> Dict[str, Any]:
        """Deterministic end-of-run summary (the determinism-gate
        payload): per-home metrics rows, per-tenant counters and the
        cumulative latency quantiles — no wall-clock fields."""
        reports = self.reports(check_final=False)
        status = self.status(include_wall=False)
        return {
            "config": status["config"],
            "homes": {
                name: dict(report.row(),
                           serial_order=list(report.serial_order))
                for name, report in reports.items()},
            "tenants": status["tenants"],
            "latency": {"total": status["latency"]["total"]},
            "virtual_makespan": round(
                max(home.sim.now for home in self.homes.values()), 6),
        }

    def final_report_json(self) -> str:
        return json.dumps(self.final_report(), sort_keys=True,
                          indent=2) + "\n"
