"""A minimal stdlib HTTP surface for the served hub: ``GET /status``.

Serves :meth:`~repro.serve.hub.ServeHub.status_json` (wall-clock
gauges included) so an operator can watch saturation, queue depth and
rolling latency quantiles while ``repro serve`` runs.  Read-only, one
endpoint, no dependencies beyond ``http.server``; anything fancier
belongs behind a real proxy.
"""

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.errors import ServeError


class StatusServer:
    """Background ``/status`` endpoint over one :class:`ServeHub`.

    ``port=0`` binds an ephemeral port (tests); read :attr:`port`
    after :meth:`start`.
    """

    def __init__(self, hub, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.hub = hub
        self.host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise ServeError("status server is not running")
        return self._httpd.server_address[1]

    def start(self) -> None:
        if self._httpd is not None:
            raise ServeError("status server already started")
        hub = self.hub

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:        # noqa: N802 (stdlib name)
                path = self.path.split("?", 1)[0].rstrip("/") or "/status"
                if path != "/status":
                    self.send_error(404, "only /status is served")
                    return
                body = hub.status_json(include_wall=True).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass                          # keep the CLI output clean

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-status", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None
