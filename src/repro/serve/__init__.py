"""Service mode: a long-running front door over live SafeHome hubs.

Everything batch mode computes after the fact, service mode streams
while it happens: routines arrive from concurrent tenants, a pacing
driver bridges the virtual clock to wall time, admission control
bounds and fair-shares the queues, and SLO metrics (rolling latency
quantiles, saturation, abort rates) are readable at any moment over
``repro serve --json-status`` or ``GET /status``.  See
docs/serving.md.
"""

from repro.serve.admission import AdmissionControl, TenantState
from repro.serve.hub import ServeConfig, ServeHub, Ticket
from repro.serve.loadgen import (MENU_NAMES, SERVE_DEVICES, SERVE_MENU,
                                 ThreadedClient, build_serve_home,
                                 run_closed_loop)
from repro.serve.pacing import RealTimeDriver, parse_speedup
from repro.serve.slo import (QUANTILES, LatencyTracker, RollingWindow,
                             quantile_summary)
from repro.serve.statusd import StatusServer

__all__ = [
    "AdmissionControl",
    "TenantState",
    "ServeConfig",
    "ServeHub",
    "Ticket",
    "MENU_NAMES",
    "SERVE_DEVICES",
    "SERVE_MENU",
    "ThreadedClient",
    "build_serve_home",
    "run_closed_loop",
    "RealTimeDriver",
    "parse_speedup",
    "QUANTILES",
    "LatencyTracker",
    "RollingWindow",
    "quantile_summary",
    "StatusServer",
]
