"""Seeded load generation for the served hub.

Two closed-loop client shapes over one shared routine menu:

* :func:`run_closed_loop` — fully inline and deterministic.  Tenants
  are completion hooks: each finished ticket immediately enqueues that
  tenant's next routine, and the whole service runs virtual-paced in
  one thread.  This is the byte-determinism path (``repro serve`` with
  ``--speedup inf``, the determinism gate in CI).
* :class:`ThreadedClient` — one real thread per tenant submitting
  against a live, wall-paced hub, backing off on admission rejections.
  This is the soak-test path: it exercises the lock, the bounded
  queues and backpressure for real, and asserts safety properties
  rather than byte-equality.

Both draw routine choices from seeded per-tenant streams
(:func:`~repro.sim.random.derive_seed`), so a soak run's *offered*
sequence is reproducible even when its interleaving is not.
"""

import random
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import AdmissionRejected
from repro.hub.safehome import SafeHome
from repro.serve.hub import ServeHub, Ticket
from repro.sim.random import derive_seed

#: The served home's device set (a small cooling/lighting home,
#: shaped like the §1 motivating example).
SERVE_DEVICES: Tuple[Tuple[str, str], ...] = (
    ("window", "living-window"), ("window", "bed-window"),
    ("ac", "living-ac"), ("ac", "bed-ac"),
    ("fan", "ceiling-fan"), ("thermostat", "thermostat"),
    ("shade", "living-shade"), ("light", "living-light"),
    ("light", "bed-light"),
)

#: Named routines every served home registers in its bank.  Short
#: durations (seconds, not minutes) keep service latency in the same
#: order as queueing delay, which is the regime admission control and
#: the SLO windows exist for.
SERVE_MENU: Tuple[Dict, ...] = (
    {"routineName": "cool-living", "user": "menu", "commands": [
        {"device": "living-window", "action": "CLOSED", "durationSec": 0.5},
        {"device": "living-ac", "action": "ON", "durationSec": 2.0},
    ]},
    {"routineName": "cool-bedroom", "user": "menu", "commands": [
        {"device": "bed-window", "action": "CLOSED", "durationSec": 0.5},
        {"device": "bed-ac", "action": "ON", "durationSec": 1.5},
    ]},
    {"routineName": "ventilate", "user": "menu", "commands": [
        {"device": "living-ac", "action": "OFF", "durationSec": 0.3},
        {"device": "living-window", "action": "OPEN", "durationSec": 0.5},
        {"device": "ceiling-fan", "action": "ON", "durationSec": 1.0,
         "priority": "BEST_EFFORT"},
    ]},
    {"routineName": "lights-evening", "user": "menu", "commands": [
        {"device": "living-light", "action": "ON", "durationSec": 0.2},
        {"device": "bed-light", "action": "ON", "durationSec": 0.2,
         "priority": "BEST_EFFORT"},
        {"device": "living-shade", "action": "CLOSED", "durationSec": 0.8,
         "priority": "BEST_EFFORT"},
    ]},
    {"routineName": "night-setback", "user": "menu", "commands": [
        {"device": "thermostat", "action": 68, "durationSec": 0.3},
        {"device": "living-light", "action": "OFF", "durationSec": 0.2,
         "priority": "BEST_EFFORT"},
        {"device": "bed-light", "action": "OFF", "durationSec": 0.2,
         "priority": "BEST_EFFORT"},
        {"device": "ceiling-fan", "action": "OFF", "durationSec": 0.3,
         "priority": "BEST_EFFORT"},
    ]},
    {"routineName": "morning-warm", "user": "menu", "commands": [
        {"device": "thermostat", "action": 72, "durationSec": 0.3},
        {"device": "living-shade", "action": "OPEN", "durationSec": 0.8,
         "priority": "BEST_EFFORT"},
        {"device": "living-window", "action": "OPEN", "durationSec": 0.5},
    ]},
)

#: Menu names, in registration order (the choice space of the seeded
#: per-tenant pickers).
MENU_NAMES: Tuple[str, ...] = tuple(
    spec["routineName"] for spec in SERVE_MENU)


def build_serve_home(model: str = "ev", scheduler: str = "timeline",
                     execution: Optional[str] = None,
                     seed: int = 0) -> SafeHome:
    """A non-durable :class:`SafeHome` ready to be served.

    Creates the :data:`SERVE_DEVICES` set and registers every
    :data:`SERVE_MENU` routine in the bank, so clients submit by name.
    """
    home = SafeHome(visibility=model, scheduler=scheduler,
                    execution=execution, seed=seed)
    for type_name, name in SERVE_DEVICES:
        home.add_device(type_name, name)
    for spec in SERVE_MENU:
        home.register_routine_spec(spec)
    return home


def run_closed_loop(hub: ServeHub, per_tenant: int,
                    seed: int = 0) -> Dict[str, int]:
    """Drive ``per_tenant`` routines per registered tenant, inline.

    Deterministic closed loop: every tenant keeps exactly one routine
    outstanding; a completion hook submits the tenant's next pick the
    moment a ticket finishes.  Runs :meth:`ServeHub.serve_until_idle`
    to completion and returns ``{tenant: submitted}``.
    """
    tenants = [state.name for state in hub.admission.tenants()]
    pickers = {name: random.Random(derive_seed(seed, f"pick:{name}"))
               for name in tenants}
    remaining = {name: per_tenant for name in tenants}
    submitted = {name: 0 for name in tenants}

    def submit_next(tenant: str) -> None:
        if remaining[tenant] <= 0:
            return
        choice = pickers[tenant].choice(MENU_NAMES)
        try:
            hub.submit(tenant, choice)
        except AdmissionRejected:
            # Only possible when capacity < outstanding-per-tenant
            # (i.e. capacity 0-ish configs); the next completion
            # retries, so the loop still drains.
            return
        remaining[tenant] -= 1
        submitted[tenant] += 1

    def on_done(ticket: Ticket) -> None:
        submit_next(ticket.tenant)

    hub.on_ticket_done.append(on_done)
    try:
        for tenant in tenants:
            submit_next(tenant)
        hub.serve_until_idle()
    finally:
        hub.on_ticket_done.remove(on_done)
    return submitted


class ThreadedClient(threading.Thread):
    """One tenant's closed-loop client thread for soak/load tests.

    Submits ``count`` seeded menu picks, waiting for each ticket
    before the next submission; on :class:`AdmissionRejected` it
    sleeps the rejection's ``retry_after_s`` hint (capped) and
    retries.  Counters are read by the soak assertions after
    :meth:`join`.
    """

    def __init__(self, hub: ServeHub, tenant: str, count: int,
                 seed: int = 0, max_backoff_s: float = 0.05,
                 wait_timeout_s: float = 60.0) -> None:
        super().__init__(name=f"client-{tenant}", daemon=True)
        self.hub = hub
        self.tenant = tenant
        self.count = count
        self.rng = random.Random(derive_seed(seed, f"client:{tenant}"))
        self.max_backoff_s = max_backoff_s
        self.wait_timeout_s = wait_timeout_s
        self.tickets: List[Ticket] = []
        self.rejections = 0
        self.refused = 0        # hard refusals (hub draining/stopped)
        self.timeouts = 0
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            for _ in range(self.count):
                choice = self.rng.choice(MENU_NAMES)
                ticket = self._submit_with_retry(choice)
                if ticket is None:
                    return
                self.tickets.append(ticket)
                if not ticket.done.wait(self.wait_timeout_s):
                    self.timeouts += 1
                    return
        except BaseException as exc:       # surfaced by the soak test
            self.error = exc

    def _submit_with_retry(self, choice: str) -> Optional[Ticket]:
        while True:
            try:
                return self.hub.submit(self.tenant, choice)
            except AdmissionRejected as exc:
                if exc.retry_after_s is None:
                    self.refused += 1
                    return None
                self.rejections += 1
                time.sleep(min(exc.retry_after_s, self.max_backoff_s))
