"""Streaming SLO metrics for the served hub.

Latency quantiles come from the same mergeable
:class:`~repro.metrics.stats.FixedResolutionHistogram` the fleet's
streaming aggregator uses, arranged as a ring of virtual-time buckets:
a sample lands in the bucket covering its completion time, quantile
queries merge the buckets still inside the rolling window, and buckets
older than the window are evicted on insert.  Everything is keyed to
the *virtual* clock, so the numbers are deterministic for a seeded run
(wall-clock gauges live in a separate, explicitly non-deterministic
section of the status payload).
"""

from typing import Dict, Optional

from repro.errors import ServeError
from repro.metrics.stats import FixedResolutionHistogram

#: Quantiles surfaced by every latency summary, in output order.
QUANTILES = (50, 95, 99)


class RollingWindow:
    """Rolling latency quantiles over the last ``window_s`` of virtual
    time, bucketed into ``buckets`` mergeable sub-histograms."""

    def __init__(self, window_s: float = 60.0, buckets: int = 6,
                 resolution: float = 1e-3) -> None:
        if window_s <= 0:
            raise ServeError("window_s must be positive")
        if buckets < 1:
            raise ServeError("buckets must be >= 1")
        self.window_s = window_s
        self.buckets = buckets
        self.resolution = resolution
        self.span = window_s / buckets
        self._ring: Dict[int, FixedResolutionHistogram] = {}

    def _evict(self, index: int) -> None:
        floor = index - self.buckets + 1
        for stale in [k for k in self._ring if k < floor]:
            del self._ring[stale]

    def add(self, now_virtual: float, value: float) -> None:
        index = int(now_virtual / self.span)
        self._evict(index)
        bucket = self._ring.get(index)
        if bucket is None:
            bucket = self._ring[index] = \
                FixedResolutionHistogram(self.resolution)
        bucket.add(value)

    def merged(self, now_virtual: float) -> FixedResolutionHistogram:
        """One histogram covering the window ending at ``now_virtual``."""
        floor = int(now_virtual / self.span) - self.buckets + 1
        merged = FixedResolutionHistogram(self.resolution)
        for index in sorted(self._ring):
            if index >= floor:
                merged.merge(self._ring[index])
        return merged

    def snapshot(self, now_virtual: float) -> Dict[str, float]:
        summary = quantile_summary(self.merged(now_virtual))
        summary["window_s"] = self.window_s
        return summary


def quantile_summary(histogram: FixedResolutionHistogram
                     ) -> Dict[str, float]:
    """``{"n", "p50", "p95", "p99"}`` rounded for stable JSON."""
    out: Dict[str, float] = {"n": histogram.count}
    for q in QUANTILES:
        out[f"p{q}"] = round(histogram.quantile(q), 6)
    return out


class LatencyTracker:
    """Cumulative + rolling latency for one served hub."""

    def __init__(self, window_s: float = 60.0, buckets: int = 6,
                 resolution: float = 1e-3) -> None:
        self.total = FixedResolutionHistogram(resolution)
        self.window = RollingWindow(window_s, buckets, resolution)

    def add(self, now_virtual: float, latency: float) -> None:
        self.total.add(latency)
        self.window.add(now_virtual, latency)

    def snapshot(self, now_virtual: Optional[float] = None
                 ) -> Dict[str, Dict[str, float]]:
        out = {"total": quantile_summary(self.total)}
        if now_virtual is not None:
            out["window"] = self.window.snapshot(now_virtual)
        return out
