"""The fleet worker: simulate one home (or one chunk) end-to-end.

Workers rebuild workloads locally from compact specs — a row is plain
JSON-serializable data so results cross process boundaries cheaply.

Per-worker home reuse: a :class:`HomeFactory` keeps ONE
:class:`~repro.hub.safehome.SafeHome` alive and ``reset()``s it
between homes (re-seeding the simulator, clearing the registry and
re-keying the RNG streams in place) instead of rebuilding the whole
stack per home.  Reset-vs-fresh equivalence is property-tested over
all five visibility models in ``tests/test_fleet.py``.

When a spec carries a hub-crash schedule (``crashes > 0``) the worker
builds a *durable* hub, crashes it at seed-derived virtual times,
recovers it in the spec's mode and appends deterministic recovery
counters to the row (see docs/durability.md).  With ``crashes == 0``
the home is non-durable and the row is byte-identical to pre-durability
fleets.
"""

from typing import Any, Dict, List, Optional

from repro.fleet.sharding import HomeSpec, Shard
from repro.fleet.spool import SpoolWriter, home_wal_record
from repro.hub.safehome import SafeHome
from repro.sim.random import RandomStreams
from repro.workloads.fleet_mix import build_fleet_workload

#: Fallback crash horizon when a scenario carries no hint (virtual s).
_CRASH_HORIZON_S = 60.0


def _crash_times(spec: HomeSpec, horizon: float) -> List[float]:
    """Seed-derived, strictly increasing hub-crash times for one home."""
    rng = RandomStreams(seed=spec.seed).stream("hub-crashes")
    times = sorted(round(rng.uniform(0.0, horizon), 6)
                   for _ in range(spec.crashes))
    # Drop duplicates: a crash cannot be scheduled at or before the
    # recovered hub's current time.
    distinct: List[float] = []
    for t in times:
        if not distinct or t > distinct[-1]:
            distinct.append(t)
    return distinct


class HomeFactory:
    """Build-or-reuse one ``SafeHome`` per worker.

    The first task constructs the hub; every later task ``reset()``s
    it with the next home's seed.  The context fixes everything else
    (model, scheduler, execution, durability), so a reset hub is
    byte-equivalent to a fresh one — the equivalence property test in
    ``tests/test_fleet.py`` pins that across all visibility models.
    """

    def __init__(self, context) -> None:
        self.context = context
        self._home: Optional[SafeHome] = None
        self._spool: Optional[SpoolWriter] = None

    def acquire(self, seed: int) -> SafeHome:
        """A hub seeded for the next home (fresh once, then reused)."""
        context = self.context
        # A WAL spool directory forces durability even without a crash
        # schedule: the spooled WAL is the durable artifact itself.
        durability = bool(context.crashes) \
            or bool(getattr(context, "wal_dir", ""))
        home = self._home
        if home is None:
            home = self._home = SafeHome(
                visibility=context.model, scheduler=context.scheduler,
                execution=context.execution, seed=seed,
                durability=durability)
            return home
        return home.reset(seed=seed, durability=durability)

    def run_task(self, task) -> Dict[str, Any]:
        """Simulate one compact ``(home_id, scenario, seed)`` task."""
        home_id, scenario, seed = task
        context = self.context
        spec = HomeSpec(
            home_id=home_id, scenario=scenario, seed=seed,
            model=context.model, scheduler=context.scheduler,
            execution=context.execution,
            check_final=context.check_final,
            exhaustive_limit=context.exhaustive_limit,
            max_events=context.max_events,
            crashes=context.crashes, recovery=context.recovery)
        control = getattr(context, "control", None)
        if control is not None:
            directive = control.directive_for(home_id)
            if directive is not None:
                # Controlled homes (supervision / live migration /
                # cohort overrides) run outside the reuse path: the
                # runner owns the whole hub lifecycle.
                from repro.fleet.control.runner import run_controlled_home

                return run_controlled_home(spec, directive,
                                           control.supervision)
        home = self.acquire(seed)
        row = run_home(spec, home=home)
        wal_dir = getattr(context, "wal_dir", "")
        if wal_dir:
            if self._spool is None:
                self._spool = SpoolWriter(wal_dir)
            self._spool.write(home_wal_record(home_id, scenario, seed,
                                              home))
        return row


def home_row(spec: HomeSpec, result, report) -> Dict[str, Any]:
    """One home's metrics row from its run result + §7.1 report.

    Shared by :func:`run_home` and the control plane's supervised
    runner so every execution path emits identical row shapes.
    """
    return {
        "home_id": spec.home_id,
        "scenario": spec.scenario,
        "model": report.model_name,
        "seed": spec.seed,
        "routines": report.routines,
        "committed": report.committed,
        "aborted": report.aborted,
        "abort_rate": report.abort_rate,
        "latencies": result.latencies(),
        "lat_p50": report.latency["p50"],
        "lat_p95": report.latency["p95"],
        "temporary_incongruence": report.temporary_incongruence,
        "final_congruent": report.final_congruent,
        "makespan": result.makespan,
    }


def run_home(spec: HomeSpec,
             home: Optional[SafeHome] = None) -> Dict[str, Any]:
    """Simulate one home from its spec; return its metrics row.

    The home is a full :class:`~repro.hub.safehome.SafeHome` hub — the
    same facade users program against — loaded with the spec's scenario
    workload and analyzed with the §7.1 metrics.  ``latencies`` carries
    the raw per-routine samples so the fleet aggregate can compute true
    cross-home percentiles instead of averaging per-home percentiles.
    ``home`` lets a :class:`HomeFactory` supply a reset, pre-seeded hub
    instead of constructing one.
    """
    workload = build_fleet_workload(spec.scenario, seed=spec.seed)
    if home is None:
        home = SafeHome(visibility=spec.model, scheduler=spec.scheduler,
                        execution=spec.execution, seed=spec.seed,
                        durability=bool(spec.crashes))
    home.load_workload(workload)
    recoveries = []
    if spec.crashes:
        horizon = workload.horizon_hint or _CRASH_HORIZON_S
        for crash_time in _crash_times(spec, horizon):
            home.crash(at=crash_time)
            home.run(max_events=spec.max_events)
            if not home.crashed:
                # The home drained before this crash time; later (larger)
                # times cannot fire either.
                break
            recoveries.append(home.recover(mode=spec.recovery))
    result = home.run(max_events=spec.max_events)
    report = home.report(check_final=spec.check_final,
                         exhaustive_limit=spec.exhaustive_limit)
    row = home_row(spec, result, report)
    if spec.crashes:
        # Deterministic recovery counters only (wall time excluded).
        row["hub_crashes"] = len(recoveries)
        row["hub_replayed_events"] = sum(r.replayed_events
                                         for r in recoveries)
        row["hub_recovery_aborted"] = sum(len(r.aborted)
                                          for r in recoveries)
    return row


def run_shard(shard: Shard) -> List[Dict[str, Any]]:
    """Simulate every home in a shard, in home-id order."""
    return [run_home(spec) for spec in shard.specs]
