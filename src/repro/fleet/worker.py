"""The fleet worker: simulate one home (or one shard) end-to-end.

Module-level functions only — process pools pickle ``run_shard`` plus a
tuple of :class:`~repro.fleet.sharding.HomeSpec` dataclasses, and every
worker rebuilds its workloads locally from the spec.  A row is plain
JSON-serializable data so results cross process boundaries cheaply.
"""

from typing import Any, Dict, List

from repro.fleet.sharding import HomeSpec, Shard
from repro.hub.safehome import SafeHome
from repro.workloads.fleet_mix import build_fleet_workload


def run_home(spec: HomeSpec) -> Dict[str, Any]:
    """Simulate one home from its spec; return its metrics row.

    The home is a full :class:`~repro.hub.safehome.SafeHome` hub — the
    same facade users program against — loaded with the spec's scenario
    workload and analyzed with the §7.1 metrics.  ``latencies`` carries
    the raw per-routine samples so the fleet aggregate can compute true
    cross-home percentiles instead of averaging per-home percentiles.
    """
    workload = build_fleet_workload(spec.scenario, seed=spec.seed)
    home = SafeHome(visibility=spec.model, scheduler=spec.scheduler,
                    execution=spec.execution, seed=spec.seed)
    home.load_workload(workload)
    result = home.run(max_events=spec.max_events)
    report = home.report(check_final=spec.check_final,
                         exhaustive_limit=spec.exhaustive_limit)
    return {
        "home_id": spec.home_id,
        "scenario": spec.scenario,
        "model": report.model_name,
        "seed": spec.seed,
        "routines": report.routines,
        "committed": report.committed,
        "aborted": report.aborted,
        "abort_rate": report.abort_rate,
        "latencies": result.latencies(),
        "lat_p50": report.latency["p50"],
        "lat_p95": report.latency["p95"],
        "temporary_incongruence": report.temporary_incongruence,
        "final_congruent": report.final_congruent,
        "makespan": result.makespan,
    }


def run_shard(shard: Shard) -> List[Dict[str, Any]]:
    """Simulate every home in a shard, in home-id order."""
    return [run_home(spec) for spec in shard.specs]
