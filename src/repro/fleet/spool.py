"""Worker-local WAL spooling for durable fleets.

Before this module, a durable fleet's write-ahead logs lived and died
inside the workers: rows carried recovery *counters* back, but the WAL
itself — the complete, replayable recipe for each home — was dropped,
and any design that persisted it would have funneled every record
through the parent.  Spooling makes the workers the durability plane:

* each worker appends its homes' WALs (input + observation records,
  plus checkpoint digests) to its **own** segment file in ``wal_dir``
  — one compact JSON line per home, no parent involvement while the
  fleet runs;
* after the pool drains, the parent performs one O(homes) pass:
  :func:`merge_spool` concatenates the segments into a single
  ``fleet-wal.jsonl`` ordered by home id and writes a byte-offset
  index (``fleet-wal-index.json``) so any home's log is one seek away;
* replay determinism is preserved end-to-end: a home rebuilt from its
  spooled record (:func:`replay_spooled_home`) re-applies the logged
  inputs through the same verified-replay path hub recovery uses and
  reaches a byte-identical report — crashes, recoveries and all.

Spooled WAL records hold virtual times and seeded decisions only, so
segment contents are a pure function of the fleet config; the merged
file is byte-deterministic across backends, worker counts and chunk
layouts (segment *names* differ per run, the merged artifact does not).
"""

import json
import os
import threading
from typing import Any, Dict, List, Optional

from repro.errors import CorruptionError

#: Merged artifact names inside ``wal_dir``.
MERGED_NAME = "fleet-wal.jsonl"
INDEX_NAME = "fleet-wal-index.json"
_SEGMENT_PREFIX = "spool-"
_SEGMENT_SUFFIX = ".seg"

INDEX_SCHEMA = "repro-fleet-wal-index/1"


def home_wal_record(home_id: int, scenario: str, seed: int,
                    home) -> Dict[str, Any]:
    """One home's spool line: identity + full WAL + checkpoint digests.

    ``home`` is a durable :class:`~repro.hub.safehome.SafeHome` that
    has finished running; its WAL inputs are a complete replay recipe
    and the checkpoint digests are the verification anchors.
    """
    manager = home.durability
    if manager is None:
        raise ValueError(f"home {home_id} is not durable; nothing to spool")
    return {
        "home_id": home_id,
        "scenario": scenario,
        "seed": seed,
        "wal": [record.to_dict() for record in manager.wal.records],
        "compacted_observations": manager.wal.compacted_observations,
        "checkpoints": [checkpoint.to_dict(include_state=False)
                        for checkpoint in manager.checkpoints],
    }


class SpoolWriter:
    """One worker's append-only segment file.

    The file name is unique per (process, thread) so serial, thread and
    process pools all spool without coordination; the handle stays open
    across homes (flushed per record) so durability never re-opens the
    file on the per-home path.
    """

    def __init__(self, wal_dir: str) -> None:
        self.wal_dir = wal_dir
        self._handle = None

    def _open(self):
        if self._handle is None:
            name = (f"{_SEGMENT_PREFIX}{os.getpid()}-"
                    f"{threading.get_ident()}{_SEGMENT_SUFFIX}")
            self._handle = open(os.path.join(self.wal_dir, name),
                                "a", encoding="utf-8")
        return self._handle

    def write(self, record: Dict[str, Any]) -> None:
        handle = self._open()
        handle.write(json.dumps(record, sort_keys=True,
                                separators=(",", ":")) + "\n")
        handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def merge_spool(wal_dir: str,
                expected_homes: Optional[int] = None) -> Dict[str, Any]:
    """Concatenate every worker segment into the indexed merged log.

    Reads all ``spool-*.seg`` files, orders records by home id, writes
    ``fleet-wal.jsonl`` + ``fleet-wal-index.json`` and removes the
    segments.  Returns the summary the index also records.
    """
    records: List[Dict[str, Any]] = []
    segments = sorted(
        entry for entry in os.listdir(wal_dir)
        if entry.startswith(_SEGMENT_PREFIX)
        and entry.endswith(_SEGMENT_SUFFIX))
    for segment in segments:
        path = os.path.join(wal_dir, segment)
        with open(path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    # A worker died mid-write (truncated line) or the
                    # segment rotted: surface the typed error with the
                    # damage location, never a raw decode traceback.
                    raise CorruptionError(
                        f"undecodable spool line ({exc.msg})",
                        path=path, line=number) from exc
    records.sort(key=lambda record: record["home_id"])
    seen = [record["home_id"] for record in records]
    if len(set(seen)) != len(seen):
        raise ValueError(f"duplicate home ids in spooled WAL: {seen}")
    if expected_homes is not None and len(records) != expected_homes:
        raise ValueError(
            f"spooled WALs cover {len(records)} homes, fleet ran "
            f"{expected_homes}")

    index: Dict[str, Dict[str, int]] = {}
    offset = 0
    wal_records = 0
    merged_path = os.path.join(wal_dir, MERGED_NAME)
    with open(merged_path, "w", encoding="utf-8") as merged:
        for record in records:
            line = json.dumps(record, sort_keys=True,
                              separators=(",", ":")) + "\n"
            encoded = len(line.encode("utf-8"))
            index[str(record["home_id"])] = {"offset": offset,
                                             "length": encoded}
            merged.write(line)
            offset += encoded
            wal_records += len(record["wal"])
    summary = {"homes": len(records), "wal_records": wal_records}
    with open(os.path.join(wal_dir, INDEX_NAME), "w",
              encoding="utf-8") as handle:
        json.dump({"schema": INDEX_SCHEMA, **summary, "index": index},
                  handle, indent=2, sort_keys=True)
        handle.write("\n")
    for segment in segments:
        os.remove(os.path.join(wal_dir, segment))
    return summary


def _line_number_at(path: str, offset: int) -> int:
    """1-based line number of the byte at ``offset`` (error paths only:
    the hot path stays a single seek, damage reports pay one scan)."""
    with open(path, "rb") as handle:
        return handle.read(offset).count(b"\n") + 1


def load_spooled_home(wal_dir: str, home_id: int) -> Dict[str, Any]:
    """One home's spooled record, via the index (single seek + read).

    The indexed slice is *verified* against the merged log before it
    is trusted: out-of-bounds offsets, a slice that is not exactly one
    newline-terminated line, an undecodable payload or a home-id
    mismatch all mean the index is stale (the merged log was rewritten
    under it) or the log rotted — every case raises the typed
    :class:`~repro.errors.CorruptionError`, never a silent misread.
    """
    with open(os.path.join(wal_dir, INDEX_NAME), "r",
              encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != INDEX_SCHEMA:
        raise ValueError(f"unexpected index schema "
                         f"{payload.get('schema')!r}")
    entry = payload["index"].get(str(home_id))
    if entry is None:
        raise KeyError(f"home {home_id} is not in the spooled index")
    merged_path = os.path.join(wal_dir, MERGED_NAME)
    size = os.path.getsize(merged_path)
    if entry["offset"] + entry["length"] > size:
        raise CorruptionError(
            f"stale index: home {home_id} slice "
            f"[{entry['offset']}, {entry['offset'] + entry['length']}) "
            f"overruns the {size}-byte merged log",
            path=merged_path, offset=entry["offset"])
    with open(merged_path, "rb") as handle:
        handle.seek(entry["offset"])
        line = handle.read(entry["length"])
    if not line.endswith(b"\n") or b"\n" in line[:-1]:
        raise CorruptionError(
            f"stale index: home {home_id} slice is not one whole line "
            f"of the merged log",
            path=merged_path, offset=entry["offset"],
            line=_line_number_at(merged_path, entry["offset"]))
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptionError(
            f"undecodable merged WAL line for home {home_id}",
            path=merged_path, offset=entry["offset"],
            line=_line_number_at(merged_path, entry["offset"])) from exc
    if record.get("home_id") != home_id:
        raise CorruptionError(
            f"stale index: slice for home {home_id} holds home "
            f"{record.get('home_id')}",
            path=merged_path, offset=entry["offset"],
            line=_line_number_at(merged_path, entry["offset"]))
    return record


def replay_spooled_home(record: Dict[str, Any]):
    """Rebuild one home from its spooled WAL, by verified replay.

    Re-applies the durable input records — including any mid-run
    crash/recovery sequences — through the same replay path hub
    recovery uses, so the returned :class:`SafeHome` has run to the
    same final state the fleet worker reported (the spooled-WAL
    byte-identity test in ``tests/test_fleet_transport.py`` pins the
    whole row).
    """
    from repro.hub.durability.recovery import DurabilityConfig
    from repro.hub.durability.wal import WalRecord
    from repro.hub.safehome import SafeHome

    records = [WalRecord.from_dict(entry) for entry in record["wal"]]
    if not records or records[0].type != "home-created":
        raise ValueError("spooled WAL does not start with home-created")
    created = records[0].payload
    home = SafeHome(
        visibility=created["visibility"],
        scheduler=created["scheduler"],
        execution=created["execution"],
        seed=created["seed"],
        detector_ping_period_s=created["detector_ping_period_s"],
        durability=DurabilityConfig(
            checkpoint_every=created["checkpoint_every"]))
    for entry in records[1:]:
        if entry.is_input:
            home._replay_input(entry)
    return home
