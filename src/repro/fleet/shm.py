"""Shared-memory result transport for fleet runs.

The streaming-aggregation path (PR 5) pre-reduces each chunk into a
:class:`~repro.metrics.fleet.FleetAccumulator`; by default that partial
crosses the process boundary *pickled* — a dict graph the parent must
unpickle per chunk.  At million-home scale the per-item serialization,
not the merge, is the parent's bottleneck (the same argument *GPU
System Calls* makes for batched crossings).  This module replaces the
pickle hop with flat bytes in preallocated
``multiprocessing.shared_memory`` slabs:

* the parent creates **one slab per worker** before dispatch and ships
  only the slab *names* through the one-time
  :class:`~repro.fleet.pool.WorkerContext` broadcast;
* chunk ``i`` owns the fixed region ``i // slabs`` of slab
  ``i % slabs`` (:func:`region_for_chunk`) — regions are disjoint by
  construction, so workers write without any cross-process
  coordination;
* a worker struct-packs its chunk's accumulator
  (:func:`pack_accumulator`) into its region and returns a tiny
  ``(slab, offset, length)`` reference; the parent unpacks O(workers)
  flat buffers in chunk order (:func:`unpack_accumulator`);
* every packed buffer starts with a fixed header — magic, format
  version and a byte-order mark — so a reader rejects slabs written by
  a different layout or endianness instead of mis-parsing them;
* a partial too large for its region (or a platform without
  ``shared_memory``) falls back to the pickled path per chunk — the
  transport degrades, never truncates.

The parent owns every segment: slabs are created before the pool runs
and unlinked in a ``finally`` whether the run completes, raises or a
worker dies, so no ``/dev/shm`` entries outlive the engine (asserted
in ``tests/test_fleet_transport.py``).
"""

import os
import secrets
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.metrics.fleet import FleetAccumulator

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds only
    _shared_memory = None

#: Transport modes for streaming partials (see repro.fleet.pool).
TRANSPORTS = ("pickle", "shm")

#: Fixed per-chunk region: header + scalars + ~4000 histogram bins.
DEFAULT_REGION_BYTES = 64 * 1024

#: Header layout: magic, format version, byte-order mark.  Everything
#: is packed in *native* order; the BOM field is how a reader detects a
#: slab written by an other-endian machine (the mark reads back
#: byte-swapped) and rejects it.
MAGIC = b"RFLT"
VERSION = 1
BYTE_ORDER_MARK = 0x1BED
_HEADER = struct.Struct("=4sHH")
#: Scalar block: 6 int64 counters, 5 float64 sums/maxima, the histogram
#: resolution, the histogram sample count and the bin-pair count.
_SCALARS = struct.Struct("=6q6d2q")
#: One histogram bin: (bin_index, count), both int64.
_BIN = struct.Struct("=2q")


class TransportError(ValueError):
    """A packed buffer this reader must not interpret (bad magic,
    unknown version, foreign endianness, corrupt layout)."""


def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` exists here."""
    return _shared_memory is not None


def packed_size(accumulator: FleetAccumulator) -> int:
    """Exact byte length :func:`pack_accumulator` will produce."""
    return (_HEADER.size + _SCALARS.size
            + _BIN.size * len(accumulator.histogram.bins))


def pack_accumulator(accumulator: FleetAccumulator) -> bytes:
    """Struct-pack one accumulator partial into flat bytes."""
    state = accumulator.state()
    items = state["hist_items"]
    parts = [
        _HEADER.pack(MAGIC, VERSION, BYTE_ORDER_MARK),
        _SCALARS.pack(*state["ints"],
                      *state["floats"], state["resolution"],
                      state["hist_count"], len(items)),
    ]
    parts.extend(_BIN.pack(bin_index, count) for bin_index, count in items)
    return b"".join(parts)


def unpack_accumulator(buffer: bytes) -> FleetAccumulator:
    """Inverse of :func:`pack_accumulator`; raises
    :class:`TransportError` on any header or layout mismatch."""
    if len(buffer) < _HEADER.size + _SCALARS.size:
        raise TransportError(
            f"buffer of {len(buffer)} bytes is shorter than the "
            f"fixed header + scalar block")
    magic, version, bom = _HEADER.unpack_from(buffer, 0)
    if magic != MAGIC:
        raise TransportError(f"bad magic {magic!r}; expected {MAGIC!r}")
    if bom != BYTE_ORDER_MARK:
        raise TransportError(
            f"byte-order mark reads 0x{bom:04X}, expected "
            f"0x{BYTE_ORDER_MARK:04X} — slab written by a machine of "
            f"different endianness")
    if version != VERSION:
        raise TransportError(
            f"unsupported transport format version {version}; this "
            f"reader understands version {VERSION}")
    scalars = _SCALARS.unpack_from(buffer, _HEADER.size)
    ints, floats = scalars[:6], scalars[6:11]
    resolution, hist_count, n_bins = (scalars[11], scalars[12],
                                      scalars[13])
    expected = _HEADER.size + _SCALARS.size + _BIN.size * n_bins
    if len(buffer) != expected:
        raise TransportError(
            f"buffer holds {len(buffer)} bytes, layout declares "
            f"{expected} ({n_bins} bins)")
    items: List[Tuple[int, int]] = [
        _BIN.unpack_from(buffer, _HEADER.size + _SCALARS.size
                         + _BIN.size * index)
        for index in range(n_bins)]
    try:
        return FleetAccumulator.from_state({
            "ints": ints, "floats": floats, "resolution": resolution,
            "hist_count": hist_count, "hist_items": items})
    except ValueError as error:
        raise TransportError(str(error)) from error


# -- slab layout ---------------------------------------------------------------


def region_for_chunk(chunk_id: int, slabs: int,
                     region_bytes: int) -> Tuple[int, int]:
    """The ``(slab_index, byte_offset)`` owned by one chunk.

    Chunks round-robin across slabs and stack regions within one, so
    any chunk↔worker assignment the pool makes writes disjoint bytes.
    """
    if slabs <= 0 or region_bytes <= 0:
        raise ValueError("slabs and region_bytes must be positive")
    return chunk_id % slabs, (chunk_id // slabs) * region_bytes


class SlabSet:
    """Parent-side owner of the per-worker shared-memory segments.

    Created before the pool dispatches and unlinked in the engine's
    ``finally`` — segment lifetime is bounded by the run, not by worker
    health.
    """

    def __init__(self, slabs: int, chunks: int,
                 region_bytes: int = DEFAULT_REGION_BYTES) -> None:
        if not shm_available():
            raise TransportError(
                "multiprocessing.shared_memory is unavailable on this "
                "platform; use transport='pickle'")
        if slabs <= 0 or chunks <= 0:
            raise ValueError("slabs and chunks must be positive")
        self.region_bytes = region_bytes
        regions_per_slab = -(-chunks // slabs)
        size = max(1, regions_per_slab) * region_bytes
        self._segments = []
        token = secrets.token_hex(4)
        try:
            for index in range(slabs):
                name = f"repro-fleet-{os.getpid()}-{token}-{index}"
                self._segments.append(_shared_memory.SharedMemory(
                    name=name, create=True, size=size))
        except BaseException:
            self.close(unlink=True)
            raise

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(segment.name for segment in self._segments)

    def read(self, slab_index: int, offset: int, length: int) -> bytes:
        segment = self._segments[slab_index]
        return bytes(segment.buf[offset:offset + length])

    def close(self, unlink: bool = True) -> None:
        """Release every segment (idempotent); ``unlink`` removes the
        backing ``/dev/shm`` entries so nothing leaks past the run."""
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            if unlink:
                try:
                    segment.unlink()
                except (OSError, FileNotFoundError):  # pragma: no cover
                    pass


# -- worker-side attach cache --------------------------------------------------

_ATTACHED: Dict[str, Any] = {}


def attach_slab(name: str):
    """Attach (once per process) to a parent-created slab by name.

    The attachment is deliberately kept OUT of the process's
    ``resource_tracker``: the *parent* owns unlinking, and a tracked
    attachment would make worker teardown race the parent's cleanup
    (double unlinks, "leaked shared_memory" noise).  Python 3.13 has
    ``track=False`` for exactly this; on older interpreters the
    tracker's register call is suppressed around the attach.
    """
    segment = _ATTACHED.get(name)
    if segment is None:
        try:
            segment = _shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13
            from multiprocessing import resource_tracker

            original = resource_tracker.register

            def _skip_shm(resource_name, rtype):
                if rtype != "shared_memory":  # pragma: no cover
                    original(resource_name, rtype)

            resource_tracker.register = _skip_shm
            try:
                segment = _shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original
        _ATTACHED[name] = segment
    return segment


def write_region(name: str, offset: int, payload: bytes) -> int:
    """Write one packed partial into this worker's region; returns the
    byte length written."""
    segment = attach_slab(name)
    segment.buf[offset:offset + len(payload)] = payload
    return len(payload)


def detach_all() -> None:
    """Close every cached attachment (worker shutdown hook)."""
    for segment in list(_ATTACHED.values()):
        try:
            segment.close()
        except OSError:  # pragma: no cover
            pass
    _ATTACHED.clear()


def pack_partial_to_region(accumulator: FleetAccumulator,
                           chunk_id: int,
                           slab_names: Sequence[str],
                           region_bytes: int
                           ) -> Optional[Tuple[int, int, int]]:
    """Pack one partial into its chunk's region.

    Returns the ``(slab_index, offset, length)`` reference the worker
    ships back, or ``None`` when the packed form does not fit the fixed
    region — the caller then falls back to the pickled partial (the
    transport degrades per chunk rather than truncating data).
    """
    payload = pack_accumulator(accumulator)
    if len(payload) > region_bytes:
        return None
    slab_index, offset = region_for_chunk(chunk_id, len(slab_names),
                                          region_bytes)
    write_region(slab_names[slab_index], offset, payload)
    return slab_index, offset, len(payload)
