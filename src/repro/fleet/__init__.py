"""Fleet-scale multi-home engine.

The paper evaluates one SafeHome hub at a time; a production deployment
runs millions of independent hubs.  This package is the architectural
seam for that scale-out: it shards N :class:`~repro.hub.safehome.SafeHome`
instances across a pluggable worker pool (serial / thread / process),
splits one master seed into per-home seeds deterministically
(:mod:`repro.fleet.seeding`), and batch-aggregates cross-home metrics
(:func:`repro.metrics.fleet.aggregate_homes`).

Quick start::

    from repro.fleet import FleetConfig, FleetEngine

    result = FleetEngine(FleetConfig(homes=100, seed=42)).run()
    print(result.to_json())

Determinism contract: a fleet run is a pure function of its
:class:`FleetConfig` — backend choice, worker count and sharding never
change a single byte of the aggregate JSON.
"""

from repro.fleet.engine import (BACKENDS, FleetConfig, FleetEngine,
                                FleetResult, register_backend, run_fleet)
from repro.fleet.seeding import SeedSplitter, home_seed
from repro.fleet.sharding import HomeSpec, Shard, plan_shards
from repro.fleet.worker import run_home, run_shard

__all__ = [
    "FleetConfig",
    "FleetEngine",
    "FleetResult",
    "run_fleet",
    "BACKENDS",
    "register_backend",
    "SeedSplitter",
    "home_seed",
    "HomeSpec",
    "Shard",
    "plan_shards",
    "run_home",
    "run_shard",
]
