"""Fleet-scale multi-home engine.

The paper evaluates one SafeHome hub at a time; a production deployment
runs millions of independent hubs.  This package is the architectural
seam for that scale-out: it streams N
:class:`~repro.hub.safehome.SafeHome` simulations through a persistent
worker pool (serial / thread / process — :mod:`repro.fleet.pool`),
reuses one hub per worker via :class:`~repro.fleet.worker.HomeFactory`
resets, splits one master seed into per-home seeds deterministically
(:mod:`repro.fleet.seeding`), and aggregates cross-home metrics either
exactly or through mergeable per-chunk accumulators
(:mod:`repro.metrics.fleet`).

Quick start::

    from repro.fleet import FleetConfig, FleetEngine

    result = FleetEngine(FleetConfig(homes=100, seed=42)).run()
    print(result.to_json())

Determinism contract: a fleet run is a pure function of its
:class:`FleetConfig` — backend choice, worker count and chunk size
never change a single byte of the default (exact-aggregation) JSON.
"""

from repro.fleet.affinity import PIN_MODES
from repro.fleet.engine import (BACKENDS, FleetConfig, FleetEngine,
                                FleetResult, register_backend, run_fleet)
from repro.fleet.pool import (POOLS, HomeTask, WorkerContext, WorkerPool,
                              default_chunk_size, plan_chunks,
                              register_pool)
from repro.fleet.seeding import SeedSplitter, home_seed
from repro.fleet.sharding import HomeSpec, Shard, plan_shards
from repro.fleet.shm import (TRANSPORTS, SlabSet, TransportError,
                             pack_accumulator, shm_available,
                             unpack_accumulator)
from repro.fleet.spool import (load_spooled_home, merge_spool,
                               replay_spooled_home)
from repro.fleet.worker import HomeFactory, run_home, run_shard

# The control plane imports the engine, so it must come last here.
from repro.fleet.control import (CanarySpec, Cohort, ControlLoop,
                                 ControlProgram, ControlResult, FleetPlan,
                                 HomeDirective, MigrationStep, OpsLog,
                                 SupervisionPolicy, apply_plan,
                                 assign_cohorts, load_plan)

__all__ = [
    "FleetConfig",
    "FleetEngine",
    "FleetResult",
    "run_fleet",
    "BACKENDS",
    "register_backend",
    "POOLS",
    "WorkerPool",
    "WorkerContext",
    "HomeTask",
    "HomeFactory",
    "default_chunk_size",
    "plan_chunks",
    "register_pool",
    "SeedSplitter",
    "home_seed",
    "HomeSpec",
    "Shard",
    "plan_shards",
    "run_home",
    "run_shard",
    "TRANSPORTS",
    "TransportError",
    "SlabSet",
    "pack_accumulator",
    "unpack_accumulator",
    "shm_available",
    "PIN_MODES",
    "merge_spool",
    "load_spooled_home",
    "replay_spooled_home",
    "FleetPlan",
    "Cohort",
    "MigrationStep",
    "CanarySpec",
    "SupervisionPolicy",
    "HomeDirective",
    "ControlProgram",
    "ControlLoop",
    "ControlResult",
    "OpsLog",
    "assign_cohorts",
    "load_plan",
    "apply_plan",
]
