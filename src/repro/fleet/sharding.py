"""Shard planning: which worker simulates which homes.

A :class:`HomeSpec` is the complete, picklable recipe for one home —
scenario name, derived seed, visibility model, scheduler — so process
workers rebuild the workload locally instead of shipping simulator
objects across the pool.  Shards are dealt round-robin: heterogeneous
mixes (a morning home costs ~20x a cooling home) stay balanced across
workers without a cost model.
"""

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, List, Mapping, Sequence, Tuple

# Per-home simulation defaults, shared verbatim by FleetConfig so a
# bare HomeSpec and a fleet-derived one can never drift apart.
DEFAULT_MODEL = "ev"
DEFAULT_SCHEDULER = "timeline"
DEFAULT_EXECUTION = "serial"
DEFAULT_CHECK_FINAL = True
DEFAULT_EXHAUSTIVE_LIMIT = 7
DEFAULT_MAX_EVENTS = 5_000_000
DEFAULT_CRASHES = 0             # hub crashes per home (0 = no chaos)
DEFAULT_RECOVERY = "replay"     # hub recovery mode when crashes > 0


@dataclass(frozen=True)
class HomeSpec:
    """Everything needed to simulate one home, anywhere."""

    home_id: int
    scenario: str
    seed: int
    model: str = DEFAULT_MODEL
    scheduler: str = DEFAULT_SCHEDULER
    execution: str = DEFAULT_EXECUTION
    check_final: bool = DEFAULT_CHECK_FINAL
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT
    max_events: int = DEFAULT_MAX_EVENTS
    # Hub-crash chaos: crash the home's hub this many times at
    # seed-derived virtual times and recover in `recovery` mode (see
    # docs/durability.md).  0 keeps the home non-durable and the row
    # byte-identical to pre-durability fleets.
    crashes: int = DEFAULT_CRASHES
    recovery: str = DEFAULT_RECOVERY

    @classmethod
    def from_plan(cls, data: Mapping[str, Any]) -> "HomeSpec":
        """Build a spec from its plan/JSON dict form.

        The inverse of :meth:`to_plan`; unknown keys raise
        :class:`~repro.errors.PlanError` so serialized specs fail
        loudly when the schema drifts.
        """
        from repro.errors import PlanError

        valid = {f.name for f in fields(cls)}
        unknown = set(data) - valid
        if unknown:
            raise PlanError(f"unknown home spec keys {sorted(unknown)}; "
                            f"valid keys: {sorted(valid)}")
        try:
            return cls(**dict(data))
        except TypeError as exc:
            raise PlanError(f"bad home spec: {exc}") from None

    def to_plan(self) -> Dict[str, Any]:
        """This spec as a JSON-ready dict (round-trips via
        :meth:`from_plan`)."""
        return asdict(self)


@dataclass(frozen=True)
class Shard:
    """One worker's slice of the fleet."""

    shard_id: int
    specs: Tuple[HomeSpec, ...]

    def __len__(self) -> int:
        return len(self.specs)


def plan_shards(specs: Sequence[HomeSpec], shard_count: int) -> List[Shard]:
    """Deal ``specs`` round-robin into ``shard_count`` non-empty shards.

    Results are independent of execution: home ``i`` lands in shard
    ``i % shard_count`` regardless of backend or worker speed, and
    callers re-sort rows by home id afterwards, so sharding never
    affects output bytes.
    """
    if shard_count <= 0:
        raise ValueError(f"shard_count must be positive, got {shard_count}")
    shard_count = min(shard_count, len(specs)) or 1
    return [Shard(shard_id=index, specs=tuple(specs[index::shard_count]))
            for index in range(shard_count)]
