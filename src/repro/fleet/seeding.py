"""Deterministic seed splitting for fleet runs.

One master seed must fan out into thousands of per-home seeds that are

* **pure** — a function of (master, home_id) only, so any worker on any
  backend derives the same seed for the same home;
* **uncorrelated** — adjacent home ids get statistically independent
  randomness (SplitMix64 mixing via :func:`repro.sim.random.derive_seed`,
  not linear offsets);
* **stable** — independent of PYTHONHASHSEED, process boundaries,
  sharding layout and worker count.

This sits on top of :mod:`repro.sim.random`: each home's seed feeds a
:class:`~repro.sim.random.RandomStreams` family exactly as a single-home
run would use it, so a fleet of one home reproduces a standalone run
bit-for-bit.
"""

from dataclasses import dataclass

from repro.sim.random import RandomStreams, derive_seed


def home_seed(master_seed: int, home_id: int) -> int:
    """The per-home seed for ``home_id`` under ``master_seed``."""
    return derive_seed(master_seed, f"fleet-home-{home_id}")


@dataclass(frozen=True)
class SeedSplitter:
    """Splits one master seed into per-home seeds and stream families."""

    master_seed: int

    def for_home(self, home_id: int) -> int:
        return home_seed(self.master_seed, home_id)

    def streams_for_home(self, home_id: int) -> RandomStreams:
        """A ready-made stream family for one home's simulation."""
        return RandomStreams(seed=self.for_home(home_id))
