"""Persistent worker pools and chunked streaming fleet execution.

PR 1's fleet layer dealt one shard per worker and rebuilt every
``SafeHome`` from scratch; this module is the streaming replacement:

* a :class:`WorkerPool` keeps its workers alive across *chunks* — the
  unit of dispatch is a tuple of compact :data:`HomeTask` triples
  ``(home_id, scenario, seed)``, not a pickled dataclass graph;
* everything shared by every home (model, scheduler, execution
  strategy, crash schedule, aggregation mode) is broadcast **once** per
  worker as a :class:`WorkerContext` — for process pools via the
  executor initializer, so per-chunk IPC stays a few dozen bytes per
  home;
* each worker owns a :class:`~repro.fleet.worker.HomeFactory` that
  resets and re-seeds one ``SafeHome`` between homes instead of
  rebuilding the stack per home;
* in streaming-aggregation mode a worker folds its chunk into a
  :class:`~repro.metrics.fleet.FleetAccumulator` before replying, so
  the parent merges O(workers) partials instead of O(homes) raw
  latency lists.

Chunk sizing: the default (``chunk=0``) is ``ceil(homes / workers)`` —
one chunk per worker, amortizing IPC exactly like the old shard plan.
Smaller chunks (``--chunk`` on the CLI) trade IPC for work-stealing
balance: stragglers stop serializing the tail of the run.  Chunks are
contiguous home-id ranges, so the heterogeneous default mix (which
cycles scenario profiles by home id) stays balanced at any chunk size
of a few homes or more.
"""

import atexit
import threading
from concurrent import futures
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.fleet import shm as _shm
from repro.fleet.affinity import claim_slot, pin_to_slot
from repro.fleet.sharding import (DEFAULT_CHECK_FINAL, DEFAULT_CRASHES,
                                  DEFAULT_EXECUTION,
                                  DEFAULT_EXHAUSTIVE_LIMIT,
                                  DEFAULT_MAX_EVENTS, DEFAULT_MODEL,
                                  DEFAULT_RECOVERY, DEFAULT_SCHEDULER)
from repro.metrics.fleet import (DEFAULT_LATENCY_RESOLUTION,
                                 FleetAccumulator, accumulate_rows,
                                 strip_latencies)

#: One home's worth of dispatch payload: ``(home_id, scenario, seed)``.
HomeTask = Tuple[int, str, int]

#: Aggregation modes (see repro.metrics.fleet).
AGGREGATE_MODES = ("exact", "stream")


@dataclass(frozen=True)
class WorkerContext:
    """Everything shared by every home of one fleet run.

    Broadcast once per worker (process pools ship it through the
    executor initializer); together with a :data:`HomeTask` it fully
    determines one home's simulation.
    """

    model: str = DEFAULT_MODEL
    scheduler: str = DEFAULT_SCHEDULER
    execution: str = DEFAULT_EXECUTION
    check_final: bool = DEFAULT_CHECK_FINAL
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT
    max_events: int = DEFAULT_MAX_EVENTS
    crashes: int = DEFAULT_CRASHES
    recovery: str = DEFAULT_RECOVERY
    aggregate: str = "exact"
    resolution: float = DEFAULT_LATENCY_RESOLUTION
    #: Streaming-partial transport ("pickle" | "shm"); with "shm" the
    #: parent pre-creates the slabs and ships their names here.
    transport: str = "pickle"
    slab_names: Tuple[str, ...] = ()
    slab_region_bytes: int = _shm.DEFAULT_REGION_BYTES
    #: Durable-fleet WAL spool directory ("" disables spooling).
    wal_dir: str = ""
    #: CPU pinning ("none" | "spread"), the parent-owned slot-claim
    #: directory process workers coordinate through, and the number of
    #: claimable slots (the planned worker count).
    pin: str = "none"
    pin_dir: str = ""
    pin_slots: int = 0
    #: Per-worker cProfile dump directory ("" disables profiling).
    profile_dir: str = ""
    #: Control-plane program (a :class:`repro.fleet.control.program.
    #: ControlProgram`) routing directive-carrying homes through the
    #: supervised runner; ``None`` for plain fleet runs.  Typed loosely
    #: to keep this module import-cycle-free.
    control: Optional[Any] = None


@dataclass
class ChunkResult:
    """What a worker sends back for one chunk.

    ``rows`` are per-home summary rows (raw latency sample lists
    already stripped in streaming mode); ``partial`` is the chunk's
    pre-reduced accumulator (streaming mode, pickle transport).  With
    the shared-memory transport ``partial`` stays ``None`` and ``shm``
    carries the ``(slab_index, offset, length)`` reference of the
    struct-packed partial instead — unless the packed form outgrew its
    region, in which case the worker fell back to ``partial``.
    """

    chunk_id: int
    rows: List[Dict[str, Any]]
    partial: Optional[FleetAccumulator] = None
    shm: Optional[Tuple[int, int, int]] = None


def plan_chunks(tasks: List[HomeTask],
                chunk_size: int) -> List[Tuple[HomeTask, ...]]:
    """Slice ``tasks`` into contiguous chunks of ``chunk_size`` homes."""
    if chunk_size <= 0:
        raise ValueError(f"chunk size must be positive, got {chunk_size}")
    return [tuple(tasks[start:start + chunk_size])
            for start in range(0, len(tasks), chunk_size)]


def default_chunk_size(homes: int, workers: int) -> int:
    """One chunk per worker (``ceil(homes / workers)``), the IPC-
    amortizing default that reproduces the old shard plan's layout."""
    return max(1, -(-homes // max(1, workers)))


def process_chunk(context: WorkerContext, chunk_id: int,
                  chunk: Tuple[HomeTask, ...], factory) -> ChunkResult:
    """Simulate one chunk on one worker (shared by every pool kind)."""
    rows = [factory.run_task(task) for task in chunk]
    if context.aggregate == "stream":
        partial = accumulate_rows(rows, context.resolution)
        rows = strip_latencies(rows)
        if context.transport == "shm" and context.slab_names:
            region = _shm.pack_partial_to_region(
                partial, chunk_id, context.slab_names,
                context.slab_region_bytes)
            if region is not None:
                return ChunkResult(chunk_id, rows, None, region)
            # Packed partial outgrew its fixed region: degrade this
            # chunk to the pickled path rather than truncate.
        return ChunkResult(chunk_id, rows, partial)
    return ChunkResult(chunk_id, rows, None)


class WorkerPool:
    """A named pool strategy: run chunks, keep workers alive between
    them.  Subclasses implement :meth:`run`; results come back in
    chunk order regardless of completion order."""

    name = "abstract"

    def __init__(self, workers: int) -> None:
        self.workers = max(1, workers)

    def run(self, context: WorkerContext,
            chunks: List[Tuple[HomeTask, ...]]) -> List[ChunkResult]:
        raise NotImplementedError


class SerialPool(WorkerPool):
    """Inline execution — the reference backend (and the fast path for
    small fleets: no pool, no pickling, one reused home)."""

    name = "serial"

    def run(self, context: WorkerContext,
            chunks: List[Tuple[HomeTask, ...]]) -> List[ChunkResult]:
        from repro.fleet.worker import HomeFactory

        factory = HomeFactory(context)
        return [process_chunk(context, chunk_id, chunk, factory)
                for chunk_id, chunk in enumerate(chunks)]


class ThreadPool(WorkerPool):
    """Thread workers with one :class:`HomeFactory` per thread.

    Simulations are pure Python, so the GIL serializes compute — this
    is primarily a correctness backend that shakes out shared-state
    bugs; homes never share a factory across threads.
    """

    name = "thread"

    def run(self, context: WorkerContext,
            chunks: List[Tuple[HomeTask, ...]]) -> List[ChunkResult]:
        from repro.fleet.worker import HomeFactory

        local = threading.local()

        def work(item: Tuple[int, Tuple[HomeTask, ...]]) -> ChunkResult:
            factory = getattr(local, "factory", None)
            if factory is None:
                factory = local.factory = HomeFactory(context)
            return process_chunk(context, item[0], item[1], factory)

        with futures.ThreadPoolExecutor(
                max_workers=self.workers) as pool:
            return list(pool.map(work, enumerate(chunks)))


class ProcessPool(WorkerPool):
    """Process workers for real multi-core throughput.

    The context is broadcast once per worker via the executor
    initializer; each worker process keeps its factory (and therefore
    its reused ``SafeHome``) alive for every chunk it consumes.
    """

    name = "process"

    def run(self, context: WorkerContext,
            chunks: List[Tuple[HomeTask, ...]]) -> List[ChunkResult]:
        with futures.ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_process_worker_init,
                initargs=(context,)) as pool:
            return list(pool.map(_process_worker_chunk,
                                 enumerate(chunks)))


# -- process-worker plumbing (module-level: must pickle by name) -------------

_PROCESS_STATE: Dict[str, Any] = {}


def _process_worker_init(context: WorkerContext) -> None:
    from repro.fleet.worker import HomeFactory

    _PROCESS_STATE["context"] = context
    _PROCESS_STATE["factory"] = HomeFactory(context)
    if context.pin != "none" and context.pin_dir:
        slot = claim_slot(context.pin_dir, context.pin_slots or 1)
        pin_to_slot(slot, context.pin)
    if context.transport == "shm":
        _at_worker_exit(_shm.detach_all)
    if context.profile_dir:
        _start_worker_profile(context.profile_dir)


def _at_worker_exit(callback) -> None:
    """Run ``callback`` when this worker process exits.

    Forked multiprocessing children leave via ``os._exit``, which skips
    the regular ``atexit`` machinery — ``multiprocessing.util``'s
    finalizer registry is the hook that actually fires there.  Plain
    ``atexit`` is the fallback for exotic pools that reuse this
    initializer in-process.
    """
    try:
        from multiprocessing.util import Finalize

        Finalize(None, callback, exitpriority=10)
    except Exception:  # pragma: no cover - stdlib-internal API moved
        atexit.register(callback)


def _start_worker_profile(profile_dir: str) -> None:
    """Profile this worker's whole life; dump pstats at worker exit so
    the parent can merge the per-worker files into one view."""
    import cProfile
    import os

    profile = cProfile.Profile()
    profile.enable()

    def _dump() -> None:
        profile.disable()
        profile.dump_stats(os.path.join(profile_dir,
                                        f"worker-{os.getpid()}.pstats"))

    _at_worker_exit(_dump)


def _process_worker_chunk(
        item: Tuple[int, Tuple[HomeTask, ...]]) -> ChunkResult:
    return process_chunk(_PROCESS_STATE["context"], item[0], item[1],
                         _PROCESS_STATE["factory"])


#: Pool registry: name → WorkerPool subclass.
POOLS: Dict[str, type] = {
    SerialPool.name: SerialPool,
    ThreadPool.name: ThreadPool,
    ProcessPool.name: ProcessPool,
}


def register_pool(name: str, pool_class: type) -> None:
    """Plug in a custom pool (e.g. an RPC or asyncio fan-out)."""
    if not (isinstance(pool_class, type)
            and issubclass(pool_class, WorkerPool)):
        raise TypeError("pool_class must subclass WorkerPool")
    POOLS[name] = pool_class
