"""CPU affinity knobs for fleet worker processes.

``--pin spread`` pins each process worker to one CPU, round-robin over
the CPUs the parent may use — on NUMA boxes this stops the scheduler
migrating the long-lived workers (and their reused ``SafeHome`` heaps)
between sockets mid-run.  Everything degrades to a no-op where the
platform lacks ``os.sched_setaffinity`` (macOS, Windows) or denies it.

Worker slot assignment is the one coordination problem here: a
``ProcessPoolExecutor`` initializer does not know its worker ordinal.
Slots are claimed through ``O_CREAT | O_EXCL`` files in a parent-owned
run directory — atomic on local filesystems, no shared counters, and
the claim directory dies with the run.
"""

import os
from typing import Optional

#: Pinning modes: ``none`` (scheduler decides) or ``spread``
#: (round-robin one CPU per worker slot).
PIN_MODES = ("none", "spread")


def available_cpus() -> int:
    """CPUs this process may run on (affinity-aware where possible)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def claim_slot(claim_dir: str, limit: int) -> Optional[int]:
    """Atomically claim the lowest free worker slot in ``claim_dir``.

    Returns the slot index, or ``None`` when every slot is taken (more
    workers than the pool planned — pin degrades to a no-op rather
    than doubling up a CPU deterministically).
    """
    for slot in range(max(1, limit)):
        try:
            handle = os.open(os.path.join(claim_dir, f"slot-{slot}"),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        except OSError:  # pragma: no cover - unwritable claim dir
            return None
        os.write(handle, str(os.getpid()).encode("ascii"))
        os.close(handle)
        return slot
    return None


def pin_to_slot(slot: Optional[int], mode: str = "spread"
                ) -> Optional[int]:
    """Pin the calling process to its slot's CPU; returns the CPU id,
    or ``None`` when pinning was skipped (mode, platform, permission).
    """
    if mode != "spread" or slot is None:
        return None
    try:
        cpus = sorted(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return None
    if not cpus:  # pragma: no cover - defensive
        return None
    cpu = cpus[slot % len(cpus)]
    try:
        os.sched_setaffinity(0, {cpu})
    except OSError:  # pragma: no cover - containers may deny this
        return None
    return cpu
