"""The fleet engine: N independent homes across a persistent worker pool.

Execution pools are registered by name (see :mod:`repro.fleet.pool`);
the built-ins are

* ``serial``  — run every chunk inline (the reference backend);
* ``thread``  — persistent thread workers (GIL-bound; correctness);
* ``process`` — persistent process workers for multi-core throughput,
  with the shared config broadcast once per worker and homes shipped as
  compact ``(home_id, scenario, seed)`` tuples.

All pools receive the same chunk plan and return per-home rows that are
re-sorted by home id before aggregation, so the choice of backend,
worker count or chunk size never changes the default output bytes.
Streaming aggregation (``aggregate="stream"``) pre-reduces chunks in
the workers and merges O(workers) partials in the parent — histogram
percentiles within one bin of the exact pooled values; the default
``"exact"`` mode preserves the byte-identical pooled-percentile path.

Custom backends registered through :func:`register_backend` (the PR-1
API: ``callable(shards, workers) -> rows``) keep working through the
legacy shard path.
"""

import json
import os
import shutil
import tempfile
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.fleet import shm as _shm
from repro.fleet.affinity import PIN_MODES
from repro.fleet.pool import (AGGREGATE_MODES, POOLS, ChunkResult,
                              WorkerContext, default_chunk_size,
                              plan_chunks)
from repro.fleet.spool import merge_spool
from repro.fleet.seeding import SeedSplitter
from repro.fleet.sharding import (DEFAULT_CHECK_FINAL, DEFAULT_CRASHES,
                                  DEFAULT_EXECUTION,
                                  DEFAULT_EXHAUSTIVE_LIMIT,
                                  DEFAULT_MAX_EVENTS, DEFAULT_MODEL,
                                  DEFAULT_RECOVERY, DEFAULT_SCHEDULER,
                                  HomeSpec, Shard, plan_shards)
from repro.fleet.worker import run_shard
from repro.metrics.fleet import aggregate_homes, merge_accumulators
from repro.workloads.fleet_mix import DEFAULT_MIX, scenario_for_home

Rows = List[Dict[str, Any]]
Backend = Callable[[List[Shard], int], Rows]


def _run_serial(shards: List[Shard], workers: int) -> Rows:
    rows: Rows = []
    for shard in shards:
        rows.extend(run_shard(shard))
    return rows


#: Legacy backend registry (PR-1 API): name → callable(shards, workers)
#: → rows.  The built-in names resolve to pools in :data:`POOLS` first;
#: entries here are reached only through :func:`register_backend`.
BACKENDS: Dict[str, Backend] = {
    "serial": _run_serial,
}


def register_backend(name: str, backend: Backend) -> None:
    """Plug in a custom shard-level backend (e.g. an RPC fan-out).

    For pool-level extensions (chunk streaming, persistent workers)
    prefer :func:`repro.fleet.pool.register_pool`.
    """
    if not callable(backend):
        raise TypeError("backend must be callable(shards, workers) -> rows")
    BACKENDS[name] = backend


@dataclass
class FleetConfig:
    """Everything that defines a fleet run (and nothing else does)."""

    homes: int
    seed: int = 0
    scenario: str = "mix"           # "mix" cycles `mix`; else one name
    mix: Tuple[str, ...] = DEFAULT_MIX
    model: str = DEFAULT_MODEL
    scheduler: str = DEFAULT_SCHEDULER
    execution: str = DEFAULT_EXECUTION
    backend: str = "serial"
    workers: int = 0                # 0 = one per CPU (capped at homes)
    # Homes per dispatch chunk; 0 = ceil(homes / workers), the
    # IPC-amortizing default.  Smaller chunks stream better.
    chunk: int = 0
    # "exact" pools raw latency samples in the parent (byte-identical
    # default); "stream" merges per-chunk FleetAccumulator partials.
    aggregate: str = "exact"
    check_final: bool = DEFAULT_CHECK_FINAL
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT
    max_events: int = DEFAULT_MAX_EVENTS
    # Hub-crash chaos schedule, applied per home (see HomeSpec).
    crashes: int = DEFAULT_CRASHES
    recovery: str = DEFAULT_RECOVERY
    # Streaming-partial transport: "pickle" ships accumulators through
    # the pool's result channel, "shm" struct-packs them into
    # preallocated shared-memory slabs (requires aggregate="stream").
    transport: str = "pickle"
    # CPU pinning for process workers: "none" | "spread".
    pin: str = "none"
    # Directory for worker-spooled WALs ("" disables; forces durable
    # homes and produces fleet-wal.jsonl + index after the run).
    wal_dir: str = ""
    # Directory for per-worker cProfile dumps ("" disables; used by
    # scripts/profile_fleet.py for the process backend).
    profile_dir: str = ""

    def effective_workers(self) -> int:
        workers = self.workers or (os.cpu_count() or 1)
        return max(1, min(workers, self.homes))

    def effective_chunk(self) -> int:
        if self.chunk:
            return max(1, min(self.chunk, self.homes))
        return default_chunk_size(self.homes, self.effective_workers())

    # -- plan round-trip (repro-fleet-plan/1, docs/control-plane.md) --------

    @classmethod
    def from_plan(cls, fleet: Mapping[str, Any],
                  **overrides: Any) -> "FleetConfig":
        """Build a config from a plan's ``fleet`` section.

        Keyword ``overrides`` are layered on top (the CLI's
        flags-beat-plan rule).  Unknown keys raise
        :class:`~repro.errors.PlanError`; ``homes`` defaults to 10 when
        neither source names it.  ``mix`` accepts a JSON list.
        """
        from repro.errors import PlanError

        valid = {f.name for f in fields(cls)}
        merged: Dict[str, Any] = dict(fleet)
        merged.update(overrides)
        unknown = set(merged) - valid
        if unknown:
            raise PlanError(
                f"unknown fleet config keys {sorted(unknown)}; "
                f"valid keys: {sorted(valid)}")
        if "mix" in merged:
            mix = merged["mix"]
            if not isinstance(mix, (list, tuple)) or \
                    not all(isinstance(name, str) for name in mix):
                raise PlanError("'mix' must be a list of scenario names")
            merged["mix"] = tuple(mix)
        merged.setdefault("homes", 10)
        try:
            config = cls(**merged)
        except (TypeError, ValueError) as exc:
            raise PlanError(f"bad fleet config: {exc}") from None
        # Schema validation: every enumerable field must hold a known
        # value *now*, not fail deep inside a worker pool later.
        from repro.core.visibility import VisibilityModel
        from repro.hub.durability.recovery import RECOVERY_MODES

        for key, value, allowed in (
                ("backend", config.backend,
                 sorted(set(POOLS) | set(BACKENDS))),
                ("aggregate", config.aggregate, sorted(AGGREGATE_MODES)),
                ("transport", config.transport,
                 sorted(_shm.TRANSPORTS)),
                ("pin", config.pin, sorted(PIN_MODES)),
                ("recovery", config.recovery, sorted(RECOVERY_MODES))):
            if value not in allowed:
                raise PlanError(f"bad fleet config: {key}={value!r} "
                                f"(pick from {allowed})")
        try:
            VisibilityModel.parse(config.model)
        except ValueError as exc:
            raise PlanError(f"bad fleet config: {exc}") from None
        return config

    def to_plan(self) -> Dict[str, Any]:
        """This config as a plan ``fleet`` section (JSON-ready).

        The exact inverse of :meth:`from_plan`:
        ``FleetConfig.from_plan(config.to_plan()) == config``.
        """
        payload = asdict(self)
        payload["mix"] = list(self.mix)
        return payload


@dataclass
class FleetResult:
    """Per-home rows plus the batched cross-home aggregate."""

    config: FleetConfig
    rows: Rows                      # sorted by home_id
    aggregate: Dict[str, Any]
    elapsed_s: float = 0.0          # wall-clock; excluded from to_json

    @property
    def homes_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return len(self.rows) / self.elapsed_s

    def to_json(self, per_home: bool = False, indent: int = 2) -> str:
        """Deterministic JSON: same config ⇒ byte-identical output.

        Wall-clock timing and raw latency samples are deliberately
        excluded; ``per_home`` adds the per-home summary rows.
        """
        payload: Dict[str, Any] = {
            "fleet": {
                "homes": self.config.homes,
                "seed": self.config.seed,
                "scenario": self.config.scenario,
                "mix": list(self.config.mix)
                       if self.config.scenario == "mix" else None,
                "model": self.config.model,
                "scheduler": self.config.scheduler,
            },
            "aggregate": self.aggregate,
        }
        if self.config.execution != DEFAULT_EXECUTION:
            # Included only when non-default so default fleet reports
            # stay byte-identical to pre-execution-core output.
            payload["fleet"]["execution"] = self.config.execution
        if self.config.crashes != DEFAULT_CRASHES:
            # Same rule for the hub-crash chaos schedule.
            payload["fleet"]["crashes"] = self.config.crashes
            payload["fleet"]["recovery"] = self.config.recovery
        if self.config.aggregate != "exact":
            # Streaming percentiles are histogram-resolution and the
            # float means fold in chunk order, so the layout knobs are
            # part of the reproducibility recipe.
            payload["fleet"]["aggregate"] = self.config.aggregate
            payload["fleet"]["chunk"] = self.config.effective_chunk()
        if per_home:
            payload["homes"] = [
                {key: value for key, value in row.items()
                 if key != "latencies"}
                for row in self.rows]
        return json.dumps(payload, sort_keys=True, indent=indent)


class FleetEngine:
    """Chunks N homes over a persistent worker pool and aggregates."""

    def __init__(self, config: FleetConfig) -> None:
        if config.homes <= 0:
            raise ValueError(f"fleet needs >= 1 home, got {config.homes}")
        if config.backend not in POOLS and config.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {config.backend!r}; pick from "
                f"{sorted(set(POOLS) | set(BACKENDS))}")
        if config.aggregate not in AGGREGATE_MODES:
            raise ValueError(
                f"unknown aggregate mode {config.aggregate!r}; "
                f"pick from {AGGREGATE_MODES}")
        if config.aggregate == "stream" and config.backend not in POOLS:
            # Legacy shard backends return bare rows with no partials;
            # silently degrading to exact would contradict the layout
            # knobs to_json stamps into streaming payloads.
            raise ValueError(
                f"aggregate='stream' needs a pool backend "
                f"({sorted(POOLS)}); {config.backend!r} is a legacy "
                f"shard backend")
        if config.transport not in _shm.TRANSPORTS:
            raise ValueError(
                f"unknown transport {config.transport!r}; pick from "
                f"{_shm.TRANSPORTS}")
        if config.transport == "shm":
            if config.aggregate != "stream":
                raise ValueError(
                    "transport='shm' carries streaming partials; it "
                    "requires aggregate='stream'")
            if not _shm.shm_available():
                raise ValueError(
                    "transport='shm' needs multiprocessing."
                    "shared_memory, which this platform lacks")
        if config.pin not in PIN_MODES:
            raise ValueError(f"unknown pin mode {config.pin!r}; "
                             f"pick from {PIN_MODES}")
        # Fail fast on bad scenario/mix names before spinning up a pool.
        scenario_for_home(0, config.scenario, config.mix)
        self.config = config
        self.splitter = SeedSplitter(master_seed=config.seed)

    def context(self) -> WorkerContext:
        """The per-run shared config broadcast once to every worker."""
        config = self.config
        return WorkerContext(
            model=config.model, scheduler=config.scheduler,
            execution=config.execution, check_final=config.check_final,
            exhaustive_limit=config.exhaustive_limit,
            max_events=config.max_events, crashes=config.crashes,
            recovery=config.recovery, aggregate=config.aggregate,
            transport=config.transport, wal_dir=config.wal_dir,
            pin=config.pin, profile_dir=config.profile_dir)

    def pool_workers(self, chunk_count: Optional[int] = None) -> int:
        """The worker count an actual pool spawn uses *right now*.

        Clamped to the chunk plan: never spin up more workers than
        there are chunks to feed them.  Spawners must call this per
        spawn rather than caching ``effective_workers()`` — a
        control-plane re-spawn over a subset of homes (supervised
        rollback) has fewer chunks, and a stale count would claim idle
        workers, shm slabs and CPU slots.
        """
        if chunk_count is None:
            chunk_count = len(plan_chunks(self.tasks(),
                                          self.config.effective_chunk()))
        return max(1, min(self.config.effective_workers(), chunk_count))

    def tasks(self) -> List[Tuple[int, str, int]]:
        """Compact per-home dispatch tuples: pure function of config."""
        config = self.config
        for_home = self.splitter.for_home
        return [(home_id,
                 scenario_for_home(home_id, config.scenario, config.mix),
                 for_home(home_id))
                for home_id in range(config.homes)]

    def specs(self) -> List[HomeSpec]:
        """The per-home specs: pure function of the config."""
        config = self.config
        return [
            HomeSpec(
                home_id=home_id,
                scenario=scenario,
                seed=seed,
                model=config.model,
                scheduler=config.scheduler,
                execution=config.execution,
                check_final=config.check_final,
                exhaustive_limit=config.exhaustive_limit,
                max_events=config.max_events,
                crashes=config.crashes,
                recovery=config.recovery,
            )
            for home_id, scenario, seed in self.tasks()
        ]

    def run(self) -> FleetResult:
        """Simulate the whole fleet and return rows + aggregate."""
        import time

        config = self.config
        workers = config.effective_workers()
        started = time.perf_counter()
        if config.backend in POOLS:
            if config.wal_dir:
                os.makedirs(config.wal_dir, exist_ok=True)
            chunks = plan_chunks(self.tasks(), config.effective_chunk())
            # Never spin up more workers than there are chunks to feed
            # them (e.g. --workers 8 over 3 homes): idle workers cost
            # startup and, under shm/pinning, slabs and CPU slots.
            workers = self.pool_workers(len(chunks))
            context = self.context()
            slabs: Optional[_shm.SlabSet] = None
            pin_dir = ""
            try:
                if config.transport == "shm":
                    slabs = _shm.SlabSet(workers, len(chunks))
                    context = replace(
                        context, slab_names=slabs.names,
                        slab_region_bytes=slabs.region_bytes)
                if config.pin != "none":
                    pin_dir = tempfile.mkdtemp(prefix="repro-fleet-pin-")
                    context = replace(context, pin_dir=pin_dir,
                                      pin_slots=workers)
                pool = POOLS[config.backend](workers)
                results: List[ChunkResult] = pool.run(context, chunks)
                partials = [self._extract_partial(result, slabs)
                            for result in results]
            finally:
                # Parent-owned cleanup, unconditional: no /dev/shm
                # entry or claim dir outlives the run, even when a
                # worker died mid-chunk.
                if slabs is not None:
                    slabs.close(unlink=True)
                _shm.detach_all()
                if pin_dir:
                    shutil.rmtree(pin_dir, ignore_errors=True)
            rows = [row for result in results for row in result.rows]
        else:
            # Legacy custom backend: shard-level API, exact aggregation.
            shards = plan_shards(self.specs(), workers)
            rows = BACKENDS[config.backend](shards, workers)
            results = []
            partials = []
        rows = sorted(rows, key=lambda row: row["home_id"])
        if len(rows) != config.homes:
            raise RuntimeError(
                f"backend {config.backend!r} returned {len(rows)} rows "
                f"for {config.homes} homes")
        if config.wal_dir:
            merge_spool(config.wal_dir, expected_homes=config.homes)
        elapsed = time.perf_counter() - started
        if config.aggregate == "stream" and results:
            # Partials merge in chunk order — deterministic for a fixed
            # chunk layout regardless of completion order.
            aggregate = merge_accumulators(partials).aggregate()
        else:
            aggregate = aggregate_homes(rows)
        return FleetResult(config=config, rows=rows,
                           aggregate=aggregate, elapsed_s=elapsed)

    @staticmethod
    def _extract_partial(result: ChunkResult,
                         slabs: Optional[_shm.SlabSet]):
        """A chunk's accumulator partial, whichever way it traveled:
        unpacked from its shared-memory region, or pickled (pickle
        transport and per-chunk region-overflow fallback)."""
        if result.shm is not None:
            if slabs is None:
                raise RuntimeError(
                    f"chunk {result.chunk_id} returned a shared-memory "
                    f"reference but no slabs were created")
            slab_index, offset, length = result.shm
            return _shm.unpack_accumulator(
                slabs.read(slab_index, offset, length))
        return result.partial


def run_fleet(homes: int, seed: int = 0, **kwargs: Any) -> FleetResult:
    """One-call convenience wrapper: ``run_fleet(100, seed=42)``."""
    return FleetEngine(FleetConfig(homes=homes, seed=seed, **kwargs)).run()
