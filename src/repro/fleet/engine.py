"""The fleet engine: N independent homes across a pluggable worker pool.

Execution backends are registered by name; the built-ins are

* ``serial``  — run every shard inline (the reference backend);
* ``thread``  — a :class:`~concurrent.futures.ThreadPoolExecutor`
  (cheap to start; simulations are pure Python so the GIL serializes
  compute, which makes this mostly a correctness backend);
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  for real multi-core throughput.

All backends receive the same shard plan and return per-home rows that
are re-sorted by home id before aggregation, so the choice of backend
or worker count never changes the output bytes.
"""

import json
import os
from concurrent import futures
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from repro.fleet.seeding import SeedSplitter
from repro.fleet.sharding import (DEFAULT_CHECK_FINAL, DEFAULT_CRASHES,
                                  DEFAULT_EXECUTION,
                                  DEFAULT_EXHAUSTIVE_LIMIT,
                                  DEFAULT_MAX_EVENTS, DEFAULT_MODEL,
                                  DEFAULT_RECOVERY, DEFAULT_SCHEDULER,
                                  HomeSpec, Shard, plan_shards)
from repro.fleet.worker import run_shard
from repro.metrics.fleet import aggregate_homes
from repro.workloads.fleet_mix import DEFAULT_MIX, scenario_for_home

Rows = List[Dict[str, Any]]
Backend = Callable[[List[Shard], int], Rows]


def _run_serial(shards: List[Shard], workers: int) -> Rows:
    rows: Rows = []
    for shard in shards:
        rows.extend(run_shard(shard))
    return rows


def _run_threads(shards: List[Shard], workers: int) -> Rows:
    with futures.ThreadPoolExecutor(max_workers=workers) as pool:
        return [row for shard_rows in pool.map(run_shard, shards)
                for row in shard_rows]


def _run_processes(shards: List[Shard], workers: int) -> Rows:
    with futures.ProcessPoolExecutor(max_workers=workers) as pool:
        return [row for shard_rows in pool.map(run_shard, shards)
                for row in shard_rows]


#: Backend registry: name → callable(shards, workers) → rows.
BACKENDS: Dict[str, Backend] = {
    "serial": _run_serial,
    "thread": _run_threads,
    "process": _run_processes,
}


def register_backend(name: str, backend: Backend) -> None:
    """Plug in a custom execution backend (e.g. an async or RPC pool)."""
    if not callable(backend):
        raise TypeError("backend must be callable(shards, workers) -> rows")
    BACKENDS[name] = backend


@dataclass
class FleetConfig:
    """Everything that defines a fleet run (and nothing else does)."""

    homes: int
    seed: int = 0
    scenario: str = "mix"           # "mix" cycles `mix`; else one name
    mix: Tuple[str, ...] = DEFAULT_MIX
    model: str = DEFAULT_MODEL
    scheduler: str = DEFAULT_SCHEDULER
    execution: str = DEFAULT_EXECUTION
    backend: str = "serial"
    workers: int = 0                # 0 = one per CPU (capped at homes)
    check_final: bool = DEFAULT_CHECK_FINAL
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT
    max_events: int = DEFAULT_MAX_EVENTS
    # Hub-crash chaos schedule, applied per home (see HomeSpec).
    crashes: int = DEFAULT_CRASHES
    recovery: str = DEFAULT_RECOVERY

    def effective_workers(self) -> int:
        workers = self.workers or (os.cpu_count() or 1)
        return max(1, min(workers, self.homes))


@dataclass
class FleetResult:
    """Per-home rows plus the batched cross-home aggregate."""

    config: FleetConfig
    rows: Rows                      # sorted by home_id
    aggregate: Dict[str, Any]
    elapsed_s: float = 0.0          # wall-clock; excluded from to_json

    @property
    def homes_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return len(self.rows) / self.elapsed_s

    def to_json(self, per_home: bool = False, indent: int = 2) -> str:
        """Deterministic JSON: same config ⇒ byte-identical output.

        Wall-clock timing and raw latency samples are deliberately
        excluded; ``per_home`` adds the per-home summary rows.
        """
        payload: Dict[str, Any] = {
            "fleet": {
                "homes": self.config.homes,
                "seed": self.config.seed,
                "scenario": self.config.scenario,
                "mix": list(self.config.mix)
                       if self.config.scenario == "mix" else None,
                "model": self.config.model,
                "scheduler": self.config.scheduler,
            },
            "aggregate": self.aggregate,
        }
        if self.config.execution != DEFAULT_EXECUTION:
            # Included only when non-default so default fleet reports
            # stay byte-identical to pre-execution-core output.
            payload["fleet"]["execution"] = self.config.execution
        if self.config.crashes != DEFAULT_CRASHES:
            # Same rule for the hub-crash chaos schedule.
            payload["fleet"]["crashes"] = self.config.crashes
            payload["fleet"]["recovery"] = self.config.recovery
        if per_home:
            payload["homes"] = [
                {key: value for key, value in row.items()
                 if key != "latencies"}
                for row in self.rows]
        return json.dumps(payload, sort_keys=True, indent=indent)


class FleetEngine:
    """Shards N homes over a worker pool and aggregates their metrics."""

    def __init__(self, config: FleetConfig) -> None:
        if config.homes <= 0:
            raise ValueError(f"fleet needs >= 1 home, got {config.homes}")
        if config.backend not in BACKENDS:
            raise ValueError(f"unknown backend {config.backend!r}; "
                             f"pick from {sorted(BACKENDS)}")
        # Fail fast on bad scenario/mix names before spinning up a pool.
        scenario_for_home(0, config.scenario, config.mix)
        self.config = config
        self.splitter = SeedSplitter(master_seed=config.seed)

    def specs(self) -> List[HomeSpec]:
        """The per-home specs: pure function of the config."""
        config = self.config
        return [
            HomeSpec(
                home_id=home_id,
                scenario=scenario_for_home(home_id, config.scenario,
                                           config.mix),
                seed=self.splitter.for_home(home_id),
                model=config.model,
                scheduler=config.scheduler,
                execution=config.execution,
                check_final=config.check_final,
                exhaustive_limit=config.exhaustive_limit,
                max_events=config.max_events,
                crashes=config.crashes,
                recovery=config.recovery,
            )
            for home_id in range(config.homes)
        ]

    def run(self) -> FleetResult:
        """Simulate the whole fleet and return rows + aggregate."""
        import time

        config = self.config
        workers = config.effective_workers()
        shards = plan_shards(self.specs(), workers)
        started = time.perf_counter()
        rows = BACKENDS[config.backend](shards, workers)
        elapsed = time.perf_counter() - started
        rows = sorted(rows, key=lambda row: row["home_id"])
        if len(rows) != config.homes:
            raise RuntimeError(
                f"backend {config.backend!r} returned {len(rows)} rows "
                f"for {config.homes} homes")
        return FleetResult(config=config, rows=rows,
                           aggregate=aggregate_homes(rows),
                           elapsed_s=elapsed)


def run_fleet(homes: int, seed: int = 0, **kwargs: Any) -> FleetResult:
    """One-call convenience wrapper: ``run_fleet(100, seed=42)``."""
    return FleetEngine(FleetConfig(homes=homes, seed=seed, **kwargs)).run()
