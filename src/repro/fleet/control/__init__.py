"""The fleet control plane: mass-ops on top of the durable hub.

A production fleet is never restarted wholesale (ROADMAP item 2).
This package drives three operations over a running fleet, all of them
behind one versioned, schema-validated config:

* **live migration** — flip a cohort's visibility model (e.g. WV → EV)
  at a checkpoint boundary mid-run via
  :meth:`~repro.hub.safehome.SafeHome.migrate`;
* **supervision** — per-home health probes and auto-restart with
  bounded backoff, with the hub-crash chaos injector as the fault
  source and ``recover()`` honoring each model's restart semantics;
* **canary cohorts** — run a config change on a seeded subset of
  homes, compare congruence/abort/SLO metrics against the stable
  cohort, and auto-rollback on regression.

A :class:`FleetPlan` (``repro-fleet-plan/1`` JSON) is the only way to
drive these ops; the :class:`ControlLoop` executes it step by step and
journals everything it does into a deterministic, replayable
:class:`OpsLog`.  See docs/control-plane.md.
"""

from repro.fleet.control.opslog import OpsLog
from repro.fleet.control.plan import (PLAN_VERSION, CanarySpec, Cohort,
                                      FleetPlan, MigrationStep,
                                      assign_cohorts, load_plan)
from repro.fleet.control.program import (ControlProgram, HomeDirective,
                                         SupervisionPolicy)
from repro.fleet.control.loop import ControlLoop, ControlResult, apply_plan

__all__ = [
    "PLAN_VERSION",
    "FleetPlan",
    "Cohort",
    "MigrationStep",
    "CanarySpec",
    "SupervisionPolicy",
    "HomeDirective",
    "ControlProgram",
    "ControlLoop",
    "ControlResult",
    "OpsLog",
    "assign_cohorts",
    "load_plan",
    "apply_plan",
]
