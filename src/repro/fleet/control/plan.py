"""The versioned fleet plan: ``repro-fleet-plan/1``.

A :class:`FleetPlan` is the *only* way to drive control-plane
operations (docs/control-plane.md pins the schema).  It is a plain
JSON document::

    {
      "version": "repro-fleet-plan/1",
      "fleet":   { "homes": 100, "seed": 42, "model": "wv", ... },
      "cohorts": [
        { "name": "migrate", "fraction": 0.2,
          "overrides": { "crashes": 2 } },
        { "name": "canary", "fraction": 0.1,
          "overrides": { "scheduler": "fcfs" } }
      ],
      "migrations": [
        { "cohort": "migrate", "to_model": "ev", "at_s": 120.0 }
      ],
      "canary": { "cohort": "canary", "baseline": "stable",
                  "max_abort_rate_delta": 0.1, "rollback": true },
      "supervision": { "max_restarts": 3, "backoff_base_s": 0.5 }
    }

``fleet`` holds :class:`~repro.fleet.engine.FleetConfig` fields (the
``FleetConfig.from_plan`` round-trip).  Cohort membership is *seeded*:
:func:`assign_cohorts` samples disjoint home-id subsets with
seeds derived from the fleet seed, so the same plan always names the
same homes.  Homes left over belong to the implicit ``"stable"``
cohort.  Every structural violation raises
:class:`~repro.errors.PlanError` — plans fail loudly at load, never
mid-run.
"""

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.visibility import VisibilityModel
from repro.errors import PlanError
from repro.fleet.control.program import SupervisionPolicy
from repro.hub.durability.recovery import RECOVERY_MODES
from repro.sim.random import derive_seed

#: The schema version this module reads and writes.
PLAN_VERSION = "repro-fleet-plan/1"

#: The reserved name of the implicit remainder cohort.
STABLE_COHORT = "stable"

#: Per-home settings a cohort may override.
COHORT_OVERRIDE_KEYS = ("model", "scheduler", "execution", "crashes",
                        "recovery")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise PlanError(message)


@dataclass(frozen=True)
class Cohort:
    """A named, seeded subset of the fleet with config overrides."""

    name: str
    fraction: float
    overrides: Tuple[Tuple[str, Any], ...] = ()

    def override_map(self) -> Dict[str, Any]:
        return dict(self.overrides)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Cohort":
        _require(isinstance(data.get("name"), str) and data["name"],
                 "cohort needs a non-empty string 'name'")
        overrides = data.get("overrides", {})
        _require(isinstance(overrides, Mapping),
                 f"cohort {data['name']!r}: 'overrides' must be an object")
        for key in overrides:
            _require(key in COHORT_OVERRIDE_KEYS,
                     f"cohort {data['name']!r}: unknown override {key!r}; "
                     f"pick from {COHORT_OVERRIDE_KEYS}")
        fraction = data.get("fraction")
        _require(isinstance(fraction, (int, float))
                 and not isinstance(fraction, bool)
                 and 0.0 < float(fraction) <= 1.0,
                 f"cohort {data['name']!r}: 'fraction' must be in (0, 1]")
        return cls(name=data["name"], fraction=float(fraction),
                   overrides=tuple(sorted(overrides.items())))

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "fraction": self.fraction,
                "overrides": self.override_map()}


@dataclass(frozen=True)
class MigrationStep:
    """Flip one cohort's visibility model at a virtual time."""

    cohort: str
    to_model: str
    at_s: float

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MigrationStep":
        _require(isinstance(data.get("cohort"), str) and data["cohort"],
                 "migration step needs a 'cohort' name")
        try:
            to_model = VisibilityModel.parse(data.get("to_model", "")).value
        except (ValueError, AttributeError):
            raise PlanError(
                f"migration step for cohort {data['cohort']!r}: bad "
                f"'to_model' {data.get('to_model')!r}") from None
        at_s = data.get("at_s")
        _require(isinstance(at_s, (int, float))
                 and not isinstance(at_s, bool) and float(at_s) >= 0.0,
                 f"migration step for cohort {data['cohort']!r}: "
                 f"'at_s' must be a non-negative number")
        return cls(cohort=data["cohort"], to_model=to_model,
                   at_s=float(at_s))

    def to_dict(self) -> Dict[str, Any]:
        return {"cohort": self.cohort, "to_model": self.to_model,
                "at_s": self.at_s}


@dataclass(frozen=True)
class CanarySpec:
    """Judge one cohort against a baseline; roll back on regression."""

    cohort: str
    baseline: str = STABLE_COHORT
    #: Regression thresholds (see repro.metrics.cohort.compare_cohorts).
    max_abort_rate_delta: float = 0.1
    max_incongruence_delta: float = 0.0
    max_p95_ratio: float = 1.5
    rollback: bool = True

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CanarySpec":
        _require(isinstance(data.get("cohort"), str) and data["cohort"],
                 "canary needs a 'cohort' name")
        kwargs: Dict[str, Any] = {"cohort": data["cohort"]}
        for key in ("baseline",):
            if key in data:
                _require(isinstance(data[key], str) and data[key],
                         f"canary: {key!r} must be a non-empty string")
                kwargs[key] = data[key]
        for key in ("max_abort_rate_delta", "max_incongruence_delta",
                    "max_p95_ratio"):
            if key in data:
                _require(isinstance(data[key], (int, float))
                         and not isinstance(data[key], bool)
                         and float(data[key]) >= 0.0,
                         f"canary: {key!r} must be a non-negative number")
                kwargs[key] = float(data[key])
        if "rollback" in data:
            _require(isinstance(data["rollback"], bool),
                     "canary: 'rollback' must be a boolean")
            kwargs["rollback"] = data["rollback"]
        unknown = set(data) - {"cohort", "baseline",
                               "max_abort_rate_delta",
                               "max_incongruence_delta",
                               "max_p95_ratio", "rollback"}
        _require(not unknown, f"canary: unknown keys {sorted(unknown)}")
        return cls(**kwargs)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def _supervision_from_dict(data: Mapping[str, Any]) -> SupervisionPolicy:
    defaults = SupervisionPolicy()
    kwargs: Dict[str, Any] = {}
    fields = {"max_restarts": int, "backoff_base_s": float,
              "backoff_factor": float, "backoff_cap_s": float,
              "recovery": str}
    unknown = set(data) - set(fields)
    _require(not unknown, f"supervision: unknown keys {sorted(unknown)}")
    for key, cast in fields.items():
        if key not in data:
            continue
        value = data[key]
        if cast is str:
            _require(isinstance(value, str),
                     f"supervision: {key!r} must be a string")
        else:
            _require(isinstance(value, (int, float))
                     and not isinstance(value, bool),
                     f"supervision: {key!r} must be a number")
            value = cast(value)
        kwargs[key] = value
    policy = SupervisionPolicy(**{**asdict(defaults), **kwargs})
    _require(policy.max_restarts >= 1,
             "supervision: 'max_restarts' must be >= 1")
    _require(policy.backoff_base_s >= 0.0 and policy.backoff_cap_s >= 0.0
             and policy.backoff_factor >= 1.0,
             "supervision: backoff parameters must be non-negative "
             "(factor >= 1)")
    _require(policy.recovery in RECOVERY_MODES,
             f"supervision: unknown recovery mode {policy.recovery!r}; "
             f"pick from {RECOVERY_MODES}")
    return policy


@dataclass
class FleetPlan:
    """One versioned control-plane document (see module docstring)."""

    fleet: Dict[str, Any] = field(default_factory=dict)
    cohorts: Tuple[Cohort, ...] = ()
    migrations: Tuple[MigrationStep, ...] = ()
    canary: Optional[CanarySpec] = None
    supervision: SupervisionPolicy = field(
        default_factory=SupervisionPolicy)
    version: str = PLAN_VERSION

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Schema validation; raises :class:`PlanError` on violation."""
        _require(self.version == PLAN_VERSION,
                 f"unsupported plan version {self.version!r}; this "
                 f"build reads {PLAN_VERSION!r}")
        # The fleet section round-trips through FleetConfig.from_plan,
        # which rejects unknown keys and bad values (lazy import: the
        # engine imports this package's program module via the pool).
        from repro.fleet.engine import FleetConfig

        FleetConfig.from_plan(self.fleet)
        names = [cohort.name for cohort in self.cohorts]
        _require(len(names) == len(set(names)),
                 f"duplicate cohort names: {sorted(names)}")
        _require(STABLE_COHORT not in names,
                 f"cohort name {STABLE_COHORT!r} is reserved for the "
                 f"remainder cohort")
        total = sum(cohort.fraction for cohort in self.cohorts)
        _require(total <= 1.0 + 1e-9,
                 f"cohort fractions sum to {total:.3f} > 1")
        for cohort in self.cohorts:
            overrides = cohort.override_map()
            if "model" in overrides:
                VisibilityModel.parse(overrides["model"])
            if "recovery" in overrides:
                _require(overrides["recovery"] in RECOVERY_MODES,
                         f"cohort {cohort.name!r}: unknown recovery "
                         f"mode {overrides['recovery']!r}")
            if "crashes" in overrides:
                crashes = overrides["crashes"]
                _require(isinstance(crashes, int)
                         and not isinstance(crashes, bool)
                         and crashes >= 0,
                         f"cohort {cohort.name!r}: 'crashes' must be a "
                         f"non-negative integer")
        known = set(names) | {STABLE_COHORT}
        migrated = set()
        for step in self.migrations:
            _require(step.cohort in known,
                     f"migration step names unknown cohort "
                     f"{step.cohort!r}; defined: {sorted(known)}")
            _require(step.cohort != STABLE_COHORT,
                     "the stable cohort cannot be migrated (it is the "
                     "comparison baseline)")
            _require(step.cohort not in migrated,
                     f"cohort {step.cohort!r} has more than one "
                     f"migration step")
            migrated.add(step.cohort)
            try:
                VisibilityModel.parse(step.to_model)
            except ValueError:
                raise PlanError(
                    f"migration step for cohort {step.cohort!r}: bad "
                    f"'to_model' {step.to_model!r}") from None
            _require(step.at_s >= 0.0,
                     f"migration step for cohort {step.cohort!r}: "
                     f"'at_s' must be non-negative")
        if self.canary is not None:
            _require(self.canary.cohort in known
                     and self.canary.cohort != STABLE_COHORT,
                     f"canary names unknown cohort "
                     f"{self.canary.cohort!r}")
            _require(self.canary.baseline in known,
                     f"canary baseline {self.canary.baseline!r} is not "
                     f"a cohort")
            _require(self.canary.baseline != self.canary.cohort,
                     "canary cohort and baseline must differ")

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "version": self.version,
            "fleet": dict(self.fleet),
        }
        if self.cohorts:
            payload["cohorts"] = [c.to_dict() for c in self.cohorts]
        if self.migrations:
            payload["migrations"] = [m.to_dict() for m in self.migrations]
        if self.canary is not None:
            payload["canary"] = self.canary.to_dict()
        payload["supervision"] = asdict(self.supervision)
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetPlan":
        _require(isinstance(data, Mapping), "a plan must be a JSON object")
        unknown = set(data) - {"version", "fleet", "cohorts",
                               "migrations", "canary", "supervision"}
        _require(not unknown,
                 f"unknown top-level plan keys {sorted(unknown)}")
        version = data.get("version")
        _require(isinstance(version, str),
                 "plan needs a string 'version' "
                 f"(this build reads {PLAN_VERSION!r})")
        fleet = data.get("fleet", {})
        _require(isinstance(fleet, Mapping),
                 "'fleet' must be an object of FleetConfig fields")
        cohorts_data = data.get("cohorts", [])
        _require(isinstance(cohorts_data, list),
                 "'cohorts' must be a list")
        migrations_data = data.get("migrations", [])
        _require(isinstance(migrations_data, list),
                 "'migrations' must be a list")
        canary_data = data.get("canary")
        supervision_data = data.get("supervision", {})
        _require(isinstance(supervision_data, Mapping),
                 "'supervision' must be an object")
        return cls(
            version=version,
            fleet=dict(fleet),
            cohorts=tuple(Cohort.from_dict(c) for c in cohorts_data),
            migrations=tuple(MigrationStep.from_dict(m)
                             for m in migrations_data),
            canary=CanarySpec.from_dict(canary_data)
            if canary_data is not None else None,
            supervision=_supervision_from_dict(supervision_data),
        )

    @classmethod
    def from_json(cls, text: str) -> "FleetPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PlanError(f"plan is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")


def load_plan(path: str) -> FleetPlan:
    """Read and validate a ``repro-fleet-plan/1`` document."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise PlanError(f"cannot read plan {path!r}: {exc}") from None
    return FleetPlan.from_json(text)


def assign_cohorts(plan: FleetPlan, homes: int,
                   seed: int) -> Dict[int, str]:
    """Deterministic cohort membership: ``{home_id: cohort_name}``.

    Each cohort samples ``round(fraction * homes)`` ids (at least one)
    from the homes not yet claimed, using a seed derived from the fleet
    seed and the cohort *name* — membership is stable under reordering
    of the cohort list and independent of Python's hash randomization.
    Unclaimed homes belong to :data:`STABLE_COHORT`.
    """
    assignment = {home_id: STABLE_COHORT for home_id in range(homes)}
    remaining = list(range(homes))
    # Sorted by name, so membership survives reordering the cohort list
    # (each draw's pool depends on who claimed homes before it).
    for cohort in sorted(plan.cohorts, key=lambda c: c.name):
        count = min(len(remaining),
                    max(1, int(round(cohort.fraction * homes))))
        if not count:
            continue
        rng = random.Random(derive_seed(seed, f"cohort:{cohort.name}"))
        picked = sorted(rng.sample(remaining, count))
        for home_id in picked:
            assignment[home_id] = cohort.name
        chosen = set(picked)
        remaining = [h for h in remaining if h not in chosen]
    return assignment
