"""The deterministic control loop: execute one fleet plan, step by step.

The loop compiles a validated :class:`~repro.fleet.control.plan.
FleetPlan` into per-home :class:`~repro.fleet.control.program.
HomeDirective`s, spawns the fleet's worker pool with the program in the
broadcast context, and journals every step — plan load, cohort
assignment, pool spawns, each home's supervision/migration ops, the
canary verdict and any rollback — into an :class:`~repro.fleet.control.
opslog.OpsLog`.  Two runs of the same plan produce byte-identical ops
logs and result JSON; the CI ``control`` job enforces that with
``cmp``.

Worker-count clamping is re-queried per spawn through
:meth:`FleetEngine.pool_workers`: the canary rollback re-spawns over
the canary homes only, and a stale fleet-wide worker count would claim
idle workers (and, under pinning/shm, CPU slots and slabs) for chunks
that do not exist.
"""

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import PlanError
from repro.fleet.control.opslog import OpsLog
from repro.fleet.control.plan import (STABLE_COHORT, FleetPlan,
                                      assign_cohorts, load_plan)
from repro.fleet.control.program import (ControlProgram, HomeDirective,
                                         SupervisionPolicy)
from repro.fleet.engine import FleetConfig, FleetEngine
from repro.fleet.pool import POOLS, plan_chunks
from repro.metrics.cohort import cohort_aggregates, compare_cohorts


@dataclass
class ControlResult:
    """Everything one plan application produced."""

    plan: FleetPlan
    config: FleetConfig
    rows: List[Dict[str, Any]]          # sorted by home_id
    cohorts: Dict[str, Dict[str, Any]]  # cohort -> aggregate
    canary: Optional[Dict[str, Any]]    # compare_cohorts verdict
    rolled_back: bool
    ops: OpsLog = field(default_factory=OpsLog)

    @property
    def failed_homes(self) -> List[int]:
        return [row["home_id"] for row in self.rows if row.get("failed")]

    @property
    def oracle_violations(self) -> int:
        return sum(len(row.get("oracle_violations", []))
                   for row in self.rows)

    @property
    def migrated_homes(self) -> List[int]:
        return [row["home_id"] for row in self.rows
                if row.get("migrated")]

    @property
    def ok(self) -> bool:
        """Oracle-clean and nothing abandoned."""
        return not self.failed_homes and all(
            row.get("oracle_ok", True) for row in self.rows)

    def to_json(self, per_home: bool = False, indent: int = 2) -> str:
        """Deterministic JSON: same plan ⇒ byte-identical output."""
        payload: Dict[str, Any] = {
            "plan": self.plan.to_dict(),
            "homes": len(self.rows),
            "cohorts": self.cohorts,
            "canary": self.canary,
            "rolled_back": self.rolled_back,
            "migrated": len(self.migrated_homes),
            "restarts": sum(row.get("restarts", 0) for row in self.rows),
            "failed": self.failed_homes,
            "oracle": {"ok": self.ok,
                       "violations": self.oracle_violations},
            "ops": len(self.ops),
        }
        if per_home:
            payload["rows"] = [
                {key: value for key, value in row.items()
                 if key not in ("latencies", "ops")}
                for row in self.rows]
        return json.dumps(payload, sort_keys=True, indent=indent)


class ControlLoop:
    """Execute one :class:`FleetPlan` deterministically."""

    def __init__(self, plan: FleetPlan) -> None:
        plan.validate()
        self.plan = plan
        self.config = FleetConfig.from_plan(plan.fleet)
        # The control plane owns its spawns: layout-bearing transports
        # and streaming partials belong to plain `repro fleet` runs.
        if self.config.backend not in POOLS:
            raise PlanError(
                f"control plans need a pool backend "
                f"({sorted(POOLS)}); got {self.config.backend!r}")
        for key, value, allowed in (
                ("aggregate", self.config.aggregate, "exact"),
                ("transport", self.config.transport, "pickle"),
                ("pin", self.config.pin, "none"),
                ("wal_dir", self.config.wal_dir, ""),
                ("profile_dir", self.config.profile_dir, "")):
            if value != allowed:
                raise PlanError(
                    f"control plans do not support fleet.{key}="
                    f"{value!r} (only {allowed!r})")
        self.engine = FleetEngine(self.config)
        self.log = OpsLog()

    # -- compilation ---------------------------------------------------------

    def _cohort_settings(self, cohort: str) -> Dict[str, Any]:
        """The resolved per-home settings of one cohort."""
        config = self.config
        settings = {"model": config.model,
                    "scheduler": config.scheduler,
                    "execution": config.execution,
                    "crashes": config.crashes,
                    "recovery": config.recovery}
        for named in self.plan.cohorts:
            if named.name == cohort:
                settings.update(named.override_map())
        return settings

    def _compile(self, assignment: Dict[int, str],
                 home_ids: Optional[List[int]] = None,
                 stable_override: bool = False) -> ControlProgram:
        """Directives for ``home_ids`` (default: the whole fleet).

        With ``stable_override`` (the rollback path) every directive
        gets the stable cohort's settings and no migration step,
        whatever cohort the home belongs to.
        """
        migrate_by_cohort = {step.cohort: step
                             for step in self.plan.migrations}
        directives: List[HomeDirective] = []
        wanted = None if home_ids is None else set(home_ids)
        for home_id, _scenario, _seed in self.engine.tasks():
            if wanted is not None and home_id not in wanted:
                continue
            cohort = assignment[home_id]
            source = STABLE_COHORT if stable_override else cohort
            settings = self._cohort_settings(source)
            step = None if stable_override \
                else migrate_by_cohort.get(cohort)
            directives.append(HomeDirective(
                home_id=home_id, cohort=cohort,
                model=settings["model"],
                scheduler=settings["scheduler"],
                execution=settings["execution"],
                crashes=settings["crashes"],
                recovery=settings["recovery"],
                migrate_to=step.to_model if step else "",
                migrate_at=step.at_s if step else 0.0))
        return ControlProgram(directives=tuple(directives),
                              supervision=self.plan.supervision)

    # -- execution -----------------------------------------------------------

    def _spawn(self, tasks: List[Tuple[int, str, int]],
               program: ControlProgram,
               phase: str) -> List[Dict[str, Any]]:
        """One pool spawn over ``tasks``; folds worker ops into the log.

        The worker count is re-queried against *this* spawn's chunk
        plan (:meth:`FleetEngine.pool_workers`) — never reused from an
        earlier, larger spawn.
        """
        config = self.config
        chunks = plan_chunks(tasks, config.effective_chunk())
        workers = self.engine.pool_workers(len(chunks))
        self.log.record("pool-spawned", phase=phase,
                        backend=config.backend, workers=workers,
                        chunks=len(chunks), homes=len(tasks))
        context = replace(self.engine.context(), control=program)
        pool = POOLS[config.backend](workers)
        results = pool.run(context, chunks)
        rows = sorted((row for result in results for row in result.rows),
                      key=lambda row: row["home_id"])
        for row in rows:
            self.log.extend(row.pop("ops", []))
        return rows

    def _judge_canary(self, aggregates: Dict[str, Dict[str, Any]]
                      ) -> Optional[Dict[str, Any]]:
        canary = self.plan.canary
        if canary is None:
            return None
        if canary.cohort not in aggregates or \
                canary.baseline not in aggregates:
            missing = [name for name in (canary.cohort, canary.baseline)
                       if name not in aggregates]
            return {"regressed": True,
                    "reasons": [f"cohort(s) {missing} produced no "
                                f"healthy homes"],
                    "deltas": {}}
        return compare_cohorts(
            aggregates[canary.cohort], aggregates[canary.baseline],
            max_abort_rate_delta=canary.max_abort_rate_delta,
            max_incongruence_delta=canary.max_incongruence_delta,
            max_p95_ratio=canary.max_p95_ratio)

    def run(self) -> ControlResult:
        """Apply the whole plan; every step lands in :attr:`log`."""
        plan, config, log = self.plan, self.config, self.log
        log.record("plan-loaded", version=plan.version,
                   homes=config.homes, seed=config.seed,
                   model=config.model, scenario=config.scenario,
                   cohorts=[c.name for c in plan.cohorts],
                   migrations=[m.to_dict() for m in plan.migrations],
                   canary=plan.canary.to_dict() if plan.canary else None,
                   supervision={
                       "max_restarts": plan.supervision.max_restarts,
                       "recovery": plan.supervision.recovery})
        assignment = assign_cohorts(plan, config.homes, config.seed)
        members: Dict[str, List[int]] = {}
        for home_id, cohort in sorted(assignment.items()):
            members.setdefault(cohort, []).append(home_id)
        log.record("cohorts-assigned",
                   cohorts={name: members[name]
                            for name in sorted(members)})
        for step in plan.migrations:
            log.record("migration-planned", cohort=step.cohort,
                       to_model=step.to_model, at_s=step.at_s,
                       homes=len(members.get(step.cohort, [])))

        program = self._compile(assignment)
        rows = self._spawn(self.engine.tasks(), program, phase="fleet")

        aggregates = cohort_aggregates(rows)
        for name in sorted(aggregates):
            agg = aggregates[name]
            log.record("cohort-metrics", phase="fleet", cohort=name,
                       homes=agg["homes"],
                       abort_rate=agg["abort_rate"],
                       final_incongruence=agg["final_incongruence"],
                       lat_p95=agg["latency"]["p95"])

        verdict = self._judge_canary(aggregates)
        rolled_back = False
        if verdict is not None:
            log.record("canary-verdict", cohort=plan.canary.cohort,
                       baseline=plan.canary.baseline, **verdict)
            if verdict["regressed"] and plan.canary.rollback:
                rolled_back = True
                canary_ids = members.get(plan.canary.cohort, [])
                log.record("rollback", cohort=plan.canary.cohort,
                           homes=len(canary_ids))
                rollback_tasks = [task for task in self.engine.tasks()
                                  if task[0] in set(canary_ids)]
                rollback_program = self._compile(
                    assignment, home_ids=canary_ids,
                    stable_override=True)
                rollback_rows = self._spawn(rollback_tasks,
                                            rollback_program,
                                            phase="rollback")
                replaced = {row["home_id"]: row for row in rollback_rows}
                rows = sorted(
                    [replaced.get(row["home_id"], row) for row in rows],
                    key=lambda row: row["home_id"])
                aggregates = cohort_aggregates(rows)
                for name in sorted(aggregates):
                    agg = aggregates[name]
                    log.record("cohort-metrics", phase="post-rollback",
                               cohort=name, homes=agg["homes"],
                               abort_rate=agg["abort_rate"],
                               final_incongruence=agg[
                                   "final_incongruence"],
                               lat_p95=agg["latency"]["p95"])

        result = ControlResult(plan=plan, config=config, rows=rows,
                               cohorts=aggregates, canary=verdict,
                               rolled_back=rolled_back, ops=log)
        log.record("complete", homes=len(rows),
                   migrated=len(result.migrated_homes),
                   restarts=sum(row.get("restarts", 0) for row in rows),
                   failed=result.failed_homes,
                   oracle_ok=result.ok,
                   rolled_back=rolled_back)
        return result


def apply_plan(plan: Union[str, FleetPlan],
               ops_path: str = "") -> ControlResult:
    """One-call convenience: load (if a path), execute, spool the log."""
    if isinstance(plan, str):
        plan = load_plan(plan)
    result = ControlLoop(plan).run()
    if ops_path:
        result.ops.save(ops_path)
    return result
