"""Worker-side controlled execution: supervise + migrate one home.

The control loop's counterpart of :func:`repro.fleet.worker.run_home`.
A controlled home owns a full hub lifecycle: the seed-derived hub-crash
chaos schedule (the fault source, same draw as plain durable fleets),
supervised restarts with bounded (journaled, virtual) backoff, an
optional live model migration at its directive's virtual time, and a
closing congruence-oracle pass.  Everything the supervisor does lands
in the row's ``ops`` list — plain JSON, no wall clock — which the
parent :class:`~repro.fleet.control.loop.ControlLoop` folds into the
deterministic ops journal.
"""

import dataclasses
from typing import Any, Dict, List

from repro.errors import MigrationError, RecoveryError
from repro.fleet.sharding import HomeSpec
from repro.fleet.control.program import HomeDirective, SupervisionPolicy
from repro.fleet.worker import _CRASH_HORIZON_S, _crash_times, home_row
from repro.hub.safehome import SafeHome
from repro.metrics.oracle import check_run
from repro.workloads.fleet_mix import build_fleet_workload


class _Abandoned(Exception):
    """Internal: the supervisor gave up on this home."""


def _now(home: SafeHome) -> float:
    return round(home.sim.now, 6)


def _heal(home: SafeHome, policy: SupervisionPolicy, spec: HomeSpec,
          ops: List[Dict[str, Any]], restarts: int) -> int:
    """Restart a crashed home until healthy or out of budget.

    Each attempt journals the virtual backoff the supervisor applies
    (storm damping) and the post-restart health probe.  Returns the
    updated total restart count; raises :class:`_Abandoned` when the
    budget is exhausted.
    """
    while home.crashed:
        restarts += 1
        if restarts > policy.max_restarts:
            ops.append({"op": "abandon", "home": spec.home_id,
                        "t": _now(home), "restarts": restarts - 1})
            raise _Abandoned(
                f"restart budget exhausted ({policy.max_restarts})")
        ops.append({"op": "restart", "home": spec.home_id,
                    "t": _now(home), "attempt": restarts,
                    "backoff_s": policy.backoff_s(restarts),
                    "mode": policy.recovery})
        try:
            report = home.recover(mode=policy.recovery)
        except RecoveryError as exc:
            # recover() left the hub crashed with its WAL intact, so
            # the next attempt retries deterministically (and, being
            # deterministic, fails the same way until the budget runs
            # out — exactly what the abandon path is for).
            ops.append({"op": "restart-failed", "home": spec.home_id,
                        "t": _now(home), "attempt": restarts,
                        "error": str(exc)})
            continue
        ops.append({"op": "probe", "home": spec.home_id,
                    "t": _now(home), "healthy": not home.crashed,
                    "replayed_events": report.replayed_events,
                    "aborted": len(report.aborted)})
    return restarts


def _failed_row(spec: HomeSpec, reason: str) -> Dict[str, Any]:
    """A zeroed row for an abandoned home (excluded from aggregates)."""
    return {
        "home_id": spec.home_id,
        "scenario": spec.scenario,
        "model": spec.model,
        "seed": spec.seed,
        "routines": 0,
        "committed": 0,
        "aborted": 0,
        "abort_rate": 0.0,
        "latencies": [],
        "lat_p50": 0.0,
        "lat_p95": 0.0,
        "temporary_incongruence": 0.0,
        "final_congruent": None,
        "makespan": 0.0,
        "failed": reason,
    }


def run_controlled_home(spec: HomeSpec, directive: HomeDirective,
                        policy: SupervisionPolicy) -> Dict[str, Any]:
    """Run one home under the control plane; return its metrics row.

    The timeline interleaves the spec's seed-derived crash schedule
    with the directive's migration step in virtual-time order.  Crashes
    are healed by :func:`_heal`; an unfired crash (the queue drained
    first) is cancelled before migrating so the replayed history stays
    crash-free past that point.  The row carries ``cohort``,
    ``restarts``, ``migrated``, the oracle verdict and the ``ops``
    journal on top of the standard fleet columns.
    """
    # The directive carries the home's *resolved* cohort settings;
    # they override whatever fleet-wide values the spec arrived with.
    spec = dataclasses.replace(
        spec, model=directive.model, scheduler=directive.scheduler,
        execution=directive.execution, crashes=directive.crashes,
        recovery=directive.recovery)
    workload = build_fleet_workload(spec.scenario, seed=spec.seed)
    durable = bool(spec.crashes) or bool(directive.migrate_to)
    home = SafeHome(visibility=spec.model, scheduler=spec.scheduler,
                    execution=spec.execution, seed=spec.seed,
                    durability=durable)
    home.load_workload(workload)

    horizon = workload.horizon_hint or _CRASH_HORIZON_S
    # Ties order crashes before the migration step ("crash" < "migrate").
    events = [(t, "crash") for t in _crash_times(spec, horizon)]
    if directive.migrate_to:
        events.append((directive.migrate_at, "migrate"))
    events.sort()

    ops: List[Dict[str, Any]] = []
    restarts = 0
    crashes_fired = 0
    replayed_events = 0
    recovery_aborted = 0
    migrated = False
    drained = False
    failed = ""
    try:
        for at, kind in events:
            if kind == "crash":
                if drained:
                    # An earlier (smaller) crash time never fired: the
                    # queue is gone, later times cannot fire either.
                    continue
                home.crash(at=at)
                home.run(max_events=spec.max_events)
                if not home.crashed:
                    drained = True
                    continue
                crashes_fired += 1
                ops.append({"op": "crash", "home": spec.home_id,
                            "t": _now(home)})
                before = len(home.recoveries)
                restarts = _heal(home, policy, spec, ops, restarts)
                for report in home.recoveries[before:]:
                    replayed_events += report.replayed_events
                    recovery_aborted += len(report.aborted)
            else:
                home.run(until=at, max_events=spec.max_events)
                if home.crashed:       # pragma: no cover - defensive
                    restarts = _heal(home, policy, spec, ops, restarts)
                # A scheduled-but-unfired crash would replay as pending
                # under the target model; withdraw it first.
                home.cancel_crash()
                report = home.migrate(directive.migrate_to)
                migrated = True
                ops.append({"op": "migrate", "home": spec.home_id,
                            **report.row()})
    except _Abandoned as exc:
        failed = str(exc)
    except MigrationError as exc:
        failed = f"migration failed: {exc}"
        ops.append({"op": "abandon", "home": spec.home_id,
                    "t": _now(home), "error": str(exc)})

    if failed:
        row = _failed_row(spec, failed)
        row["oracle_ok"] = False
        row["oracle_violations"] = []
    else:
        result = home.run(max_events=spec.max_events)
        report = home.report(check_final=spec.check_final,
                             exhaustive_limit=spec.exhaustive_limit)
        row = home_row(spec, result, report)
        oracle = check_run(result, home.initial,
                           exhaustive_limit=spec.exhaustive_limit)
        row["oracle_ok"] = oracle.ok
        row["oracle_violations"] = [v.to_dict()
                                    for v in oracle.violations]
    row["cohort"] = directive.cohort
    row["restarts"] = restarts
    row["migrated"] = directive.migrate_to if migrated else ""
    if durable:
        row["hub_crashes"] = crashes_fired
        row["hub_replayed_events"] = replayed_events
        row["hub_recovery_aborted"] = recovery_aborted
    row["ops"] = ops
    return row
