"""The compiled form of a fleet plan: per-home marching orders.

A :class:`ControlProgram` is what the :class:`~repro.fleet.control.
loop.ControlLoop` broadcasts to the worker pool (inside the
:class:`~repro.fleet.pool.WorkerContext`): a flat tuple of
:class:`HomeDirective` records — one per home that needs controlled
execution — plus the fleet-wide :class:`SupervisionPolicy`.  Everything
here is a small frozen dataclass so the program pickles cheaply into
process workers and is hash-stable for the ops journal.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class SupervisionPolicy:
    """How the supervisor restarts crashed homes.

    Backoff is *virtual*: the supervisor journals the delay it would
    apply (``min(cap, base * factor**(attempt-1))``) instead of
    sleeping, which keeps the control loop deterministic and fast while
    still exercising — and testing — the storm-damping schedule.
    """

    #: Give up on a home after this many restarts (it is reported as
    #: ``failed`` and excluded from cohort aggregates).
    max_restarts: int = 3
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    backoff_cap_s: float = 8.0
    #: Recovery mode handed to ``SafeHome.recover`` ("replay" resumes
    #: everything; "policy" lets each visibility model decide).
    recovery: str = "replay"

    def backoff_s(self, attempt: int) -> float:
        """The journaled delay before restart ``attempt`` (1-based)."""
        delay = self.backoff_base_s * (self.backoff_factor
                                       ** max(0, attempt - 1))
        return round(min(self.backoff_cap_s, delay), 6)


@dataclass(frozen=True)
class HomeDirective:
    """One home's resolved orders: cohort settings plus its migration
    step (``migrate_to == ""`` means no migration)."""

    home_id: int
    cohort: str
    model: str
    scheduler: str
    execution: str
    crashes: int
    recovery: str
    migrate_to: str = ""
    migrate_at: float = 0.0


@dataclass(frozen=True)
class ControlProgram:
    """Every directive of one control-loop spawn, keyed by home id."""

    directives: Tuple[HomeDirective, ...]
    supervision: SupervisionPolicy = field(default_factory=SupervisionPolicy)

    def directive_for(self, home_id: int) -> Optional[HomeDirective]:
        index = self.__dict__.get("_by_home")
        if index is None:
            index = {d.home_id: d for d in self.directives}
            # Frozen dataclasses still carry __dict__; memoize the
            # lookup table there (rebuilt lazily after unpickling).
            object.__setattr__(self, "_by_home", index)
        return index.get(home_id)

    def __getstate__(self) -> Dict:
        return {"directives": self.directives,
                "supervision": self.supervision}

    def __setstate__(self, state: Dict) -> None:
        object.__setattr__(self, "directives", state["directives"])
        object.__setattr__(self, "supervision", state["supervision"])
