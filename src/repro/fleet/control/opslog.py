"""The control loop's journaled ops log.

Every step the :class:`~repro.fleet.control.loop.ControlLoop` takes —
plan loaded, cohorts assigned, pools spawned, per-home supervision and
migration events, canary verdicts, rollbacks — lands here as one JSON
object with a centrally assigned sequence number.  The log is
**deterministic**: no wall-clock timestamps, no pids, no paths; two
runs of the same plan produce byte-identical JSONL (the CI ``control``
job ``cmp``s them), which makes an ops log *replayable* evidence of
what the fleet did.
"""

import json
from typing import Any, Dict, Iterator, List


class OpsLog:
    """An append-only, deterministic journal of control-plane steps."""

    def __init__(self) -> None:
        self.entries: List[Dict[str, Any]] = []

    def record(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Append one entry; ``seq`` is assigned here, centrally."""
        entry: Dict[str, Any] = {"seq": len(self.entries), "op": op}
        entry.update(fields)
        self.entries.append(entry)
        return entry

    def extend(self, ops: List[Dict[str, Any]]) -> None:
        """Fold worker-side op dicts in, re-sequencing centrally."""
        for op in ops:
            fields = {k: v for k, v in op.items()
                      if k not in ("op", "seq")}
            self.record(op["op"], **fields)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.entries)

    def counts(self) -> Dict[str, int]:
        """Entry counts by op type."""
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry["op"]] = counts.get(entry["op"], 0) + 1
        return counts

    # -- serialization (JSONL: one op per line, sorted keys) ---------------

    def to_jsonl(self) -> str:
        return "".join(json.dumps(entry, sort_keys=True) + "\n"
                       for entry in self.entries)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    @classmethod
    def load(cls, path: str) -> "OpsLog":
        log = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    log.entries.append(json.loads(line))
        return log
