"""Seeded random streams.

Every stochastic component (arrivals, durations, network jitter, failure
times) draws from its own named stream so that changing one workload knob
does not perturb unrelated randomness between runs.
"""

import random
import zlib
from typing import Dict, Union

_MASK64 = (1 << 64) - 1


def mix64(value: int) -> int:
    """SplitMix64 finalizer: map an integer to a well-mixed 64-bit word.

    Used to derive statistically independent child seeds from a master
    seed (fleet runs split one seed into thousands of per-home seeds).
    Pure and platform-stable, so derived seeds never depend on hashing
    state, process boundaries or iteration order.
    """
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def derive_seed(seed: int, key: Union[int, str]) -> int:
    """A child seed from ``seed`` and a split key, stable everywhere.

    String keys hash via crc32 (like stream names) so the result is
    independent of PYTHONHASHSEED; the combined word then goes through
    :func:`mix64` so adjacent keys yield uncorrelated seeds.  The full
    63-bit range is kept: truncating to 32 bits would birthday-collide
    per-home seeds at the fleet sizes this layer exists to serve.
    """
    if isinstance(key, str):
        key = zlib.crc32(key.encode("utf-8"))
    return mix64((seed & _MASK64) ^ (mix64(key & _MASK64))) & 0x7FFFFFFFFFFFFFFF


class RandomStreams:
    """A family of independently seeded :class:`random.Random` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the named stream."""
        if name not in self._streams:
            # Derive a per-stream seed that is stable across processes
            # (crc32, unlike hash(), ignores PYTHONHASHSEED) and
            # independent of creation order.
            derived = zlib.crc32(name.encode("utf-8")) ^ (self.seed & 0xFFFFFFFF)
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    def reseed(self, seed: int) -> None:
        """Re-key the whole family in place (fleet home reuse).

        Streams are created lazily from ``(name, seed)`` only, so
        dropping the cache and swapping the seed is equivalent to
        constructing a fresh ``RandomStreams(seed)``.
        """
        self.seed = seed
        self._streams.clear()

    def spawn(self, salt: int) -> "RandomStreams":
        """A new family for an independent trial (``salt`` = trial index)."""
        return RandomStreams(seed=(self.seed * 1_000_003 + salt) & 0x7FFFFFFF)

    def split(self, key: Union[int, str]) -> "RandomStreams":
        """A new, statistically independent family keyed by ``key``.

        Unlike :meth:`spawn` (linear in the salt, fine for small trial
        counts), ``split`` mixes through SplitMix64 so thousands of
        sibling families — one per home in a fleet — stay uncorrelated.
        """
        return RandomStreams(seed=derive_seed(self.seed, key))


def positive_normal(rng: random.Random, mean: float, sigma: float,
                    floor: float) -> float:
    """Sample Normal(mean, sigma) truncated below at ``floor``.

    The paper draws command durations from normal distributions (Table 3,
    "ND"); physical durations cannot be negative, hence the floor.
    """
    value = rng.normalvariate(mean, sigma)
    return max(floor, value)


def zipf_weights(n: int, alpha: float) -> list[float]:
    """Unnormalised Zipf popularity weights for ranks 1..n.

    ``alpha = 0`` gives a uniform distribution; larger alpha skews access
    towards low-rank (popular) devices, matching Table 3's α knob.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    return [1.0 / ((rank + 1) ** alpha) for rank in range(n)]
