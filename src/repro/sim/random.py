"""Seeded random streams.

Every stochastic component (arrivals, durations, network jitter, failure
times) draws from its own named stream so that changing one workload knob
does not perturb unrelated randomness between runs.
"""

import random
import zlib
from typing import Dict


class RandomStreams:
    """A family of independently seeded :class:`random.Random` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the named stream."""
        if name not in self._streams:
            # Derive a per-stream seed that is stable across processes
            # (crc32, unlike hash(), ignores PYTHONHASHSEED) and
            # independent of creation order.
            derived = zlib.crc32(name.encode("utf-8")) ^ (self.seed & 0xFFFFFFFF)
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    def spawn(self, salt: int) -> "RandomStreams":
        """A new family for an independent trial (``salt`` = trial index)."""
        return RandomStreams(seed=(self.seed * 1_000_003 + salt) & 0x7FFFFFFF)


def positive_normal(rng: random.Random, mean: float, sigma: float,
                    floor: float) -> float:
    """Sample Normal(mean, sigma) truncated below at ``floor``.

    The paper draws command durations from normal distributions (Table 3,
    "ND"); physical durations cannot be negative, hence the floor.
    """
    value = rng.normalvariate(mean, sigma)
    return max(floor, value)


def zipf_weights(n: int, alpha: float) -> list[float]:
    """Unnormalised Zipf popularity weights for ranks 1..n.

    ``alpha = 0`` gives a uniform distribution; larger alpha skews access
    towards low-rank (popular) devices, matching Table 3's α knob.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    return [1.0 / ((rank + 1) ** alpha) for rank in range(n)]
