"""The discrete-event simulator driving all SafeHome experiments."""

from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue

# Cumulative events fired by every Simulator in this process, batched in
# once per run()/step() call so the hot loop never touches a global.
# The benchmark harness diffs this around a timed call to get events/sec
# (process-pool children keep their own counters — fleet benchmarks
# measure events/sec on the serial backend).
_TOTAL_EVENTS = 0


def total_events_processed() -> int:
    """Process-wide cumulative event count (bench instrumentation)."""
    return _TOTAL_EVENTS


class Simulator:
    """Deterministic discrete-event executor.

    Typical use::

        sim = Simulator()
        sim.call_at(5.0, hub.tick)
        sim.call_after(0.1, device.apply, "ON")
        sim.run()

    Event order is total: time first, then scheduling order, so two runs
    with the same seeds produce identical traces.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.clock = VirtualClock(start)
        self._queue = EventQueue()
        self._running = False
        self._processed = 0
        # Fired after each event completes (between events, never inside
        # a callback).  The durability layer checkpoints here so captured
        # state is always at an event boundary — which is also the only
        # granularity at which `stop_after_events` can stop, so replay
        # can reach the exact same boundary deterministically.
        self._post_event_hooks: List[Callable[[], None]] = []

    def reset(self, start: float = 0.0) -> None:
        """Return this simulator to its just-constructed state.

        Used by the fleet's :class:`~repro.fleet.worker.HomeFactory` to
        reuse one simulator across homes instead of allocating a fresh
        clock + queue per home.  Equivalent to ``Simulator(start)`` for
        all observable behavior (the reset-vs-fresh property test in
        ``tests/test_fleet.py`` pins this).
        """
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self.clock.now = float(start)
        self._queue = EventQueue()
        self._processed = 0
        self._post_event_hooks = []

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def next_event_time(self) -> Optional[float]:
        """Virtual time of the next pending event, ``None`` when idle.

        Skips cancelled entries; used by real-time pacing to sleep
        exactly until the next due event instead of busy-polling.
        """
        return self._queue.peek_time()

    def call_at(self, when: float, callback: Callable[..., Any],
                *args: Any, label: str = "") -> Event:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event in the past ({when} < {self.now})"
            )
        return self._queue.push(when, callback, args, label)

    def call_after(self, delay: float, callback: Callable[..., Any],
                   *args: Any, label: str = "") -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self._queue.push(self.now + delay, callback, args, label)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (no-op on ``None``/fired)."""
        if event is None or not event.pending:
            return
        event.cancel()
        self._queue.notify_cancel()

    def add_post_event_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback fired after every processed event."""
        self._post_event_hooks.append(hook)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None,
            stop_after_events: Optional[int] = None,
            advance_clock: bool = True) -> float:
        """Process events until the queue drains or a bound is hit.

        Args:
            until: stop once the next event is strictly later than this
                time (the clock is still advanced to ``until``).
            max_events: safety valve against runaway simulations.
            stop_after_events: stop cleanly once the *total* processed
                count (:attr:`events_processed`, cumulative across run
                calls) reaches this value — the hub-crash injection
                point, exactly replayable because the counter is part of
                the deterministic trace.
            advance_clock: when False, a run whose queue drains *before*
                ``until`` keeps the clock at the last event instead of
                advancing to ``until`` (used by crash bounds: a crash
                time past the natural end must not inflate makespan).
                Runs stopped mid-queue still advance to ``until``.

        Returns:
            The virtual time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        if stop_after_events is not None and \
                self._processed >= stop_after_events:
            return self.now
        self._running = True
        started_processed = self._processed
        queue = self._queue
        dispatch = self._dispatch
        bounded = (stop_after_events is not None
                   or max_events is not None)
        fast = until is None and stop_after_events is None and \
            not self._post_event_hooks
        try:
            if fast:
                # The dominant fleet shape: run-to-drain with no hooks
                # and no event-index stop (``max_events`` stays honored
                # as the livelock valve).  The per-event sequence is
                # _dispatch minus the hook check, with the queue pop,
                # clock advance and event fire inlined (heap order
                # guarantees the monotonicity advance_to() re-checks).
                clock = self.clock
                pop = queue.pop
                while queue._live:
                    event = pop()
                    clock.now = event.time
                    callback, event.callback = event.callback, None
                    callback(*event.args)
                    self._processed += 1
                    if max_events is not None and \
                            self._processed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            f"likely a livelock")
                    if self._post_event_hooks:
                        # A callback registered a hook mid-run: leave
                        # the fast path for the remaining events.
                        fast = False
                        break
                if fast:
                    return self.now
            while queue:
                if until is not None:
                    next_time = queue.peek_time()
                    if next_time is None:
                        break
                    if next_time > until:
                        self.clock.advance_to(until)
                        return self.now
                dispatch(queue.pop())
                if bounded:
                    if stop_after_events is not None and \
                            self._processed >= stop_after_events:
                        return self.now
                    if max_events is not None and \
                            self._processed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            f"likely a livelock")
            if advance_clock and until is not None and until > self.now:
                self.clock.advance_to(until)
            return self.now
        finally:
            self._running = False
            global _TOTAL_EVENTS
            _TOTAL_EVENTS += self._processed - started_processed

    def _dispatch(self, event: Event) -> None:
        """Fire one event: advance the clock, run the callback, bump the
        processed count, dispatch post-event hooks.

        The per-event sequence for :meth:`run`'s bounded/hooked loop and
        :meth:`step`, so those two can never drift (the durability
        layer's crash-at-boundary semantics depend on them matching —
        and any run with post-event hooks, durability included, goes
        through here).  :meth:`run`'s no-hook fast loop inlines this
        exact sequence minus the hook dispatch; a change to the
        sequence must be mirrored there (the dispatch-unification test
        in ``tests/test_bench.py`` compares the traces).  The
        empty-hooks case is hoisted: no loop setup when nothing is
        registered.
        """
        self.clock.advance_to(event.time)
        event.fire()
        self._processed += 1
        hooks = self._post_event_hooks
        if hooks:
            for hook in hooks:
                hook()

    def step(self) -> bool:
        """Process exactly one event. Returns False when queue is empty."""
        if not self._queue:
            return False
        self._dispatch(self._queue.pop())
        global _TOTAL_EVENTS
        _TOTAL_EVENTS += 1
        return True
