"""Discrete-event simulation kernel used by every SafeHome substrate.

The kernel is deliberately small: a virtual clock, a cancellable event
queue, and seeded random-stream helpers.  Controllers and devices are
written as event-driven state machines on top of :class:`Simulator`.
"""

from repro.sim.clock import VirtualClock
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.random import RandomStreams

__all__ = ["VirtualClock", "Simulator", "Event", "EventQueue", "RandomStreams"]
