"""Virtual clock for discrete-event simulation.

All SafeHome timing (command durations, detector ping periods, lease
timeouts) is expressed in virtual seconds.  The clock only moves when the
simulator processes events, which makes every experiment deterministic
and lets the benchmarks sweep hour-long scenarios in milliseconds.
"""

from repro.errors import SimulationError


class VirtualClock:
    """Monotonically advancing simulated time, in seconds.

    ``now`` is a plain attribute (read on every scheduling decision);
    advance through :meth:`advance_to` so monotonicity stays enforced.
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises:
            SimulationError: if ``when`` is in the past.  Equal times are
                allowed because many events can share a timestamp.
        """
        if when < self.now:
            raise SimulationError(
                f"clock cannot move backwards: {when} < {self.now}"
            )
        self.now = when

    def __repr__(self) -> str:
        return f"VirtualClock(now={self.now:.6f})"
