"""Virtual clock for discrete-event simulation.

All SafeHome timing (command durations, detector ping periods, lease
timeouts) is expressed in virtual seconds.  The clock only moves when the
simulator processes events, which makes every experiment deterministic
and lets the benchmarks sweep hour-long scenarios in milliseconds.
"""

from repro.errors import SimulationError


class VirtualClock:
    """Monotonically advancing simulated time, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises:
            SimulationError: if ``when`` is in the past.  Equal times are
                allowed because many events can share a timestamp.
        """
        if when < self._now:
            raise SimulationError(
                f"clock cannot move backwards: {when} < {self._now}"
            )
        self._now = when

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f})"
