"""Event objects and the cancellable priority queue behind the simulator.

Hot-path notes (measured by the ``sim_dispatch`` benchmark): ``Event``
is a ``__slots__`` class — the simulator allocates one per scheduled
callback, so a dict-less layout and a plain ``__init__`` matter.  The
heap stores ``(time, seq, event)`` triples so ordering is decided by
C-level tuple comparison instead of a Python ``__lt__`` per sift, and
the queue keeps a pending-cancellation count so the common case (no
cancelled event in the heap) pops without scanning.
"""

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    Events order by ``(time, seq)`` so that events scheduled earlier at
    the same timestamp run first (FIFO tie-break), which keeps runs
    deterministic.
    """

    __slots__ = ("time", "seq", "callback", "args", "label", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Optional[Callable[..., Any]],
                 args: tuple = (), label: str = "",
                 cancelled: bool = False) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.label = label
        self.cancelled = cancelled

    def cancel(self) -> None:
        """Mark this event so the simulator skips it."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        return not self.cancelled and self.callback is not None

    def fire(self) -> None:
        if self.callback is None:
            raise SimulationError("event has no callback")
        callback, self.callback = self.callback, None
        callback(*self.args)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else (
            "pending" if self.callback is not None else "fired")
        return (f"Event(t={self.time:g}, seq={self.seq}, {state}"
                + (f", {self.label!r}" if self.label else "") + ")")


class EventQueue:
    """Min-heap of :class:`Event` with lazy cancellation.

    ``_cancelled`` counts cancelled events still buried in the heap;
    while it is zero, :meth:`pop` and :meth:`peek_time` skip the
    lazy-cancellation scan entirely (the fast path for workloads that
    never cancel).
    """

    __slots__ = ("_heap", "_counter", "_live", "_cancelled")

    def __init__(self) -> None:
        self._heap: list = []        # (time, seq, Event) triples
        self._counter = itertools.count()
        self._live = 0
        self._cancelled = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, callback: Callable[..., Any],
             args: tuple = (), label: str = "") -> Event:
        seq = next(self._counter)
        event = Event(time, seq, callback, args, label)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def pop(self) -> Event:
        """Pop the earliest non-cancelled event.

        Raises:
            SimulationError: when no live event remains.
        """
        heap = self._heap
        if not self._cancelled:
            if not heap:
                raise SimulationError("pop from empty event queue")
            self._live -= 1
            return heapq.heappop(heap)[2]
        while heap:
            event = heapq.heappop(heap)[2]
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._live -= 1
            return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when empty."""
        heap = self._heap
        if self._cancelled:
            while heap and heap[0][2].cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
        if not heap:
            return None
        return heap[0][0]

    def notify_cancel(self) -> None:
        """Account for one external :meth:`Event.cancel` call."""
        if self._live <= 0:
            raise SimulationError("cancel accounting underflow")
        self._live -= 1
        self._cancelled += 1
