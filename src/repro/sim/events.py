"""Event objects and the cancellable priority queue behind the simulator."""

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError


@dataclass(order=False)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so that events scheduled earlier at
    the same timestamp run first (FIFO tie-break), which keeps runs
    deterministic.
    """

    time: float
    seq: int
    callback: Optional[Callable[..., Any]]
    args: tuple = field(default_factory=tuple)
    label: str = ""
    cancelled: bool = False

    def cancel(self) -> None:
        """Mark this event so the simulator skips it."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        return not self.cancelled and self.callback is not None

    def fire(self) -> None:
        if self.callback is None:
            raise SimulationError("event has no callback")
        callback, self.callback = self.callback, None
        callback(*self.args)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventQueue:
    """Min-heap of :class:`Event` with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, callback: Callable[..., Any],
             args: tuple = (), label: str = "") -> Event:
        event = Event(time=time, seq=next(self._counter),
                      callback=callback, args=args, label=label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Pop the earliest non-cancelled event.

        Raises:
            SimulationError: when no live event remains.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def notify_cancel(self) -> None:
        """Account for one external :meth:`Event.cancel` call."""
        if self._live <= 0:
            raise SimulationError("cancel accounting underflow")
        self._live -= 1
