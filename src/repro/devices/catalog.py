"""A catalog of common smart-home device types.

The scenarios (morning rush, party, factory) and examples build homes out
of these specs, mirroring the device mix in the paper's trace-derived
benchmarks (20-30 devices per home, §7.2).
"""

from dataclasses import dataclass
from typing import Any, Dict

from repro.devices.device import Device, DeviceKind


@dataclass(frozen=True)
class DeviceSpec:
    """Template for creating devices of a given type."""

    type_name: str
    kind: DeviceKind
    initial_state: Any
    # Representative states a routine may set; used by generators.
    states: tuple


DEVICE_CATALOG: Dict[str, DeviceSpec] = {
    "light": DeviceSpec("light", DeviceKind.SWITCH, "OFF", ("ON", "OFF")),
    "plug": DeviceSpec("plug", DeviceKind.SWITCH, "OFF", ("ON", "OFF")),
    "fan": DeviceSpec("fan", DeviceKind.SWITCH, "OFF", ("ON", "OFF")),
    "ac": DeviceSpec("ac", DeviceKind.APPLIANCE, "OFF", ("ON", "OFF")),
    "heater": DeviceSpec("heater", DeviceKind.APPLIANCE, "OFF", ("ON", "OFF")),
    "window": DeviceSpec("window", DeviceKind.SHADE, "CLOSED",
                         ("OPEN", "CLOSED")),
    "shade": DeviceSpec("shade", DeviceKind.SHADE, "CLOSED",
                        ("OPEN", "CLOSED")),
    "garage": DeviceSpec("garage", DeviceKind.SHADE, "CLOSED",
                         ("OPEN", "CLOSED")),
    "door_lock": DeviceSpec("door_lock", DeviceKind.LOCK, "UNLOCKED",
                            ("LOCKED", "UNLOCKED")),
    "coffee_maker": DeviceSpec("coffee_maker", DeviceKind.APPLIANCE, "OFF",
                               ("ON", "OFF")),
    "pancake_maker": DeviceSpec("pancake_maker", DeviceKind.APPLIANCE, "OFF",
                                ("ON", "OFF")),
    "toaster": DeviceSpec("toaster", DeviceKind.APPLIANCE, "OFF",
                          ("ON", "OFF")),
    "oven": DeviceSpec("oven", DeviceKind.APPLIANCE, "OFF",
                       ("ON", "OFF", "PREHEAT_400F")),
    "dishwasher": DeviceSpec("dishwasher", DeviceKind.APPLIANCE, "OFF",
                             ("ON", "OFF")),
    "dryer": DeviceSpec("dryer", DeviceKind.APPLIANCE, "OFF", ("ON", "OFF")),
    "washer": DeviceSpec("washer", DeviceKind.APPLIANCE, "OFF", ("ON", "OFF")),
    "sprinkler": DeviceSpec("sprinkler", DeviceKind.ACTUATOR, "OFF",
                            ("ON", "OFF")),
    "vacuum": DeviceSpec("vacuum", DeviceKind.ACTUATOR, "DOCKED",
                         ("CLEANING", "DOCKED")),
    "mop": DeviceSpec("mop", DeviceKind.ACTUATOR, "DOCKED",
                      ("MOPPING", "DOCKED")),
    "trash_can": DeviceSpec("trash_can", DeviceKind.ACTUATOR, "INSIDE",
                            ("DRIVEWAY", "INSIDE")),
    "speaker": DeviceSpec("speaker", DeviceKind.APPLIANCE, "OFF",
                          ("ON", "OFF", "ANNOUNCE")),
    "thermostat": DeviceSpec("thermostat", DeviceKind.APPLIANCE, 70,
                             (60, 65, 70, 75)),
    "camera": DeviceSpec("camera", DeviceKind.SENSOR, "ON", ("ON", "OFF")),
    "alarm": DeviceSpec("alarm", DeviceKind.APPLIANCE, "ARMED",
                        ("ARMED", "DISARMED", "BLARE")),
    "conveyor": DeviceSpec("conveyor", DeviceKind.ACTUATOR, "STOPPED",
                           ("RUNNING", "STOPPED")),
    "robot_arm": DeviceSpec("robot_arm", DeviceKind.ACTUATOR, "IDLE",
                            ("PICK", "PLACE", "IDLE")),
    "labeler": DeviceSpec("labeler", DeviceKind.ACTUATOR, "IDLE",
                          ("LABEL", "IDLE")),
}


def make_device(device_id: int, type_name: str, name: str = "") -> Device:
    """Instantiate a catalog device.

    Args:
        device_id: registry-unique id.
        type_name: key into :data:`DEVICE_CATALOG`.
        name: optional instance name; defaults to ``"{type}-{id}"``.
    """
    spec = DEVICE_CATALOG.get(type_name)
    if spec is None:
        raise KeyError(f"unknown device type {type_name!r}")
    return Device(device_id=device_id,
                  name=name or f"{type_name}-{device_id}",
                  kind=spec.kind,
                  initial_state=spec.initial_state)
