"""Simulated smart-home device substrate.

The paper's implementation talks to TP-Link smart plugs through a device
driver; commands are plain API calls (§6).  This package provides the
simulated equivalent: device state machines, a registry, a driver layer
with network latency, and fail-stop failure injection.
"""

from repro.devices.catalog import DEVICE_CATALOG, DeviceSpec, make_device
from repro.devices.device import Device, DeviceKind
from repro.devices.driver import CommandOutcome, Driver
from repro.devices.failures import FailureInjector, FailurePlan
from repro.devices.network import LatencyModel
from repro.devices.registry import DeviceRegistry

__all__ = [
    "Device",
    "DeviceKind",
    "DeviceRegistry",
    "DeviceSpec",
    "DEVICE_CATALOG",
    "make_device",
    "Driver",
    "CommandOutcome",
    "LatencyModel",
    "FailureInjector",
    "FailurePlan",
]
