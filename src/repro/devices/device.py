"""Device state machines.

A device is the unit of locking in SafeHome.  Devices here are
deliberately simple — a named, typed state value plus an up/down flag —
because everything the paper evaluates (latency, congruence, aborts)
depends on *when* state changes and *whether the device is reachable*,
not on vendor-specific behaviour.
"""

import enum
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import DeviceError, DeviceUnavailableError


class DeviceKind(enum.Enum):
    """Coarse device category; used by the catalog and scenarios."""

    SWITCH = "switch"          # ON/OFF plugs, lights
    LOCK = "lock"              # LOCKED/UNLOCKED
    SHADE = "shade"            # OPEN/CLOSED (windows, garage, shades)
    APPLIANCE = "appliance"    # coffee maker, dishwasher, oven...
    SENSOR = "sensor"          # read-mostly
    ACTUATOR = "actuator"      # robots: vacuum, mop, trash can


class Device:
    """A single smart device with fail-stop/fail-recovery semantics.

    Attributes:
        device_id: unique id within a registry.
        name: human-readable name ("kitchen-light").
        kind: a :class:`DeviceKind`.
        state: current physical state value (e.g. ``"ON"`` or ``25``).
        failed: True while the device is down (commands have no effect).
    """

    def __init__(self, device_id: int, name: str,
                 kind: DeviceKind = DeviceKind.SWITCH,
                 initial_state: Any = "OFF") -> None:
        self.device_id = device_id
        self.name = name
        self.kind = kind
        self.state = initial_state
        self.initial_state = initial_state
        self.failed = False
        # (time, value, source) tuples; source is a routine id or a tag
        # like "rollback"/"reconcile".  The congruence checkers replay it.
        self.write_log: List[Tuple[float, Any, Any]] = []
        self._watchers: List[Callable[["Device", Any], None]] = []

    # -- physical actions -------------------------------------------------

    def apply(self, value: Any, now: float, source: Any = None) -> None:
        """Set the physical state (the actuation a command performs).

        Raises:
            DeviceUnavailableError: if the device is currently failed.
        """
        if self.failed:
            raise DeviceUnavailableError(
                f"device {self.name} is failed; cannot apply {value!r}"
            )
        self.state = value
        self.write_log.append((now, value, source))
        for watcher in self._watchers:
            watcher(self, value)

    def read(self) -> Any:
        """Return the current state (a sensor read).

        Raises:
            DeviceUnavailableError: if the device is currently failed.
        """
        if self.failed:
            raise DeviceUnavailableError(f"device {self.name} is failed")
        return self.state

    # -- failure / recovery ----------------------------------------------

    def fail(self) -> None:
        """Fail-stop: the device stops responding, state is frozen."""
        self.failed = True

    def restart(self) -> None:
        """Recover: the device answers again, retaining its last state."""
        self.failed = False

    # -- observation -------------------------------------------------------

    def watch(self, callback: Callable[["Device", Any], None]) -> None:
        """Register a callback fired on every successful state change."""
        self._watchers.append(callback)

    def last_writer(self) -> Optional[Any]:
        """Source tag of the most recent successful write, if any."""
        if not self.write_log:
            return None
        return self.write_log[-1][2]

    def __repr__(self) -> str:
        status = "FAILED" if self.failed else "up"
        return (f"Device({self.device_id}, {self.name!r}, "
                f"state={self.state!r}, {status})")


def ensure_same_type(devices: List[Device]) -> None:
    """Validation helper used by group routines (e.g. 'all lights')."""
    if not devices:
        raise DeviceError("empty device group")
    kind = devices[0].kind
    for device in devices[1:]:
        if device.kind is not kind:
            raise DeviceError(
                f"mixed device kinds in group: {kind} vs {device.kind}"
            )
