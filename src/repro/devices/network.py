"""Network latency model for hub→device API calls.

The paper's Figure 1 shows that concurrent routines produce incongruent
end states in a *real* deployment — the mechanism is per-command network
latency jitter reordering writes from different routines.  This model
reproduces that: each API call experiences a lognormal delay.
"""

import math
import random
from dataclasses import dataclass


@dataclass
class LatencyModel:
    """Lognormal per-command network latency.

    Attributes:
        median_ms: median round-trip latency in milliseconds.
        sigma: lognormal shape; 0 gives a deterministic latency.
        floor_ms: minimum possible latency.
    """

    median_ms: float = 60.0
    sigma: float = 0.6
    floor_ms: float = 5.0

    def sample(self, rng: random.Random) -> float:
        """One latency draw, in *seconds*."""
        if self.sigma <= 0:
            return self.median_ms / 1000.0
        # math.log(median) is invariant per model but sample() runs once
        # per command in every fleet home — memoize it on the instance.
        mu = self.__dict__.get("_mu")
        if mu is None:
            mu = self.__dict__["_mu"] = math.log(self.median_ms)
        draw = rng.lognormvariate(mu, self.sigma)
        return max(self.floor_ms, draw) / 1000.0

    @classmethod
    def deterministic(cls, latency_ms: float = 0.0) -> "LatencyModel":
        """Zero-jitter model (useful for unit tests and Fig 2)."""
        return cls(median_ms=max(latency_ms, 0.0), sigma=0.0, floor_ms=0.0)
