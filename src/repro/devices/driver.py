"""The device driver layer: commands are asynchronous API calls.

SafeHome "works directly with the APIs which devices naturally provide
(commands are API calls)" (§1, §6).  The driver adds network latency on
the way to the device and reports success or failure back to the
controller.  A call to a failed device times out after the detection
timeout (100 ms by default), which doubles as implicit failure detection.
"""

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.devices.network import LatencyModel
from repro.devices.registry import DeviceRegistry
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


class CommandOutcome(enum.Enum):
    """Result of one device API call."""

    APPLIED = "applied"
    TIMED_OUT = "timed_out"      # device failed / unreachable


@dataclass
class IssueRecord:
    """Audit record of one API call (used by tests and the metrics log)."""

    time_issued: float
    time_done: float
    device_id: int
    value: Any
    outcome: CommandOutcome
    source: Any


@dataclass
class Driver:
    """Asynchronous command issue with latency and timeout semantics."""

    sim: Simulator
    registry: DeviceRegistry
    latency: LatencyModel = field(default_factory=LatencyModel.deterministic)
    streams: Optional[RandomStreams] = None
    timeout_s: float = 0.1
    records: List[IssueRecord] = field(default_factory=list)
    # Called with (device_id,) whenever an API call times out; the hub's
    # failure detector hooks this for implicit detection.
    on_timeout: Optional[Callable[[int], None]] = None

    def __post_init__(self) -> None:
        if self.streams is None:
            self.streams = RandomStreams(seed=0)

    def _delay(self) -> float:
        return self.latency.sample(self.streams.stream("network"))

    def issue(self, device_id: int, value: Any, source: Any,
              callback: Callable[[CommandOutcome, Any], None]) -> None:
        """Issue ``set device := value``; invoke ``callback(outcome,
        prior)`` when done, where ``prior`` is the state the device held
        just before the write landed (the rollback target).

        The state change lands after one network delay; if the device is
        failed at landing time the call times out ``timeout_s`` later.
        """
        issued_at = self.sim.now
        delay = self._delay()

        def land() -> None:
            device = self.registry.get(device_id)
            if device.failed:
                self.sim.call_after(
                    self.timeout_s, self._timed_out,
                    issued_at, device_id, value, source, callback,
                    label=f"timeout:{device.name}")
                return
            prior = device.state
            device.apply(value, self.sim.now, source)
            self.records.append(IssueRecord(
                issued_at, self.sim.now, device_id, value,
                CommandOutcome.APPLIED, source))
            callback(CommandOutcome.APPLIED, prior)

        self.sim.call_after(delay, land, label=f"land:{device_id}")

    def _timed_out(self, issued_at: float, device_id: int, value: Any,
                   source: Any,
                   callback: Callable[[CommandOutcome, Any], None]) -> None:
        self.records.append(IssueRecord(
            issued_at, self.sim.now, device_id, value,
            CommandOutcome.TIMED_OUT, source))
        if self.on_timeout is not None:
            self.on_timeout(device_id)
        callback(CommandOutcome.TIMED_OUT, None)

    def ping(self, device_id: int,
             callback: Callable[[CommandOutcome], None]) -> None:
        """Health probe used by the explicit failure detector."""
        delay = self._delay()

        def land() -> None:
            device = self.registry.get(device_id)
            if device.failed:
                self.sim.call_after(
                    self.timeout_s,
                    lambda: callback(CommandOutcome.TIMED_OUT),
                    label=f"ping-timeout:{device.name}")
            else:
                callback(CommandOutcome.APPLIED)

        self.sim.call_after(delay, land, label=f"ping:{device_id}")
