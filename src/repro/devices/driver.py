"""The device driver layer: commands are asynchronous API calls.

SafeHome "works directly with the APIs which devices naturally provide
(commands are API calls)" (§1, §6).  The driver adds network latency on
the way to the device and reports success or failure back to the
controller.  A call to a failed device times out after the detection
timeout (100 ms by default), which doubles as implicit failure detection.
"""

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.devices.network import LatencyModel
from repro.devices.registry import DeviceRegistry
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


class CommandOutcome(enum.Enum):
    """Result of one device API call."""

    APPLIED = "applied"
    TIMED_OUT = "timed_out"      # device failed / unreachable


@dataclass
class IssueRecord:
    """Audit record of one API call (used by tests and the metrics log)."""

    time_issued: float
    time_done: float
    device_id: int
    value: Any
    outcome: CommandOutcome
    source: Any


@dataclass
class Driver:
    """Asynchronous command issue with latency and timeout semantics."""

    sim: Simulator
    registry: DeviceRegistry
    latency: LatencyModel = field(default_factory=LatencyModel.deterministic)
    streams: Optional[RandomStreams] = None
    timeout_s: float = 0.1
    records: List[IssueRecord] = field(default_factory=list)
    # Called with (device_id,) whenever an API call times out; the hub's
    # failure detector hooks this for implicit detection.
    on_timeout: Optional[Callable[[int], None]] = None

    def __post_init__(self) -> None:
        if self.streams is None:
            self.streams = RandomStreams(seed=0)
        # The network stream is drawn once per command; resolve the
        # named-stream lookup once instead of per call.
        self._network = self.streams.stream("network")

    def _delay(self) -> float:
        return self.latency.sample(self._network)

    def reset(self) -> None:
        """Clear per-run state after the owning stack was re-seeded.

        The sim/registry/streams objects are reused by reference (the
        fleet home factory resets them in place); the driver only needs
        to drop its audit log, re-resolve the network stream from the
        re-keyed family and detach the previous home's timeout hook.
        """
        self.records.clear()
        self._network = self.streams.stream("network")
        self.on_timeout = None

    def issue(self, device_id: int, value: Any, source: Any,
              callback: Callable[..., None],
              cb_args: tuple = ()) -> None:
        """Issue ``set device := value``; invoke ``callback(outcome,
        prior, *cb_args)`` when done, where ``prior`` is the state the
        device held just before the write landed (the rollback target).

        The state change lands after one network delay; if the device is
        failed at landing time the call times out ``timeout_s`` later.
        The landing runs as a bound method with explicit event args (no
        per-command closure) — this path fires once per command in every
        fleet home; ``cb_args`` lets callers route context the same way.
        """
        self.sim.call_after(self._delay(), self._land, self.sim.now,
                            device_id, value, source, callback, cb_args,
                            label="land")

    def _land(self, issued_at: float, device_id: int, value: Any,
              source: Any, callback: Callable[..., None],
              cb_args: tuple) -> None:
        device = self.registry.get(device_id)
        if device.failed:
            self.sim.call_after(
                self.timeout_s, self._timed_out,
                issued_at, device_id, value, source, callback, cb_args,
                label=f"timeout:{device.name}")
            return
        prior = device.state
        device.apply(value, self.sim.now, source)
        self.records.append(IssueRecord(
            issued_at, self.sim.now, device_id, value,
            CommandOutcome.APPLIED, source))
        callback(CommandOutcome.APPLIED, prior, *cb_args)

    def _timed_out(self, issued_at: float, device_id: int, value: Any,
                   source: Any, callback: Callable[..., None],
                   cb_args: tuple = ()) -> None:
        self.records.append(IssueRecord(
            issued_at, self.sim.now, device_id, value,
            CommandOutcome.TIMED_OUT, source))
        if self.on_timeout is not None:
            self.on_timeout(device_id)
        callback(CommandOutcome.TIMED_OUT, None, *cb_args)

    def ping(self, device_id: int,
             callback: Callable[[CommandOutcome], None]) -> None:
        """Health probe used by the explicit failure detector."""
        delay = self._delay()

        def land() -> None:
            device = self.registry.get(device_id)
            if device.failed:
                self.sim.call_after(
                    self.timeout_s,
                    lambda: callback(CommandOutcome.TIMED_OUT),
                    label=f"ping-timeout:{device.name}")
            else:
                callback(CommandOutcome.APPLIED)

        self.sim.call_after(delay, land, label=f"ping:{device_id}")
