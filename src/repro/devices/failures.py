"""Fail-stop failure and restart injection.

The paper's model (§3): any device may fail at any time and possibly
recover later; the *event* SafeHome reasons about is the detection at the
edge hub, which the failure detector provides.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.devices.registry import DeviceRegistry
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class FailurePlan:
    """One scripted failure: device goes down at ``fail_at`` and, if
    ``restart_at`` is set, comes back then."""

    device_id: int
    fail_at: float
    restart_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.restart_at is not None and self.restart_at < self.fail_at:
            raise ValueError("restart_at must not precede fail_at")


@dataclass
class FailureInjector:
    """Applies :class:`FailurePlan` entries to a registry on the sim clock."""

    sim: Simulator
    registry: DeviceRegistry
    plans: List[FailurePlan] = field(default_factory=list)
    # Plans already scheduled; arm() is idempotent so multi-phase runs
    # (e.g. continuing after a hub crash/recovery) never double-schedule
    # or re-schedule a past failure.
    _armed: int = field(default=0, repr=False)

    def add(self, plan: FailurePlan) -> None:
        self.plans.append(plan)

    def arm(self) -> None:
        """Schedule not-yet-armed failures/restarts on the simulator.

        Times already in the past fire immediately (clamped to ``now``):
        a long-lived phased run — ``run(until=...)`` slices, a served
        home — may legitimately script a failure after the clock has
        passed its nominal time, and "the device is already down when
        armed" is the only sensible reading.  Clamping both endpoints
        preserves fail-before-restart: at equal times the FIFO event
        order keeps the failure first.
        """
        for plan in self.plans[self._armed:]:
            device = self.registry.get(plan.device_id)
            now = self.sim.now
            self.sim.call_at(max(plan.fail_at, now), device.fail,
                             label=f"fail:{device.name}")
            if plan.restart_at is not None:
                self.sim.call_at(max(plan.restart_at, now), device.restart,
                                 label=f"restart:{device.name}")
        self._armed = len(self.plans)

    @staticmethod
    def random_plans(rng, device_ids: List[int], fraction: float,
                     horizon: float,
                     restart_after: Optional[float] = None
                     ) -> List[FailurePlan]:
        """Fail ``fraction`` of devices at uniformly random times.

        Mirrors §7.4: "25% of the total devices were marked as failed at a
        random point during the run" (no restart by default).
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        count = round(len(device_ids) * fraction)
        chosen = rng.sample(device_ids, count) if count else []
        plans = []
        for device_id in chosen:
            fail_at = rng.uniform(0.0, horizon)
            restart_at = None
            if restart_after is not None:
                restart_at = fail_at + restart_after
            plans.append(FailurePlan(device_id, fail_at, restart_at))
        return plans
