"""The device registry: SafeHome's view of the home's device inventory."""

from typing import Dict, Iterable, Iterator, List, Optional

from repro.devices.catalog import make_device
from repro.devices.device import Device
from repro.errors import DeviceError


class DeviceRegistry:
    """Maps device ids/names to :class:`Device` instances.

    The registry is also where experiments snapshot and reset the home's
    state between trials.
    """

    def __init__(self) -> None:
        self._by_id: Dict[int, Device] = {}
        self._by_name: Dict[str, Device] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Device]:
        return iter(self._by_id.values())

    def __contains__(self, device_id: int) -> bool:
        return device_id in self._by_id

    def add(self, device: Device) -> Device:
        if device.device_id in self._by_id:
            raise DeviceError(f"duplicate device id {device.device_id}")
        if device.name in self._by_name:
            raise DeviceError(f"duplicate device name {device.name!r}")
        self._by_id[device.device_id] = device
        self._by_name[device.name] = device
        self._next_id = max(self._next_id, device.device_id + 1)
        return device

    def create(self, type_name: str, name: str = "") -> Device:
        """Create-and-add a catalog device with a fresh id."""
        device = make_device(self._next_id, type_name, name)
        return self.add(device)

    def create_many(self, type_name: str, count: int,
                    prefix: str = "") -> List[Device]:
        prefix = prefix or type_name
        return [self.create(type_name, f"{prefix}-{i}") for i in range(count)]

    def get(self, device_id: int) -> Device:
        device = self._by_id.get(device_id)
        if device is None:
            raise DeviceError(f"no device with id {device_id}")
        return device

    def by_name(self, name: str) -> Device:
        device = self._by_name.get(name)
        if device is None:
            raise DeviceError(f"no device named {name!r}")
        return device

    def find(self, name: str) -> Optional[Device]:
        return self._by_name.get(name)

    @property
    def devices(self) -> List[Device]:
        return list(self._by_id.values())

    def ids(self) -> List[int]:
        return list(self._by_id.keys())

    # -- experiment helpers -------------------------------------------------

    def snapshot(self) -> Dict[int, object]:
        """Current state of every device (for end-state checks)."""
        return {d.device_id: d.state for d in self}

    def snapshot_full(self) -> Dict[int, Dict[str, object]]:
        """Recoverable per-device image: state, liveness, initial state
        and write-log length (durability contract; the write log itself
        is replay-reconstructed, its length is digest evidence)."""
        return {d.device_id: {
            "name": d.name,
            "state": d.state,
            "failed": d.failed,
            "initial_state": d.initial_state,
            "writes": len(d.write_log),
        } for d in self}

    def restore_full(self, snapshot: Dict[int, Dict[str, object]]) -> None:
        """Re-apply a :meth:`snapshot_full` image onto this registry's
        existing devices (ids must match; inventory is rebuilt from the
        WAL's device-added records, not from snapshots)."""
        for device_id, entry in snapshot.items():
            device = self.get(device_id)
            device.state = entry["state"]
            device.failed = bool(entry["failed"])
            device.initial_state = entry["initial_state"]

    def failed_ids(self) -> List[int]:
        return [d.device_id for d in self if d.failed]

    def reset(self) -> None:
        """Restore every device to its initial state and clear logs."""
        for device in self:
            device.state = device.initial_state
            device.failed = False
            device.write_log.clear()

    def clear(self) -> None:
        """Drop the whole inventory (ids restart at 0).

        The fleet's home factory reuses one registry across homes whose
        device sets differ; clearing is equivalent to a fresh registry.
        """
        self._by_id.clear()
        self._by_name.clear()
        self._next_id = 0

    def subset(self, ids: Iterable[int]) -> List[Device]:
        return [self.get(i) for i in ids]
