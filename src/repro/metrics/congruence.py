"""Congruence checkers (§7.1).

*Temporary incongruence*: before routine R completes, another routine
changes the state of a device R modified.

*Final incongruence*: the home's end state is not the end state of
**any** serial order of the committed routines.  We provide two
implementations — exhaustive permutation search (small n, e.g. the 9!
check behind Fig 12b) and a backtracking "designated last writer"
search that scales to large routine counts — and cross-check them in
the test suite.
"""

import itertools
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set

from repro.core.controller import RoutineRun, RoutineStatus, RunResult


def _writer_id(source: Any) -> Optional[int]:
    """Routine id behind a device write-log source tag."""
    if isinstance(source, int):
        return source
    if isinstance(source, tuple) and len(source) == 2 and \
            source[0] in ("rollback",):
        return source[1]
    return None  # reconcile writes are hub actions, not routine-visible


def temporary_incongruence(result: RunResult) -> float:
    """Fraction of routines suffering ≥1 temporary incongruence event.

    A routine R suffers an event when, before R finishes, another
    routine changes a device R had (already) modified.
    """
    if not result.runs:
        return 0.0
    # Per device: time-ordered (time, routine_id) writes.
    writes: Dict[int, List] = {
        device_id: [(t, _writer_id(src)) for (t, _v, src) in log
                    if _writer_id(src) is not None]
        for device_id, log in result.device_write_logs.items()
    }
    suffered = 0
    for run in result.runs:
        if run.start_time is None:
            continue
        finish = run.finish_time if run.finish_time is not None \
            else float("inf")
        hit = False
        for execution in run.executions:
            if not (execution.applied and execution.command.is_write):
                continue
            device_id = execution.command.device_id
            my_time = execution.started_at
            for (t, writer) in writes.get(device_id, ()):
                if writer != run.routine_id and my_time < t < finish:
                    hit = True
                    break
            if hit:
                break
        if hit:
            suffered += 1
    return suffered / len(result.runs)


def temporary_incongruence_events(result: RunResult) -> int:
    """Total count of temporary-incongruence events across the run.

    One event per (routine write, conflicting foreign write) pair:
    routine R applied a write to a device and another routine overwrote
    it before R finished.  Where :func:`temporary_incongruence` reports
    the *fraction of routines* affected (§7.1's metric), this counts
    every individual violation — the objective the adversarial hunt
    (``repro hunt``) maximizes, since a scenario interleaving ten
    conflicting writes under one routine is "worse" than one that
    interleaves a single write even though both score the same
    fraction.
    """
    writes: Dict[int, List] = {
        device_id: [(t, _writer_id(src)) for (t, _v, src) in log
                    if _writer_id(src) is not None]
        for device_id, log in result.device_write_logs.items()
    }
    events = 0
    for run in result.runs:
        if run.start_time is None:
            continue
        finish = run.finish_time if run.finish_time is not None \
            else float("inf")
        for execution in run.executions:
            if not (execution.applied and execution.command.is_write):
                continue
            device_id = execution.command.device_id
            my_time = execution.started_at
            events += sum(
                1 for (t, writer) in writes.get(device_id, ())
                if writer != run.routine_id and my_time < t < finish)
    return events


def effective_writes(runs: Iterable[RoutineRun]) -> Dict[int, Dict[int, Any]]:
    """routine_id → {device → last applied value} for committed runs."""
    out: Dict[int, Dict[int, Any]] = {}
    for run in runs:
        if run.status is RoutineStatus.COMMITTED:
            out[run.routine_id] = run.effective_final_writes()
    return out


def end_state_of_order(order: Sequence[int],
                       writes: Dict[int, Dict[int, Any]],
                       initial: Dict[int, Any]) -> Dict[int, Any]:
    """End state if the routines ran serially in ``order``."""
    state = dict(initial)
    for routine_id in order:
        state.update(writes.get(routine_id, {}))
    return state


def serial_end_state_exists(observed: Dict[int, Any],
                            writes: Dict[int, Dict[int, Any]],
                            initial: Dict[int, Any],
                            exhaustive_limit: int = 8) -> bool:
    """Does any serial order of the committed routines yield ``observed``?

    Uses brute force for ≤ ``exhaustive_limit`` routines, otherwise the
    designated-last-writer backtracking search.
    """
    ids = list(writes)
    if len(ids) <= exhaustive_limit:
        return _exists_exhaustive(observed, writes, initial, ids)
    return _exists_last_writer(observed, writes, initial, ids)


def _exists_exhaustive(observed, writes, initial, ids) -> bool:
    for order in itertools.permutations(ids):
        if end_state_of_order(order, writes, initial) == observed:
            return True
    return False


def _exists_last_writer(observed, writes, initial, ids) -> bool:
    """Constraint search over "who wrote each device last".

    A serial order matching ``observed`` exists iff we can pick, for
    each device written by ≥1 routine, a *designated last writer* whose
    value equals the observed one (or no writer, when the initial value
    matches and we can order... no: every writer writes, so the last
    writer's value must match), such that the induced precedence
    constraints (all other writers of the device precede the designated
    one) admit a topological order.
    """
    device_writers: Dict[int, List[int]] = {}
    for routine_id in ids:
        for device_id in writes[routine_id]:
            device_writers.setdefault(device_id, []).append(routine_id)

    # Devices no committed routine wrote must still hold their initial
    # value (serial execution cannot change them).
    for device_id in set(initial) | set(observed):
        if device_id not in device_writers:
            if observed.get(device_id) != initial.get(device_id):
                return False

    for device_id, writers in device_writers.items():
        expected = observed.get(device_id)
        if not any(writes[w][device_id] == expected for w in writers):
            return False  # no candidate last writer at all

    devices = sorted(device_writers, key=lambda d: len(device_writers[d]))

    def consistent(choices: Dict[int, int]) -> bool:
        # Edges: other writer -> designated last writer, per device.
        edges: Dict[int, Set[int]] = {}
        for device_id, last in choices.items():
            for writer in device_writers[device_id]:
                if writer != last:
                    edges.setdefault(writer, set()).add(last)
        return _acyclic(edges, ids)

    def backtrack(index: int, choices: Dict[int, int]) -> bool:
        if index == len(devices):
            return consistent(choices)
        device_id = devices[index]
        expected = observed.get(device_id)
        for writer in device_writers[device_id]:
            if writes[writer][device_id] != expected:
                continue
            choices[device_id] = writer
            if consistent(choices) and backtrack(index + 1, choices):
                return True
            del choices[device_id]
        return False

    return backtrack(0, {})


def _acyclic(edges: Dict[int, Set[int]], nodes: List[int]) -> bool:
    state: Dict[int, int] = {}  # 0 visiting, 1 done

    def visit(node: int) -> bool:
        if state.get(node) == 1:
            return True
        if state.get(node) == 0:
            return False
        state[node] = 0
        for succ in edges.get(node, ()):
            if not visit(succ):
                return False
        state[node] = 1
        return True

    return all(visit(node) for node in nodes)


def final_state_serializable(result: RunResult,
                             initial: Dict[int, Any],
                             exhaustive_limit: int = 8) -> bool:
    """Is the run's end state serially equivalent (§7.1's Final
    Incongruence check, cf. Fig 12b)?

    Only valid for failure-free runs: with failures, compare against
    :func:`repro.metrics.serialization.validate_serial_order` instead.
    """
    writes = effective_writes(result.runs)
    return serial_end_state_exists(result.end_state, writes, initial,
                                   exhaustive_limit=exhaustive_limit)
