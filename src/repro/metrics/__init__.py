"""Evaluation metrics (§7.1).

* end-to-end latency — submission → successful completion;
* temporary incongruence — another routine changed a device this
  routine modified, before this routine completed;
* final incongruence — the end state matches no serial order of the
  committed routines;
* parallelism level — concurrently executing routines, sampled at
  routine start/end points;
* stretch factor, order mismatch (swap distance), abort rate and
  rollback overhead.
"""

from repro.metrics.congruence import (end_state_of_order,
                                      final_state_serializable,
                                      serial_end_state_exists,
                                      temporary_incongruence)
from repro.metrics.cohort import (cohort_aggregates, cohort_rows,
                                  compare_cohorts)
from repro.metrics.fleet import aggregate_homes
from repro.metrics.recovery import recovery_summary, recovery_wall_summary
from repro.metrics.serialization import (reconstruct_serial_order,
                                         validate_serial_order)
from repro.metrics.stats import (cdf_points, mean, normalized_swap_distance,
                                 percentile, summarize)
from repro.metrics.collector import MetricsReport, analyze

__all__ = [
    "temporary_incongruence",
    "final_state_serializable",
    "serial_end_state_exists",
    "end_state_of_order",
    "reconstruct_serial_order",
    "validate_serial_order",
    "percentile",
    "mean",
    "cdf_points",
    "summarize",
    "normalized_swap_distance",
    "MetricsReport",
    "analyze",
    "aggregate_homes",
    "cohort_rows",
    "cohort_aggregates",
    "compare_cohorts",
    "recovery_summary",
    "recovery_wall_summary",
]
