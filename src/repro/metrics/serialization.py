"""Serialization-order reconstruction and validation (§3, §7.6).

SafeHome's guarantee is the existence of an equivalent serial order of
committed routines *and* failure/restart events.  We reconstruct one
from the per-device access sequences the controller records, then
validate that replaying it serially reproduces the observed end state.
The order-mismatch metric (Fig 16c/17) compares this order with the
submission order by normalized swap distance.
"""

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.controller import RoutineStatus, RunResult
from repro.errors import SafeHomeError
from repro.metrics.congruence import effective_writes


def reconstruct_serial_order(result: RunResult) -> List[int]:
    """Topological order of committed routines from device precedences.

    Edges come from the order in which routines completed their last
    access on each device; ties (unrelated routines) break by commit
    time, then routine id, which keeps the output deterministic.
    """
    committed = [run.routine_id for run in result.runs
                 if run.status is RoutineStatus.COMMITTED]
    committed_set = set(committed)
    successors: Dict[int, Set[int]] = {rid: set() for rid in committed}
    indegree: Dict[int, int] = {rid: 0 for rid in committed}
    for sequence in result.device_access_order.values():
        chain = [rid for rid in sequence if rid in committed_set]
        for before, after in zip(chain, chain[1:]):
            if after not in successors[before]:
                successors[before].add(after)
                indegree[after] += 1

    finish_time = {run.routine_id: run.finish_time for run in result.runs}
    order: List[int] = []
    ready = sorted((rid for rid, deg in indegree.items() if deg == 0),
                   key=lambda rid: (finish_time[rid], rid))
    while ready:
        rid = ready.pop(0)
        order.append(rid)
        for succ in sorted(successors[rid]):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
        ready.sort(key=lambda r: (finish_time[r], r))
    if len(order) != len(committed):
        raise SafeHomeError(
            "cycle in device access precedences: execution was not "
            "serializable")
    return order


def place_detection_events(result: RunResult,
                           order: List[int]) -> List[Tuple]:
    """Interleave failure/restart events into the serial order.

    Each event is placed after every committed routine whose last access
    of the device preceded the detection, which matches EV's rule that a
    failure after a routine's last touch serializes after the routine.
    Returns a list of ("routine", id) / ("failure", dev, t) /
    ("restart", dev, t) tuples.
    """
    positions = {rid: i for i, rid in enumerate(order)}
    timeline: List[Tuple] = [("routine", rid) for rid in order]
    inserts: List[Tuple[int, Tuple]] = []
    last_access_time: Dict[Tuple[int, int], float] = {}
    for run in result.runs:
        if run.status is not RoutineStatus.COMMITTED:
            continue
        for execution in run.executions:
            key = (execution.command.device_id, run.routine_id)
            if execution.finished_at is not None:
                last_access_time[key] = max(
                    last_access_time.get(key, 0.0), execution.finished_at)
    for kind, device_id, when in result.detection_events:
        after = -1
        for rid in order:
            touched_at = last_access_time.get((device_id, rid))
            if touched_at is not None and touched_at <= when:
                after = max(after, positions[rid])
        inserts.append((after, (kind, device_id, when)))
    # Insert from the right so earlier indexes stay valid; among events
    # sharing a position, insert later detections first so the final
    # timeline lists them in detection order.
    for after, event in sorted(inserts, key=lambda x: (-x[0], -x[1][2])):
        timeline.insert(after + 1, event)
    return timeline


def validate_serial_order(result: RunResult,
                          initial: Dict[int, Any],
                          order: Optional[List[int]] = None) -> bool:
    """Replay ``order`` serially; True iff it reproduces the end state.

    Devices that are failed at the end of the run are exempted when the
    hub holds a pending reconciliation for them (their physical state
    will converge on restart).
    """
    if order is None:
        order = reconstruct_serial_order(result)
    writes = effective_writes(result.runs)
    state = dict(initial)
    for rid in order:
        state.update(writes.get(rid, {}))
    failed_now = {device_id
                  for kind, device_id, _t in result.detection_events
                  if kind == "failure"}
    for kind, device_id, _t in result.detection_events:
        if kind == "restart":
            failed_now.discard(device_id)
    for device_id, expected in state.items():
        if device_id in failed_now:
            continue  # frozen by failure; reconciliation applies later
        if result.end_state.get(device_id) != expected:
            return False
    return True
