"""ASCII execution-timeline rendering (Fig 2 style).

Renders per-device lanes showing which routine held each device when —
useful in examples and when debugging scheduler placements::

    coffee   |R1----|R2----|........
    pancake  |......|R1----|R2----|R3----
"""

from typing import Dict, List, Optional, Tuple

from repro.core.controller import RunResult


def device_occupancy(result: RunResult
                     ) -> Dict[int, List[Tuple[float, float, str]]]:
    """(start, end, routine_name) spans per device, from run records."""
    names = {run.routine_id: run.name for run in result.runs}
    spans: Dict[int, List[Tuple[float, float, str]]] = {}
    for run in result.runs:
        per_device: Dict[int, List[float]] = {}
        for execution in run.executions:
            if execution.started_at is None:
                continue
            end = execution.finished_at \
                if execution.finished_at is not None else execution.started_at
            bounds = per_device.setdefault(
                execution.command.device_id,
                [execution.started_at, end])
            bounds[0] = min(bounds[0], execution.started_at)
            bounds[1] = max(bounds[1], end)
        for device_id, (start, end) in per_device.items():
            spans.setdefault(device_id, []).append(
                (start, end, names[run.routine_id]))
    for device_spans in spans.values():
        device_spans.sort()
    return spans


def render_timeline(result: RunResult,
                    device_names: Optional[Dict[int, str]] = None,
                    width: int = 72) -> str:
    """Render the run as one ASCII lane per device."""
    spans = device_occupancy(result)
    if not spans:
        return "(no activity)"
    horizon = max(end for device_spans in spans.values()
                  for (_s, end, _n) in device_spans)
    horizon = max(horizon, 1e-9)
    scale = width / horizon

    lines = []
    for device_id in sorted(spans):
        label = (device_names or {}).get(device_id, f"dev{device_id}")
        lane = [" "] * width
        for start, end, name in spans[device_id]:
            lo = min(width - 1, int(start * scale))
            hi = min(width, max(lo + 1, int(end * scale)))
            tag = name[:hi - lo]
            for offset in range(lo, hi):
                lane[offset] = "-"
            for index, char in enumerate(tag):
                if lo + index < width:
                    lane[lo + index] = char
        lines.append(f"{label:>14s} |{''.join(lane)}|")
    header = f"{'device':>14s} |{'0':<{width - 6}s}{horizon:6.1f}s|"
    return "\n".join([header] + lines)
