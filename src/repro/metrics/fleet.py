"""Batched cross-home metric aggregation for fleet runs.

A fleet run produces one row per home (see
:func:`repro.fleet.worker.run_home`); this module pools those rows into
the fleet-level report: latency percentiles over *all* committed
routines in the fleet (p50/p95/p99), the fleet-wide abort rate, and the
fraction of homes whose final state was incongruent — the same §7.1
metrics the single-home experiments report, lifted to N homes.

Everything here is pure and order-insensitive (rows are sorted by home
id before any float is summed), so the aggregate JSON is byte-identical
across backends, worker counts and repeated runs.
"""

from typing import Any, Dict, Mapping, Sequence

from repro.metrics.stats import mean, percentile


def aggregate_homes(rows: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Pool per-home fleet rows into one aggregate report.

    Each row must carry ``home_id``, ``routines``, ``committed``,
    ``aborted``, ``latencies`` (raw per-routine samples for pooling),
    ``temporary_incongruence``, ``final_congruent`` (or ``None`` when
    unchecked) and ``makespan``.
    """
    rows = sorted(rows, key=lambda row: row["home_id"])
    pooled = [sample for row in rows for sample in row.get("latencies", ())]
    routines = sum(row["routines"] for row in rows)
    aborted = sum(row["aborted"] for row in rows)
    checked = [row["final_congruent"] for row in rows
               if row.get("final_congruent") is not None]
    makespans = [row["makespan"] for row in rows]
    return {
        "homes": len(rows),
        "routines": routines,
        "committed": sum(row["committed"] for row in rows),
        "aborted": aborted,
        "abort_rate": (aborted / routines) if routines else 0.0,
        "latency": {
            "n": len(pooled),
            "mean": mean(pooled),
            "p50": percentile(pooled, 50),
            "p95": percentile(pooled, 95),
            "p99": percentile(pooled, 99),
            "max": max(pooled) if pooled else 0.0,
        },
        "final_incongruence": (
            1.0 - sum(checked) / len(checked) if checked else None),
        "homes_final_checked": len(checked),
        "temporary_incongruence_mean": mean(
            [row["temporary_incongruence"] for row in rows]),
        "makespan_mean": mean(makespans),
        "makespan_max": max(makespans) if makespans else 0.0,
    }
