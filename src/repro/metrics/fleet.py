"""Cross-home metric aggregation for fleet runs.

A fleet run produces one row per home (see
:func:`repro.fleet.worker.run_home`); this module pools those rows into
the fleet-level report: latency percentiles over *all* committed
routines in the fleet (p50/p95/p99), the fleet-wide abort rate, and the
fraction of homes whose final state was incongruent — the same §7.1
metrics the single-home experiments report, lifted to N homes.

Two aggregation paths exist:

* **exact** (:func:`aggregate_homes`, the default) — every per-home raw
  latency sample is pooled in the parent and percentiles interpolate
  over the full sorted sample, exactly as the single-home reports do.
  Pure and order-insensitive (rows are sorted by home id before any
  float is summed), so the aggregate JSON is byte-identical across
  backends, worker counts, chunk sizes and repeated runs.
* **streaming** (:class:`FleetAccumulator`) — each worker pre-reduces
  its chunk into count/sum/min/max scalars plus a fixed-resolution
  latency histogram (:class:`~repro.metrics.stats.
  FixedResolutionHistogram`); the parent merges O(workers) partials in
  chunk order instead of materializing O(homes) sample lists.
  Histogram quantiles are within one bin (default 1 ms) of the exact
  pooled value; counts, min/max and incongruence fractions are exact.
  Deterministic for a fixed chunk layout (means are partial float sums
  folded in chunk order — see docs/fleet-performance.md).
"""

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.metrics.stats import (FixedResolutionHistogram, mean,
                                 percentile_sorted)

#: Default latency-histogram bin width (seconds) for streaming mode.
DEFAULT_LATENCY_RESOLUTION = 1e-3


def aggregate_homes(rows: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Pool per-home fleet rows into one aggregate report (exact path).

    Each row must carry ``home_id``, ``routines``, ``committed``,
    ``aborted``, ``latencies`` (raw per-routine samples for pooling),
    ``temporary_incongruence``, ``final_congruent`` (or ``None`` when
    unchecked) and ``makespan``.
    """
    rows = sorted(rows, key=lambda row: row["home_id"])
    pooled = [sample for row in rows for sample in row.get("latencies", ())]
    routines = sum(row["routines"] for row in rows)
    aborted = sum(row["aborted"] for row in rows)
    checked = [row["final_congruent"] for row in rows
               if row.get("final_congruent") is not None]
    makespans = [row["makespan"] for row in rows]
    # Mean sums in home order (float addition is order-sensitive and
    # the report is byte-stable); one sort then serves every quantile.
    pooled_mean = mean(pooled)
    pooled_sorted = sorted(pooled)
    return {
        "homes": len(rows),
        "routines": routines,
        "committed": sum(row["committed"] for row in rows),
        "aborted": aborted,
        "abort_rate": (aborted / routines) if routines else 0.0,
        "latency": {
            "n": len(pooled),
            "mean": pooled_mean,
            "p50": percentile_sorted(pooled_sorted, 50),
            "p95": percentile_sorted(pooled_sorted, 95),
            "p99": percentile_sorted(pooled_sorted, 99),
            "max": pooled_sorted[-1] if pooled_sorted else 0.0,
        },
        "final_incongruence": (
            1.0 - sum(checked) / len(checked) if checked else None),
        "homes_final_checked": len(checked),
        "temporary_incongruence_mean": mean(
            [row["temporary_incongruence"] for row in rows]),
        "makespan_mean": mean(makespans),
        "makespan_max": max(makespans) if makespans else 0.0,
    }


class FleetAccumulator:
    """Mergeable cross-home aggregate — the streaming reduction unit.

    A worker folds every home row of its chunk into one accumulator
    (:meth:`add_row`), ships the accumulator instead of raw sample
    lists, and the parent folds the partials together (:meth:`merge`)
    in chunk order.  :meth:`aggregate` then emits the same keys as
    :func:`aggregate_homes`, with histogram-resolution percentiles.
    """

    __slots__ = ("homes", "routines", "committed", "aborted",
                 "lat_sum", "lat_max", "histogram",
                 "checked", "congruent",
                 "temp_incong_sum", "makespan_sum", "makespan_max")

    def __init__(self,
                 resolution: float = DEFAULT_LATENCY_RESOLUTION) -> None:
        self.homes = 0
        self.routines = 0
        self.committed = 0
        self.aborted = 0
        self.lat_sum = 0.0
        self.lat_max = 0.0
        self.histogram = FixedResolutionHistogram(resolution)
        self.checked = 0
        self.congruent = 0
        self.temp_incong_sum = 0.0
        self.makespan_sum = 0.0
        self.makespan_max = 0.0

    def add_row(self, row: Mapping[str, Any]) -> None:
        """Fold one per-home row (with raw ``latencies``) in."""
        self.homes += 1
        self.routines += row["routines"]
        self.committed += row["committed"]
        self.aborted += row["aborted"]
        latencies = row.get("latencies", ())
        if latencies:
            self.histogram.extend(latencies)
            self.lat_sum += sum(latencies)
            peak = max(latencies)
            if peak > self.lat_max:
                self.lat_max = peak
        congruent = row.get("final_congruent")
        if congruent is not None:
            self.checked += 1
            self.congruent += bool(congruent)
        self.temp_incong_sum += row["temporary_incongruence"]
        makespan = row["makespan"]
        self.makespan_sum += makespan
        if makespan > self.makespan_max:
            self.makespan_max = makespan

    def merge(self, other: "FleetAccumulator") -> "FleetAccumulator":
        """Fold another partial in (parent-side, chunk order)."""
        self.homes += other.homes
        self.routines += other.routines
        self.committed += other.committed
        self.aborted += other.aborted
        self.lat_sum += other.lat_sum
        if other.lat_max > self.lat_max:
            self.lat_max = other.lat_max
        self.histogram.merge(other.histogram)
        self.checked += other.checked
        self.congruent += other.congruent
        self.temp_incong_sum += other.temp_incong_sum
        self.makespan_sum += other.makespan_sum
        if other.makespan_max > self.makespan_max:
            self.makespan_max = other.makespan_max
        return self

    #: Integer scalar fields, in (stable) pack order.
    INT_FIELDS = ("homes", "routines", "committed", "aborted",
                  "checked", "congruent")
    #: Float scalar fields, in (stable) pack order.
    FLOAT_FIELDS = ("lat_sum", "lat_max", "temp_incong_sum",
                    "makespan_sum", "makespan_max")

    def state(self) -> Dict[str, Any]:
        """Flat snapshot of every field — the struct-packable form
        consumed by :mod:`repro.fleet.shm` (and its inverse,
        :meth:`from_state`)."""
        return {
            "ints": [getattr(self, name) for name in self.INT_FIELDS],
            "floats": [getattr(self, name) for name in self.FLOAT_FIELDS],
            "resolution": self.histogram.resolution,
            "hist_count": self.histogram.count,
            "hist_items": self.histogram.items(),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "FleetAccumulator":
        """Rebuild an accumulator from :meth:`state` output, exactly."""
        accumulator = cls(state["resolution"])
        for name, value in zip(cls.INT_FIELDS, state["ints"]):
            setattr(accumulator, name, int(value))
        for name, value in zip(cls.FLOAT_FIELDS, state["floats"]):
            setattr(accumulator, name, float(value))
        accumulator.histogram = FixedResolutionHistogram.from_items(
            state["resolution"], state["hist_items"])
        if accumulator.histogram.count != state["hist_count"]:
            raise ValueError(
                f"histogram count {accumulator.histogram.count} does not "
                f"match recorded count {state['hist_count']}")
        return accumulator

    def aggregate(self) -> Dict[str, Any]:
        """The fleet report (same keys as :func:`aggregate_homes`)."""
        n = self.histogram.count
        histogram = self.histogram
        return {
            "homes": self.homes,
            "routines": self.routines,
            "committed": self.committed,
            "aborted": self.aborted,
            "abort_rate": (self.aborted / self.routines)
                          if self.routines else 0.0,
            "latency": {
                "n": n,
                "mean": (self.lat_sum / n) if n else 0.0,
                "p50": histogram.quantile(50),
                "p95": histogram.quantile(95),
                "p99": histogram.quantile(99),
                "max": self.lat_max,
            },
            "final_incongruence": (
                1.0 - self.congruent / self.checked
                if self.checked else None),
            "homes_final_checked": self.checked,
            "temporary_incongruence_mean": (
                self.temp_incong_sum / self.homes if self.homes else 0.0),
            "makespan_mean": (
                self.makespan_sum / self.homes if self.homes else 0.0),
            "makespan_max": self.makespan_max,
        }


def accumulate_rows(rows: Sequence[Mapping[str, Any]],
                    resolution: float = DEFAULT_LATENCY_RESOLUTION
                    ) -> FleetAccumulator:
    """One worker's pre-reduction: fold a chunk's rows into a partial."""
    accumulator = FleetAccumulator(resolution)
    for row in rows:
        accumulator.add_row(row)
    return accumulator


def merge_accumulators(partials: Sequence[Optional[FleetAccumulator]],
                       resolution: float = DEFAULT_LATENCY_RESOLUTION
                       ) -> FleetAccumulator:
    """Parent-side fold, in the (deterministic) chunk order given."""
    merged = FleetAccumulator(resolution)
    for partial in partials:
        if partial is not None:
            merged.merge(partial)
    return merged


def strip_latencies(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Drop raw sample lists from rows already folded into a partial."""
    for row in rows:
        row.pop("latencies", None)
    return rows
