"""Recovery metrics: how long hub crash-recovery takes and why.

Summaries over :class:`~repro.hub.durability.RecoveryReport` rows —
replay length (events re-executed, observation records re-verified),
WAL length at crash, checkpoints verified, and the per-model policy
outcome (routines resumed vs aborted).  Wall-clock recovery time is
summarized separately (:func:`recovery_wall_summary`) so deterministic
reports never mix in nondeterministic timings.
"""

from typing import Any, Dict, Iterable, List, Union

from repro.metrics.stats import summarize

Row = Dict[str, Any]


def _rows(reports: Iterable[Union[Row, Any]]) -> List[Row]:
    """Accept RecoveryReport objects or their .row() dicts."""
    return [report if isinstance(report, dict) else report.row()
            for report in reports]


def recovery_summary(reports: Iterable[Union[Row, Any]]) -> Dict[str, Any]:
    """Deterministic pooled summary of one run's recoveries."""
    rows = _rows(reports)
    return {
        "count": len(rows),
        "replayed_events": summarize([r["replayed_events"] for r in rows]),
        "replayed_records": summarize([r["replayed_records"]
                                       for r in rows]),
        "wal_records": summarize([r["wal_records"] for r in rows]),
        "checkpoints_verified": sum(r["checkpoints_verified"]
                                    for r in rows),
        "resumed_in_flight": sum(len(r["resumed"]) for r in rows),
        "aborted_in_flight": sum(len(r["aborted"]) for r in rows),
    }


def recovery_wall_summary(wall_seconds: Iterable[float]) -> Dict[str, float]:
    """Wall-clock recovery-time summary (benchmarks only — this is the
    one nondeterministic recovery metric, so it never joins report
    JSON that CI compares byte-for-byte)."""
    return summarize(list(wall_seconds))
