"""Property-based congruence oracle: per-model invariants over a run.

Each visibility model promises a different slice of the congruence
spectrum (§2.1).  The oracle turns those promises into checkable
invariants over any :class:`~repro.core.controller.RunResult`:

* **universal** (every model) — abort-or-commit soundness: every
  routine reaches a terminal status, committed + aborted partitions the
  run set, an aborted routine's writes never survive as a device's
  final state (rollback erasure), and every write-log entry is
  attributable.
* **GSV / SGSV** — global serialization: no two routines' execution
  windows overlap at all, and the end state is serially equivalent.
* **PSV** — footprint atomicity: no two routines with intersecting
  device footprints overlap (disjoint routines may), and the end state
  is serially equivalent.
* **EV** — lineage consistency: the per-device access order is acyclic
  and replaying its topological order reproduces the end state.
* **OCC** — committed-serializable: the surviving (committed) routines
  admit a serial order reaching the end state.
* **WV** — universal only: weak visibility promises nothing further
  (its incongruence is the *measurement*, not a bug).

The oracle is what the adversarial hunt (``repro hunt``) scores
against: generated scenarios may maximize incongruence *pressure*, but
an invariant violation on any model is always a real bug.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.controller import RoutineStatus, RunResult
from repro.errors import SafeHomeError
from repro.metrics.congruence import (_writer_id, effective_writes,
                                      serial_end_state_exists)
from repro.metrics.serialization import (reconstruct_serial_order,
                                         validate_serial_order)

#: Slack for execution-window overlap: windows are half-open, so
#: back-to-back routines (next starts exactly at previous finish) never
#: count as overlapping.
_OVERLAP_EPS = 1e-9


@dataclass(frozen=True)
class Violation:
    """One broken invariant (a genuine bug, never expected pressure)."""

    invariant: str
    detail: str
    routine_id: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"invariant": self.invariant, "detail": self.detail,
                "routine_id": self.routine_id}


@dataclass
class OracleReport:
    """Verdict of one oracle pass over one run."""

    model: str
    checked: Tuple[str, ...]
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "model": self.model,
            "checked": list(self.checked),
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
        }


def _failed_now(result: RunResult) -> set:
    """Devices believed failed at the end of the run."""
    failed = set()
    for kind, device_id, _t in result.detection_events:
        if kind == "failure":
            failed.add(device_id)
        else:
            failed.discard(device_id)
    return failed


# -- universal invariants ------------------------------------------------------

def _check_terminal(result: RunResult, out: List[Violation]) -> None:
    for run in result.runs:
        if not run.status.finished:
            out.append(Violation(
                "terminal-status", routine_id=run.routine_id,
                detail=f"routine {run.name!r} ended {run.status.value}, "
                       "not committed/aborted"))


def _check_partition(result: RunResult, out: List[Violation]) -> None:
    committed, aborted = len(result.committed), len(result.aborted)
    if committed + aborted != len(result.runs):
        out.append(Violation(
            "commit-abort-partition",
            detail=f"{committed} committed + {aborted} aborted != "
                   f"{len(result.runs)} routines"))


def _check_abort_erasure(result: RunResult, initial: Dict[int, Any],
                         out: List[Violation]) -> None:
    """An aborted routine's write must not decide a device's final
    state — rollback (or a later writer) must have erased it.

    The check is value-based: replay the write log ignoring aborted
    routines' *forward* writes (rollback entries, tagged
    ``("rollback", id)``, are the erasure and count at face value); the
    end state must match.  Value-based matters because a rollback that
    restores the value the aborted routine itself wrote is a no-op the
    device never logs.  Two authoritative reconstructions are accepted,
    because a rollback snapshots "last committed" at rollback *time*: a
    concurrent routine committing between write and rollback makes the
    restore stale, and the device converges on the committed value via
    later suppressed no-ops the log cannot show — so the end state may
    legitimately match the last committed/hub forward write instead of
    the rollback-faithful replay.  Devices failed at the end of the run
    are exempt: their rollback is deferred to restart reconciliation."""
    aborted_ids = {run.routine_id for run in result.aborted}
    failed = _failed_now(result)
    for device_id, log in result.device_write_logs.items():
        if not log or device_id in failed:
            continue
        _t, _value, last_source = log[-1]
        if not (isinstance(last_source, int)
                and last_source in aborted_ids):
            continue    # final write is already authoritative
        replayed = committed = initial.get(device_id)
        for _t, value, source in log:
            if isinstance(source, int) and source in aborted_ids:
                continue
            replayed = value
            if not isinstance(source, tuple):   # forward/hub, not rollback
                committed = value
        end = result.end_state.get(device_id)
        if end != replayed and end != committed:
            out.append(Violation(
                "abort-erasure", routine_id=last_source,
                detail=f"aborted routine {last_source} decided device "
                       f"{device_id}'s final state ({end!r} != erased "
                       f"value {replayed!r} or committed value "
                       f"{committed!r})"))


def _check_attribution(result: RunResult, out: List[Violation]) -> None:
    known = {run.routine_id for run in result.runs}
    for device_id, log in result.device_write_logs.items():
        for _t, _value, source in log:
            writer = _writer_id(source)
            if writer is not None and writer not in known:
                out.append(Violation(
                    "write-attribution",
                    detail=f"device {device_id} write attributed to "
                           f"unknown routine {writer}"))


# -- isolation invariants ------------------------------------------------------

def _windows(result: RunResult) -> List[Tuple[float, float, Any]]:
    return [(run.start_time, run.finish_time, run)
            for run in result.runs
            if run.start_time is not None and run.finish_time is not None]


def _check_no_overlap(result: RunResult, out: List[Violation],
                      invariant: str, conflicting_only: bool) -> None:
    windows = sorted(_windows(result), key=lambda w: (w[0], w[2].routine_id))
    for i, (start_a, finish_a, run_a) in enumerate(windows):
        for start_b, finish_b, run_b in windows[i + 1:]:
            if start_b >= finish_a - _OVERLAP_EPS:
                break       # sorted by start: no later window overlaps
            if conflicting_only and not (
                    run_a.routine.device_set & run_b.routine.device_set):
                continue
            out.append(Violation(
                invariant, routine_id=run_b.routine_id,
                detail=f"routines {run_a.routine_id} and "
                       f"{run_b.routine_id} overlap "
                       f"[{start_b:.3f}, {min(finish_a, finish_b):.3f}]"))


def _check_serial_end_state(result: RunResult, initial: Dict[int, Any],
                            out: List[Violation], invariant: str,
                            exhaustive_limit: int) -> None:
    """The end state must be reachable by SOME serial order (failure-free
    runs) or by the reconstructed order interleaved with failure events
    (runs with detections)."""
    try:
        if result.detection_events:
            ok = validate_serial_order(result, initial)
        else:
            writes = effective_writes(result.runs)
            ok = serial_end_state_exists(
                result.end_state, writes, initial,
                exhaustive_limit=exhaustive_limit)
    except SafeHomeError as error:
        out.append(Violation(invariant,
                             detail=f"serial-order reconstruction: {error}"))
        return
    if not ok:
        out.append(Violation(
            invariant,
            detail="end state is not serially equivalent to any order "
                   "of the committed routines"))


def _check_ev_lineage(result: RunResult, initial: Dict[int, Any],
                      out: List[Violation]) -> None:
    """EV's device access order must be acyclic and its topological
    order must replay to the observed end state."""
    try:
        order = reconstruct_serial_order(result)
    except SafeHomeError as error:
        out.append(Violation("ev-lineage-acyclic", detail=str(error)))
        return
    if not validate_serial_order(result, initial, order):
        out.append(Violation(
            "ev-lineage-replay",
            detail="replaying the reconstructed serial order "
                   f"{order} does not reproduce the end state"))


_UNIVERSAL = ("terminal-status", "commit-abort-partition",
              "abort-erasure", "write-attribution")

#: Extra invariants checked per model (beyond the universal set).
MODEL_INVARIANTS: Dict[str, Tuple[str, ...]] = {
    "wv": (),
    "gsv": ("gsv-isolation", "gsv-serializable"),
    "sgsv": ("gsv-isolation", "gsv-serializable"),
    "psv": ("psv-footprint-atomicity", "psv-serializable"),
    "ev": ("ev-lineage-acyclic", "ev-lineage-replay"),
    "occ": ("occ-committed-serializable",),
}


def check_run(result: RunResult, initial: Dict[int, Any],
              model: Optional[str] = None,
              exhaustive_limit: int = 6) -> OracleReport:
    """Check every invariant ``model`` promises against one run.

    ``model`` defaults to ``result.model_name``; ``initial`` is the
    registry snapshot taken before the run (``SafeHome.initial`` /
    ``Home.initial``).
    """
    model = model or result.model_name
    if model not in MODEL_INVARIANTS:
        raise ValueError(f"unknown model {model!r}; "
                         f"pick from {sorted(MODEL_INVARIANTS)}")
    violations: List[Violation] = []
    _check_terminal(result, violations)
    _check_partition(result, violations)
    _check_abort_erasure(result, initial, violations)
    _check_attribution(result, violations)

    extra = MODEL_INVARIANTS[model]
    if model in ("gsv", "sgsv"):
        _check_no_overlap(result, violations, "gsv-isolation",
                          conflicting_only=False)
        _check_serial_end_state(result, initial, violations,
                                "gsv-serializable", exhaustive_limit)
    elif model == "psv":
        _check_no_overlap(result, violations, "psv-footprint-atomicity",
                          conflicting_only=True)
        _check_serial_end_state(result, initial, violations,
                                "psv-serializable", exhaustive_limit)
    elif model == "ev":
        _check_ev_lineage(result, initial, violations)
    elif model == "occ":
        _check_serial_end_state(result, initial, violations,
                                "occ-committed-serializable",
                                exhaustive_limit)

    return OracleReport(model=model, checked=_UNIVERSAL + extra,
                        violations=violations)
