"""Post-run analysis: one :class:`MetricsReport` per simulation."""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.controller import RoutineStatus, RunResult
from repro.metrics import congruence, serialization
from repro.metrics.stats import (mean, normalized_swap_distance, percentile,
                                 summarize)


@dataclass
class MetricsReport:
    """All §7.1 metrics for one run."""

    model_name: str
    routines: int
    committed: int
    aborted: int
    latency: Dict[str, float]            # summary over committed runs
    norm_latency: Dict[str, float]       # latency / ideal routine runtime
    wait_time: Dict[str, float]
    stretch: List[float]                 # per committed routine
    temporary_incongruence: float
    final_congruent: Optional[bool]
    parallelism_mean: float
    parallelism_p50: float
    abort_rate: float
    rollback_overhead_mean: float
    order_mismatch: float
    serial_order: List[int] = field(default_factory=list)
    # Execution-core breakdowns (added with core/execution/): per-plan
    # makespan (first command start → finish, committed runs) and
    # lock-wait seconds (ready-but-blocked command time plus lock-table
    # admission waits).  Not part of row() so legacy tables/reports stay
    # byte-identical.
    plan_makespan: Dict[str, float] = field(default_factory=dict)
    lock_wait: Dict[str, float] = field(default_factory=dict)
    # row() is recomputed by every table/JSON emitter that touches the
    # report (fleet workers, CLI, experiment drivers) — memoize it.
    _row_cache: Optional[Dict[str, Any]] = field(
        default=None, init=False, repr=False, compare=False)

    def row(self) -> Dict[str, Any]:
        """Flat dict for table printing (cached; copy per call)."""
        if self._row_cache is None:
            self._row_cache = self._build_row()
        return dict(self._row_cache)

    def _build_row(self) -> Dict[str, Any]:
        return {
            "model": self.model_name,
            "routines": self.routines,
            "committed": self.committed,
            "aborted": self.aborted,
            "lat_p50": round(self.latency["p50"], 3),
            "lat_p95": round(self.latency["p95"], 3),
            "wait_p50": round(self.wait_time["p50"], 3),
            "temp_incong": round(self.temporary_incongruence, 4),
            "final_ok": self.final_congruent,
            "parallelism": round(self.parallelism_mean, 3),
            "abort_rate": round(self.abort_rate, 4),
            "rollback": round(self.rollback_overhead_mean, 4),
            "order_mismatch": round(self.order_mismatch, 4),
        }


def parallelism_samples(result: RunResult) -> List[int]:
    """Concurrent running routines, sampled at every start/end point.

    The count at ``t`` is ``#{start <= t} - #{finish <= t}`` (intervals
    are half-open), which two bisects answer per point instead of a
    scan over every interval.
    """
    from bisect import bisect_right

    intervals = [(run.start_time, run.finish_time) for run in result.runs
                 if run.start_time is not None
                 and run.finish_time is not None]
    if not intervals:
        return []
    points = sorted({t for interval in intervals for t in interval})
    starts = sorted(start for start, _finish in intervals)
    finishes = sorted(finish for _start, finish in intervals)
    return [bisect_right(starts, t) - bisect_right(finishes, t)
            for t in points]


def stretch_factors(result: RunResult) -> List[float]:
    """actual-run-time / ideal-run-time per committed routine (§7.5.1).

    The ideal is the sum of command durations; actual is first command
    start → finish (lock waits during execution stretch the routine).
    """
    factors = []
    for run in result.runs:
        if run.status is not RoutineStatus.COMMITTED:
            continue
        ideal = run.routine.total_duration
        if ideal <= 0 or run.start_time is None:
            continue
        factors.append((run.finish_time - run.start_time) / ideal)
    return factors


def analyze(result: RunResult, initial: Dict[int, Any],
            check_final: bool = True,
            exhaustive_limit: int = 8) -> MetricsReport:
    """Compute every §7.1 metric for a completed run."""
    # result.committed/.aborted rebuild their lists per access — hoist
    # them once; this function dominates post-run cost in fleet sweeps.
    committed = result.committed
    aborted = result.aborted
    latencies = [run.latency for run in committed]
    norm_latencies = [
        run.latency / run.routine.total_duration
        for run in committed
        if run.routine.total_duration > 0]
    waits = [run.wait_time for run in result.runs
             if run.wait_time is not None]
    samples = parallelism_samples(result)
    final: Optional[bool] = None
    serial_order: List[int] = []
    if check_final:
        if result.detection_events:
            serial_order = serialization.reconstruct_serial_order(result)
            final = serialization.validate_serial_order(
                result, initial, serial_order)
        else:
            final = congruence.final_state_serializable(
                result, initial, exhaustive_limit=exhaustive_limit)
    try:
        if not serial_order:
            serial_order = serialization.reconstruct_serial_order(result)
    except Exception:
        serial_order = []  # WV executions may be cyclic — expected

    submission_order = [run.routine_id for run in
                        sorted(result.runs,
                               key=lambda r: (r.submit_time, r.routine_id))
                        if run.status is RoutineStatus.COMMITTED]
    mismatch = normalized_swap_distance(serial_order, submission_order) \
        if serial_order else 0.0

    overheads = result.rollback_overheads()
    return MetricsReport(
        model_name=result.model_name,
        routines=len(result.runs),
        committed=len(committed),
        aborted=len(aborted),
        latency=summarize(latencies),
        norm_latency=summarize(norm_latencies),
        wait_time=summarize(waits),
        stretch=stretch_factors(result),
        temporary_incongruence=congruence.temporary_incongruence(result),
        final_congruent=final,
        parallelism_mean=mean(samples),
        parallelism_p50=percentile(samples, 50),
        abort_rate=result.abort_rate,
        rollback_overhead_mean=mean(overheads),
        order_mismatch=mismatch,
        serial_order=serial_order,
        plan_makespan=summarize([
            run.finish_time - run.start_time for run in committed
            if run.start_time is not None and run.finish_time is not None]),
        lock_wait=summarize([run.lock_wait_s for run in result.runs]),
    )
