"""Small statistics helpers shared by experiments and reports."""

from typing import Dict, List, Sequence, Tuple


class FixedResolutionHistogram:
    """Sparse fixed-resolution histogram with exact, mergeable counts.

    The streaming fleet aggregator pre-reduces each worker chunk into
    one of these so the parent merges O(workers) histograms instead of
    sorting O(homes × routines) raw latency samples.  Bins are
    ``int(value / resolution)`` with integer counts, so merging is
    commutative, associative and byte-deterministic regardless of the
    order samples or partials arrive in.  A quantile is answered with
    the *lower edge* of the bin holding the nearest-rank sample —
    within ``resolution`` of the exact pooled value.
    """

    __slots__ = ("resolution", "bins", "count")

    def __init__(self, resolution: float = 1e-3) -> None:
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.resolution = resolution
        self.bins: Dict[int, int] = {}
        self.count = 0

    def add(self, value: float) -> None:
        bin_index = int(value / self.resolution)
        bins = self.bins
        bins[bin_index] = bins.get(bin_index, 0) + 1
        self.count += 1

    def extend(self, values: Sequence[float]) -> None:
        resolution = self.resolution
        bins = self.bins
        for value in values:
            bin_index = int(value / resolution)
            bins[bin_index] = bins.get(bin_index, 0) + 1
        self.count += len(values)

    def merge(self, other: "FixedResolutionHistogram") -> None:
        if other.resolution != self.resolution:
            raise ValueError(
                f"cannot merge histograms of resolution "
                f"{self.resolution} and {other.resolution}")
        bins = self.bins
        for bin_index, count in other.bins.items():
            bins[bin_index] = bins.get(bin_index, 0) + count
        self.count += other.count

    def items(self) -> List[Tuple[int, int]]:
        """Sorted ``(bin_index, count)`` pairs — the histogram's
        canonical dense form, used by the struct-packed shared-memory
        transport (:mod:`repro.fleet.shm`) and by tests."""
        return sorted(self.bins.items())

    @classmethod
    def from_items(cls, resolution: float,
                   items: Sequence[Tuple[int, int]]
                   ) -> "FixedResolutionHistogram":
        """Rebuild a histogram from :meth:`items` output."""
        histogram = cls(resolution)
        bins = histogram.bins
        total = 0
        for bin_index, count in items:
            if count < 0:
                raise ValueError(f"negative bin count {count} "
                                 f"at bin {bin_index}")
            bins[int(bin_index)] = bins.get(int(bin_index), 0) + int(count)
            total += int(count)
        histogram.count = total
        return histogram

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile (lower bin edge), q in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        if not self.count:
            return 0.0
        rank = int((self.count - 1) * q / 100.0)
        remaining = rank
        for bin_index in sorted(self.bins):
            remaining -= self.bins[bin_index]
            if remaining < 0:
                return bin_index * self.resolution
        return max(self.bins) * self.resolution   # unreachable guard


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile_sorted(data: Sequence[float], q: float) -> float:
    """:func:`percentile` over *already sorted* data (no re-sort).

    Callers that need several quantiles of one sample (``summarize``,
    the fleet aggregator) sort once and fan out through this.
    """
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    if not data:
        return 0.0
    if len(data) == 1:
        return data[0]
    rank = (len(data) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(data) - 1)
    fraction = rank - low
    value = data[low] * (1 - fraction) + data[high] * fraction
    # Clamp: interpolation may overshoot its endpoints by an ulp.
    return min(max(value, data[low]), data[high])


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    return percentile_sorted(sorted(values), q)


def median(values: Sequence[float]) -> float:
    return percentile(values, 50)


def cdf_points(values: Sequence[float],
               points: int = 50) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs for plotting a CDF."""
    data = sorted(values)
    if not data:
        return []
    n = len(data)
    step = max(1, n // points)
    out = [(data[i], (i + 1) / n) for i in range(0, n, step)]
    if out[-1][0] != data[-1]:
        out.append((data[-1], 1.0))
    return out


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Summary statistics used throughout EXPERIMENTS.md."""
    data = list(values)
    if not data:
        return {"n": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                "p95": 0.0, "max": 0.0}
    # Mean is summed in arrival order (float addition is order-
    # sensitive and reports are byte-stable), then one in-place sort
    # serves every quantile.
    average = mean(data)
    data.sort()
    return {
        "n": len(data),
        "mean": average,
        "p50": percentile_sorted(data, 50),
        "p90": percentile_sorted(data, 90),
        "p95": percentile_sorted(data, 95),
        "max": data[-1],
    }


def swap_distance(order: Sequence[int], reference: Sequence[int]) -> int:
    """Kendall-tau distance: adjacent swaps to turn ``reference`` into
    ``order`` (the paper's "order mismatch", §7.6).

    Elements present in only one sequence are ignored.
    """
    common = set(order) & set(reference)
    a = [x for x in order if x in common]
    rank = {x: i for i, x in enumerate(a)}
    b = [rank[x] for x in reference if x in common]
    # Count inversions in b (O(n^2); orders are small).
    inversions = 0
    for i in range(len(b)):
        for j in range(i + 1, len(b)):
            if b[i] > b[j]:
                inversions += 1
    return inversions


def normalized_swap_distance(order: Sequence[int],
                             reference: Sequence[int]) -> float:
    """Swap distance normalized by the worst case n·(n−1)/2 → [0, 1]."""
    common = set(order) & set(reference)
    n = len(common)
    if n < 2:
        return 0.0
    worst = n * (n - 1) / 2
    return swap_distance(order, reference) / worst
