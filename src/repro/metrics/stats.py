"""Small statistics helpers shared by experiments and reports."""

from typing import Dict, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    data = sorted(values)
    if not data:
        return 0.0
    if len(data) == 1:
        return data[0]
    rank = (len(data) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(data) - 1)
    fraction = rank - low
    value = data[low] * (1 - fraction) + data[high] * fraction
    # Clamp: interpolation may overshoot its endpoints by an ulp.
    return min(max(value, data[low]), data[high])


def median(values: Sequence[float]) -> float:
    return percentile(values, 50)


def cdf_points(values: Sequence[float],
               points: int = 50) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs for plotting a CDF."""
    data = sorted(values)
    if not data:
        return []
    n = len(data)
    step = max(1, n // points)
    out = [(data[i], (i + 1) / n) for i in range(0, n, step)]
    if out[-1][0] != data[-1]:
        out.append((data[-1], 1.0))
    return out


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Summary statistics used throughout EXPERIMENTS.md."""
    data = list(values)
    if not data:
        return {"n": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                "p95": 0.0, "max": 0.0}
    return {
        "n": len(data),
        "mean": mean(data),
        "p50": percentile(data, 50),
        "p90": percentile(data, 90),
        "p95": percentile(data, 95),
        "max": max(data),
    }


def swap_distance(order: Sequence[int], reference: Sequence[int]) -> int:
    """Kendall-tau distance: adjacent swaps to turn ``reference`` into
    ``order`` (the paper's "order mismatch", §7.6).

    Elements present in only one sequence are ignored.
    """
    common = set(order) & set(reference)
    a = [x for x in order if x in common]
    rank = {x: i for i, x in enumerate(a)}
    b = [rank[x] for x in reference if x in common]
    # Count inversions in b (O(n^2); orders are small).
    inversions = 0
    for i in range(len(b)):
        for j in range(i + 1, len(b)):
            if b[i] > b[j]:
                inversions += 1
    return inversions


def normalized_swap_distance(order: Sequence[int],
                             reference: Sequence[int]) -> float:
    """Swap distance normalized by the worst case n·(n−1)/2 → [0, 1]."""
    common = set(order) & set(reference)
    n = len(common)
    if n < 2:
        return 0.0
    worst = n * (n - 1) / 2
    return swap_distance(order, reference) / worst
