"""Cohort comparison: judge a canary against its baseline.

The control plane (docs/control-plane.md) splits a fleet into named
cohorts and needs a deterministic verdict: did the canary cohort's
config change regress congruence, abort rate, or tail latency relative
to the stable cohort?  This module groups per-home fleet rows by their
``cohort`` column, reuses :func:`~repro.metrics.fleet.aggregate_homes`
per group, and compares aggregates against the plan's thresholds.
"""

from typing import Any, Dict, List, Mapping, Sequence

from repro.metrics.fleet import aggregate_homes


def cohort_rows(rows: Sequence[Mapping[str, Any]]
                ) -> Dict[str, List[Mapping[str, Any]]]:
    """Group fleet rows by their ``cohort`` column (sorted names).

    Rows without a cohort fall into ``"stable"``; failed (abandoned)
    homes are excluded — a zeroed row would dilute every rate the
    comparison is about.
    """
    groups: Dict[str, List[Mapping[str, Any]]] = {}
    for row in rows:
        if row.get("failed"):
            continue
        groups.setdefault(row.get("cohort", "stable"), []).append(row)
    return {name: groups[name] for name in sorted(groups)}


def cohort_aggregates(rows: Sequence[Mapping[str, Any]]
                      ) -> Dict[str, Dict[str, Any]]:
    """Per-cohort fleet aggregates: ``{cohort: aggregate_homes(...)}``."""
    return {name: aggregate_homes(group)
            for name, group in cohort_rows(rows).items()}


def compare_cohorts(candidate: Mapping[str, Any],
                    baseline: Mapping[str, Any],
                    max_abort_rate_delta: float = 0.1,
                    max_incongruence_delta: float = 0.0,
                    max_p95_ratio: float = 1.5) -> Dict[str, Any]:
    """Deterministic regression verdict for one cohort pair.

    ``candidate``/``baseline`` are :func:`aggregate_homes` dicts.
    Checks three axes: abort-rate delta, final-incongruence delta
    (count, normalized per home) and the p95 latency ratio.  Returns
    ``{"regressed": bool, "reasons": [...], "deltas": {...}}`` with
    every number rounded for byte-stable JSON.
    """
    reasons: List[str] = []
    abort_delta = candidate["abort_rate"] - baseline["abort_rate"]
    if abort_delta > max_abort_rate_delta:
        reasons.append(
            f"abort_rate +{abort_delta:.4f} > {max_abort_rate_delta}")
    cand_homes = max(1, candidate.get("homes_final_checked", 0) or 1)
    base_homes = max(1, baseline.get("homes_final_checked", 0) or 1)
    incongruence_delta = (candidate["final_incongruence"] / cand_homes
                          - baseline["final_incongruence"] / base_homes)
    if incongruence_delta > max_incongruence_delta:
        reasons.append(
            f"final_incongruence +{incongruence_delta:.4f} > "
            f"{max_incongruence_delta}")
    base_p95 = baseline["latency"]["p95"]
    cand_p95 = candidate["latency"]["p95"]
    p95_ratio = cand_p95 / base_p95 if base_p95 > 0 else \
        (1.0 if cand_p95 <= 0 else float("inf"))
    if p95_ratio > max_p95_ratio:
        reasons.append(f"lat_p95 ratio {p95_ratio:.3f} > {max_p95_ratio}")
    return {
        "regressed": bool(reasons),
        "reasons": reasons,
        "deltas": {
            "abort_rate_delta": round(abort_delta, 6),
            "incongruence_delta": round(incongruence_delta, 6),
            "p95_ratio": round(p95_ratio, 6)
            if p95_ratio != float("inf") else "inf",
        },
    }
