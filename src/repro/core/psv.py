"""Partitioned Strict Visibility (PSV) (§2.1, §3).

Non-conflicting routines run concurrently; conflicting routines are
serialized in arrival order.  Admission is expressed against the shared
lock table: a routine atomically requests an exclusive lock on every
device it touches at arrival, starting when all are granted.  FIFO wait
queues reproduce the old blocked-set scan exactly — a waiting routine's
devices block later conflicting arrivals, and grants cascade in arrival
order when a routine finishes.  Because each arrival requests its whole
footprint atomically, wait-for edges always point at earlier arrivals
and admission is deadlock-free by construction.

Failure serialization modifies Eventual Visibility's rules with
condition 3* (§3): a failure after the routine's last touch of a device
is serializable *only if the device has recovered by the routine's
finish point* — otherwise the routine aborts at its finish point (which
is why PSV's rollback overhead is high, §7.4).
"""

from typing import List

from repro.core.controller import RoutineRun, RoutineStatus
from repro.core.execution.engine import PlanExecutionMixin


class PartitionedStrictVisibilityController(PlanExecutionMixin):
    """Conflict-serialized execution with finish-point failure checks."""

    model_name = "psv"
    # Hub-crash recovery (docs/durability.md): each partition is a
    # strict serial order; a routine executing across the outage cannot
    # keep that promise, so recovery aborts it (waiting admissions are
    # durable in the lock table and proceed untouched).
    hub_recovery_policy = "abort"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._running: List[RoutineRun] = []

    def snapshot_state(self):
        state = super().snapshot_state()
        state["running"] = [run.routine_id for run in self._running]
        state["failed_after_last_touch"] = {
            run.routine_id: sorted(run.failed_after_last_touch)
            for run in self._running if run.failed_after_last_touch}
        return state

    def _arrive(self, run: RoutineRun) -> None:
        run.status = RoutineStatus.WAITING
        if self._admit_with_locks(run, run.routine.device_ids):
            self._start_admitted(run)

    def _start_admitted(self, run: RoutineRun) -> None:
        self._running.append(run)
        self._begin(run)
        self._run_next(run)

    def _policy_after_finish(self, run: RoutineRun) -> None:
        if run in self._running:
            self._running.remove(run)
        self._release_admission_locks(run)

    # -- failure serialization (EV rules with condition 3*) ------------------

    def _policy_on_failure(self, device_id: int) -> None:
        for run in list(self._running):
            if run.done or device_id not in run.routine.device_set:
                continue
            if run.in_touch_phase(device_id):
                self.request_abort(
                    run, f"failure of device {device_id} mid-touch")
            elif device_id in run.devices_done:
                run.failed_after_last_touch.add(device_id)
            # Not yet touched: the believed-failed check at touch time
            # aborts (must) or skips (best-effort) if it has not
            # recovered — condition 2 allows fail+restart before first
            # touch.

    def _finish_point(self, run: RoutineRun) -> None:
        still_down = {d for d in run.failed_after_last_touch
                      if d in self.believed_failed}
        if still_down:
            self.abort(run, f"devices {sorted(still_down)} failed after "
                            "last touch and not recovered at finish point")
            return
        self.commit(run)
