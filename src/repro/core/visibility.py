"""Visibility-model factory (Table 1's spectrum)."""

import enum
from typing import Optional, Union

from repro.core.controller import Controller, ControllerConfig
from repro.core.ev import EventualVisibilityController
from repro.core.gsv import GlobalStrictVisibilityController, \
    StrongGSVController
from repro.core.occ import OptimisticController
from repro.core.psv import PartitionedStrictVisibilityController
from repro.core.wv import WeakVisibilityController
from repro.devices.driver import Driver
from repro.devices.registry import DeviceRegistry
from repro.sim.engine import Simulator


class VisibilityModel(enum.Enum):
    """The spectrum of §2.1 plus the strong GSV flavor of §3."""

    WV = "wv"       # Weak Visibility (status quo)
    GSV = "gsv"     # Global Strict Visibility (loose failure rule)
    SGSV = "sgsv"   # Strong GSV
    PSV = "psv"     # Partitioned Strict Visibility
    EV = "ev"       # Eventual Visibility
    OCC = "occ"     # Optimistic validation (the paper's future work)

    @classmethod
    def parse(cls, value: Union[str, "VisibilityModel"]) -> "VisibilityModel":
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise ValueError(
                f"unknown visibility model {value!r}; "
                f"pick from {[m.value for m in cls]}") from None


_CONTROLLERS = {
    VisibilityModel.WV: WeakVisibilityController,
    VisibilityModel.GSV: GlobalStrictVisibilityController,
    VisibilityModel.SGSV: StrongGSVController,
    VisibilityModel.PSV: PartitionedStrictVisibilityController,
    VisibilityModel.EV: EventualVisibilityController,
    VisibilityModel.OCC: OptimisticController,
}


def make_controller(model: Union[str, VisibilityModel], sim: Simulator,
                    registry: DeviceRegistry, driver: Driver,
                    config: Optional[ControllerConfig] = None) -> Controller:
    """Build the concurrency controller for a visibility model."""
    model = VisibilityModel.parse(model)
    return _CONTROLLERS[model](sim, registry, driver, config)
