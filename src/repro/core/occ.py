"""Optimistic concurrency control — the paper's flagged future work.

§4.1 (footnote 3): "For the limited scenarios where routines are known
to be conflict-free, optimistic approaches may be worth exploring in
future work."  This controller explores exactly that: routines execute
immediately with no locks (like WV), and validate at their finish point
against the routines that committed during their lifetime
(first-committer-wins backward validation).  A conflicted routine is
rolled back and retried a bounded number of times.

The guarantee matches EV's: committed routines are end-state
serializable (in commit order).  The cost profile inverts EV's — zero
lock latency when conflicts are rare, but aborts+undo (which §4.1 calls
"disruptive to the human experience") when they are not.  The
`bench_occ` benchmark quantifies that trade-off and confirms the
paper's reasoning for preferring pessimistic locking.
"""

from dataclasses import dataclass
from typing import Any, Dict, List, Set

from repro.core.command import CommandExecution
from repro.core.controller import RoutineRun, RoutineStatus
from repro.core.execution.engine import PlanExecutionMixin
from repro.core.routine import Routine
from repro.core.lineage import UNSET


@dataclass(frozen=True)
class CommitRecord:
    """What a committed routine wrote, and when it committed."""

    routine_id: int
    commit_time: float
    write_set: frozenset


class OptimisticController(PlanExecutionMixin):
    """Lock-free execution with finish-point validation."""

    model_name = "occ"
    max_retries = 3
    # Hub-crash recovery (docs/durability.md): optimistic execution is
    # naturally restartable — a recovered routine re-validates its
    # read/write sets at its finish point, so it resumes and any
    # outage-induced conflict is caught by first-committer-wins.
    hub_recovery_policy = "resume"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.commit_log: List[CommitRecord] = []
        self.committed_states: Dict[int, Any] = {}
        self.retries_used: Dict[int, int] = {}
        self.validation_aborts = 0

    def snapshot_state(self):
        state = super().snapshot_state()
        state["commit_log"] = [{
            "routine_id": record.routine_id,
            "commit_time": record.commit_time,
            "write_set": sorted(record.write_set),
        } for record in self.commit_log]
        state["committed_states"] = dict(self.committed_states)
        state["retries_used"] = dict(self.retries_used)
        state["validation_aborts"] = self.validation_aborts
        return state

    # -- execution: run immediately, like WV --------------------------------------

    def _arrive(self, run: RoutineRun) -> None:
        self._begin(run)
        self._run_next(run)

    # -- validation (first committer wins) ------------------------------------------

    def _finish_point(self, run: RoutineRun) -> None:
        conflict = self._conflicting_commit(run)
        if conflict is None:
            self._commit_validated(run)
            return
        self.validation_aborts += 1
        self.abort(run, f"validation conflict with routine "
                        f"{conflict.routine_id}")
        self._maybe_retry(run)

    def _conflicting_commit(self, run: RoutineRun):
        """A commit that overlapped this run's lifetime and footprint."""
        footprint: Set[int] = set(run.routine.device_set)
        start = run.start_time if run.start_time is not None else 0.0
        for record in reversed(self.commit_log):
            if record.commit_time <= start:
                break
            if record.write_set & footprint:
                return record
        return None

    def _commit_validated(self, run: RoutineRun) -> None:
        writes = run.effective_final_writes()
        self.commit_log.append(CommitRecord(
            routine_id=run.routine_id,
            commit_time=self.sim.now,
            write_set=frozenset(writes)))
        self.committed_states.update(writes)
        self.commit(run)

    # -- rollback: restore last *committed* values ------------------------------------

    def _rollback_targets(self, run: RoutineRun) -> Dict[int, Any]:
        """Unlike the base (prior-state) policy, OCC restores the last
        committed value — a concurrent routine's uncommitted write may
        be physically newer than ours and must not be resurrected."""
        targets: Dict[int, Any] = {}
        for execution in run.executions:
            command = execution.command
            if not (execution.applied and command.is_write):
                continue
            device_id = command.device_id
            device = self.registry.get(device_id)
            if device.last_writer() != run.routine_id:
                continue  # someone newer owns the state now
            committed = self.committed_states.get(device_id, UNSET)
            if committed is UNSET:
                committed = run.prior_states[device_id]
            targets[device_id] = self.undo_registry.resolve(
                command, committed)
        return targets

    # -- retry ---------------------------------------------------------------------------

    def _maybe_retry(self, run: RoutineRun) -> None:
        used = self.retries_used.get(run.routine_id, 0)
        if used >= self.max_retries:
            return
        retry = Routine(name=run.routine.name,
                        commands=list(run.routine.commands),
                        user=run.routine.user,
                        trigger="occ-retry")
        new_run = self.submit(retry, when=self.sim.now)
        self.retries_used[new_run.routine_id] = used + 1
