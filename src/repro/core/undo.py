"""Undo handlers for physically irreversible commands (§2.2).

Most commands roll back by restoring the device's prior state ("turn
Light-3 ON" undoes to OFF).  Some actions cannot be physically undone —
"run north sprinklers for 15 mins", "blare a test alarm" — for these the
paper restores the device's pre-routine *state* (our default rollback
already does exactly that) or applies a **user-specified undo-handler**.
This registry implements the latter.
"""

from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.command import Command

# An undo handler maps (command, prior_state) -> state to restore.
UndoHandler = Callable[[Command, Any], Any]


class UndoRegistry:
    """Per-device and per-device-kind user-specified undo handlers."""

    def __init__(self) -> None:
        self._by_device: Dict[int, UndoHandler] = {}
        self._default: Optional[UndoHandler] = None

    def register(self, device_id: int, handler: UndoHandler) -> None:
        self._by_device[device_id] = handler

    def register_default(self, handler: UndoHandler) -> None:
        self._default = handler

    def resolve(self, command: Command, prior_state: Any) -> Any:
        """The state to restore when undoing ``command``.

        Precedence: the command's own ``undo_value`` (from its spec),
        then a device-specific handler, then the default handler, then
        the prior state (the paper's baseline behaviour).
        """
        if command.undo_value is not None:
            return command.undo_value
        handler = self._by_device.get(command.device_id, self._default)
        if handler is not None:
            return handler(command, prior_state)
        return prior_state


def quiesce_handler(quiet_state: Any) -> UndoHandler:
    """A common pattern: undo always parks the device in a safe state
    (sprinkler OFF, alarm DISARMED) regardless of its prior state."""

    def handler(_command: Command, _prior: Any) -> Any:
        return quiet_state

    return handler
