"""Eventual Visibility (EV): SafeHome's headline model (§4).

EV lets conflicting routines run concurrently while guaranteeing that
the *end state* equals some serial execution of the committed routines
(plus failure/restart events).  The machinery:

* virtual locks with **early lock acquisition** — a routine's entire
  footprint is placed in the lineage table atomically at scheduling
  time, so it never aborts for lock contention (§4.1);
* **pre-/post-leasing** of locks, expressed as lineage placements;
* pluggable **schedulers** (FCFS / JiT / Timeline, §5);
* **commit compaction** ("last writer wins", Fig 7);
* lineage-driven **rollback** on abort (§4.3);
* EV failure serialization (§3): a failure detected after a routine's
  last touch of a device is serialized after the routine; a failure
  before its first touch is tolerated if the device restarts in time;
  anything else aborts the routine.
"""

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.command import Command, CommandExecution
from repro.core.controller import RoutineRun, RoutineStatus
from repro.core.execution.engine import PlanExecutionMixin
from repro.core.lineage import (UNSET, Gap, LineageTable, LockAccess,
                                LockStatus)
from repro.core.routine import LockRequest
from repro.errors import SchedulingError
from repro.sim.events import Event


class Placement:
    """One planned lock-access: where and when a routine uses a device."""

    __slots__ = ("request", "index", "planned_start", "duration")

    def __init__(self, request: LockRequest, index: int,
                 planned_start: float, duration: float) -> None:
        self.request = request
        self.index = index
        self.planned_start = planned_start
        self.duration = duration

    def __repr__(self) -> str:
        return (f"Placement(dev={self.request.device_id}, idx={self.index}, "
                f"t={self.planned_start:g}+{self.duration:g})")


class ClosureIndex:
    """Lazily memoized transitive preSet/postSet queries.

    Built from one pass over the live lineages (plus the compacted-
    before edges); individual reach sets are computed on first request
    and cached.  Placement touches only the owners of the gaps it
    actually examines and a commit needs a single routine's preSet, so
    most nodes' closures are never materialized — the results are
    value-identical to the old eager ``closure_sets()`` dict.
    """

    __slots__ = ("_successors", "_predecessors", "_pre", "_post")

    def __init__(self, successors: Dict[int, set],
                 predecessors: Dict[int, set]) -> None:
        self._successors = successors
        self._predecessors = predecessors
        self._pre: Dict[int, set] = {}
        self._post: Dict[int, set] = {}

    @staticmethod
    def _reach(start: int, graph: Dict[int, set],
               memo: Dict[int, set]) -> set:
        cached = memo.get(start)
        if cached is not None:
            return cached
        seen: set = set()
        frontier = list(graph.get(start, ()))
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            done = memo.get(node)
            if done is not None:
                seen.add(node)
                seen |= done
                continue
            seen.add(node)
            frontier.extend(graph.get(node, ()))
        memo[start] = seen
        return seen

    def pre(self, node: int) -> set:
        """Transitive predecessors (the paper's preSet)."""
        return self._reach(node, self._predecessors, self._pre)

    def post(self, node: int) -> set:
        """Transitive successors (the paper's postSet)."""
        return self._reach(node, self._successors, self._post)

    def nodes(self) -> set:
        return set(self._successors) | set(self._predecessors)


class EventualVisibilityController(PlanExecutionMixin):
    """Lineage-table based controller implementing EV."""

    model_name = "ev"
    # Hub-crash recovery (docs/durability.md): the lineage table is
    # exactly the structure the paper designed to survive restarts — it
    # pins every in-flight routine's serialization position, so recovery
    # re-issues remaining commands instead of aborting.
    hub_recovery_policy = "resume"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.table = LineageTable(
            committed_lookup=lambda d: self.registry.get(d).state)
        self._revocations: Dict[Tuple[int, int], Event] = {}
        # Serial-pump waiting index: device id -> {routine_id: run} of
        # runs whose next command is lock-blocked on that device.  A
        # release pumps exactly these candidates (in submission order)
        # instead of scanning every run in the home; see _pump_released.
        self._waiters: Dict[int, Dict[int, RoutineRun]] = {}
        # Commit compaction (Fig 7) can remove a *still-active* routine's
        # lock-access (a later routine overwrote it and committed).  The
        # ordering "that routine precedes everything placed on this
        # device afterwards" must survive the removal, or a subsequent
        # pre-lease could contradict it and break serializability.
        # device_id -> active routine ids serialized before the device's
        # committed state.
        self.compacted_before: Dict[int, set] = {}
        self.scheduler = self._make_scheduler()
        self.scheduler_stats: Dict[str, float] = {
            "placements": 0, "pre_leases": 0, "post_leases": 0}

    def _make_scheduler(self):
        from repro.core.schedulers import make_scheduler
        return make_scheduler(self.config.scheduler, self)

    # -- estimates -------------------------------------------------------------

    def estimate_duration(self, run: RoutineRun,
                          request: LockRequest) -> float:
        """Estimated lock-access duration (§4.3).

        Known command durations plus one τ-timeout per command (covering
        network latency), with optional injected estimation error for
        revocation experiments.
        """
        tau = self.config.tau_timeout_s
        base = request.duration + tau * len(request.command_indexes)
        estimate = max(base, tau)
        error = self.config.estimate_error
        if error:
            rng = self.driver.streams.stream("estimates")
            estimate *= max(0.05, 1.0 + rng.uniform(-error, error))
        return estimate

    def estimated_runtime(self, run: RoutineRun) -> float:
        return sum(self.estimate_duration(run, request)
                   for request in run.routine.lock_requests())

    def routine_end_estimator(self) -> Callable[[LockAccess], float]:
        """Projected end of an ACQUIRED access when post-leasing is off:
        the owner holds every lock until its routine finishes."""
        if self.config.post_lease:
            return lambda access: 0.0

        def estimate(access: LockAccess) -> float:
            run = self.run_by_id(access.routine_id)
            start = run.start_time if run.start_time is not None \
                else self.sim.now
            return start + self.estimated_runtime(run)

        return estimate

    # -- precedence closure (Invariant 4 / preSet-postSet) ------------------------

    def closure_index(self) -> ClosureIndex:
        """Lazy transitive preSet/postSet queries over live lineages.

        The paper's preSet/postSet are "the routines positioned before
        and after R in the serialization order" — transitively, which is
        what makes the emptiness test equivalent to acyclicity.
        """
        successors: Dict[int, set] = {}
        predecessors: Dict[int, set] = {}
        for lineage in self.table.lineages():
            entries = lineage.entries
            n = len(entries)
            if n < 2:       # no pairs — skip the owners() allocation
                continue
            owners = [entry.routine_id for entry in entries]
            for i in range(n - 1):
                before = owners[i]
                succ = successors.get(before)
                if succ is None:
                    succ = successors[before] = set()
                for j in range(i + 1, n):
                    after = owners[j]
                    succ.add(after)
                    pred = predecessors.get(after)
                    if pred is None:
                        pred = predecessors[after] = set()
                    pred.add(before)
        # Compacted-away predecessors precede every live access on that
        # device (those all sit right of the committed write).
        for device_id, hidden in self.compacted_before.items():
            owners = self.table.lineage(device_id).owners()
            for before in hidden:
                for after in owners:
                    successors.setdefault(before, set()).add(after)
                    predecessors.setdefault(after, set()).add(before)
        return ClosureIndex(successors, predecessors)

    def closure_sets(self) -> Dict[int, Tuple[set, set]]:
        """Eager dict view of :meth:`closure_index` (tests, tooling)."""
        index = self.closure_index()
        return {node: (index.pre(node), index.post(node))
                for node in index.nodes()}

    def _predecessor_index(self) -> ClosureIndex:
        """Predecessor-only closure: half the adjacency build of
        :meth:`closure_index` for callers (the commit path) that only
        query preSets.  ``post()`` on the result is meaningless."""
        predecessors: Dict[int, set] = {}
        for lineage in self.table.lineages():
            entries = lineage.entries
            n = len(entries)
            if n < 2:
                continue
            owners = [entry.routine_id for entry in entries]
            for j in range(1, n):
                after = owners[j]
                pred = predecessors.get(after)
                if pred is None:
                    pred = predecessors[after] = set()
                pred.update(owners[:j])
        for device_id, hidden in self.compacted_before.items():
            if hidden:
                for after in self.table.lineage(device_id).owners():
                    predecessors.setdefault(after, set()).update(hidden)
        return ClosureIndex({}, predecessors)

    def before_after_for_gap(self, device_id: int, index: int,
                             closures: ClosureIndex,
                             owners: Optional[List[int]] = None
                             ) -> Tuple[set, set]:
        """preSet/postSet contribution of placing an access at ``index``.

        ``owners`` may carry the device's owner list when the caller
        already snapshotted it (the Timeline search asks about many gaps
        of the same, unchanging lineage).
        """
        if owners is None:
            owners = self.table.lineage(device_id).owners()
        pre: set = set()
        post: set = set()
        # Every placement position is after the device's committed
        # state, hence after any active routine compacted behind it.
        for owner in self.compacted_before.get(device_id, ()):
            pre.add(owner)
            pre |= closures.pre(owner)
        for owner in owners[:index]:
            pre.add(owner)
            pre |= closures.pre(owner)
        for owner in owners[index:]:
            post.add(owner)
            post |= closures.post(owner)
        return pre, post

    # -- placement ---------------------------------------------------------------

    def place_run(self, run: RoutineRun,
                  placements: List[Placement]) -> None:
        """Atomically install a routine's lock-accesses (early lock
        acquisition: all or nothing, §4.1)."""
        final_values = run.routine.final_write_values()
        for placement in placements:
            request = placement.request
            lineage = self.table.lineage(request.device_id)
            access = LockAccess(
                routine_id=run.routine_id,
                device_id=request.device_id,
                planned_start=placement.planned_start,
                duration=placement.duration,
                writes=request.writes,
                reads=request.reads,
                final_value=final_values.get(request.device_id, UNSET),
                pre_leased=placement.index < len(lineage.entries),
            )
            if access.pre_leased:
                self.scheduler_stats["pre_leases"] += 1
            lineage.insert(placement.index, access)
            if self.journal is not None:
                self._journal("lineage-placed",
                              routine_id=run.routine_id,
                              device_id=request.device_id,
                              index=placement.index,
                              pre_leased=access.pre_leased)
            if placement.index + 1 < len(lineage.entries):
                # Only pre-leased insertions have successors to replan;
                # the common tail append skips the scan.
                self._replan_successors(lineage, access,
                                        index=placement.index)
        self.scheduler_stats["placements"] += 1
        if self.config.paranoid:
            self.table.verify_all()
        self._pump(run)

    @staticmethod
    def _replan_successors(lineage, access: LockAccess,
                           index: Optional[int] = None) -> None:
        """Keep Invariant 1 truthful after an insertion: successors that
        would now overlap in planned time are pushed right (this is the
        "stretch" an insertion imposes, Fig 9c)."""
        if index is None:
            index = lineage.index_of(access.routine_id)
        cursor = access.planned_end
        for later in lineage.entries[index + 1:]:
            if later.status is LockStatus.SCHEDULED and \
                    later.planned_start < cursor:
                later.planned_start = cursor
            cursor = max(cursor, later.planned_start + later.duration)

    # -- execution ------------------------------------------------------------------

    def _arrive(self, run: RoutineRun) -> None:
        run.status = RoutineStatus.WAITING
        self.scheduler.on_arrive(run)

    def _pump(self, run: RoutineRun) -> None:
        """Advance a routine if its next command's lock is available.

        Called for every active routine on every lock release, so the
        guards use direct attribute loads (status/inflight_count)
        rather than the equivalent convenience properties.
        """
        if self._parallel_flag:
            # The plan dispatcher issues every ready command whose
            # lineage entry is acquirable (see _claim_device).
            self._dispatch(run)
            return
        if run.status.finished or run.inflight_count > 0:
            return
        commands = run.routine.commands
        if run.next_index >= len(commands):
            self._finish_point(run)
            return
        command = commands[run.next_index]
        lineage = self.table.lineage(command.device_id)
        entry = lineage.entry_for(run.routine_id)
        if entry is None:
            return  # not placed yet; place_run pumps after placement
        if entry.status is LockStatus.SCHEDULED:
            if not lineage.try_acquire(entry, self.sim.now,
                                       finished=self.is_finished,
                                       wants_read=entry.reads):
                # Blocked: register so the next release on this device
                # pumps us again (stale entries are filtered on pump).
                waiting = self._waiters.get(command.device_id)
                if waiting is None:
                    waiting = self._waiters[command.device_id] = {}
                waiting[run.routine_id] = run
                return
            if self.journal is not None:
                self._journal("lineage-acquired",
                              routine_id=run.routine_id,
                              device_id=command.device_id)
            if entry.pre_leased:
                self._arm_revocation(run, entry)
        self._begin(run)
        run.next_index += 1
        self._issue_command(run, command, self._after_command)

    def _pump_all(self) -> None:
        # Snapshot of the full run list, filtered inline: _pump's first
        # guard skips finished runs, so this is trace-equivalent to
        # iterating active_runs() without building the filtered list.
        for run in list(self.runs):
            if not run.status.finished:
                self._pump(run)

    def _pump_released(self, device_ids,
                       also: Optional[RoutineRun] = None) -> None:
        """Pump the runs lock-blocked on the just-released devices.

        Trace-equivalent to the old full `_pump_all` scan: a serial-mode
        pump is a no-op unless the run's next command can acquire its
        lineage entry, and the only runs a release can newly enable are
        the registered waiters of the released devices — plus, on a
        post-lease mid-routine release, the releasing run itself
        (``also``), whose next command the full scan used to issue from
        its slot in the run list.  Candidates are pumped in submission
        order (ascending routine id), exactly the order the full scan
        visited them.  Parallel mode keeps the full scan — plan-DAG
        readiness is not indexed by device.
        """
        if self._parallel_flag:
            self._pump_all()
            return
        waiters = self._waiters
        candidates: Optional[Dict[int, RoutineRun]] = None
        for device_id in device_ids:
            waiting = waiters.get(device_id)
            if waiting:
                waiters[device_id] = {}
                if candidates is None:
                    candidates = waiting
                else:
                    candidates.update(waiting)
        if candidates is None:
            # No lock-blocked waiters; the releasing run (if any) gets
            # its pump from the normal post-command chain.
            return
        if also is not None:
            candidates[also.routine_id] = also
        runs = candidates.values() if len(candidates) == 1 else \
            [candidates[rid] for rid in sorted(candidates)]
        for run in runs:
            if not run.status.finished:
                self._pump(run)

    def _run_next(self, run: RoutineRun) -> None:
        # The execution engine calls this after each command; in EV
        # advancement is lock-gated, so route through the pump.
        self._pump(run)

    def _claim_device(self, run: RoutineRun, command: Command) -> bool:
        """Parallel-dispatch gate: a command may issue once its device's
        lineage entry is ACQUIRED (acquiring it now if it is this
        routine's turn on the device)."""
        lineage = self.table.lineage(command.device_id)
        entry = lineage.entry_for(run.routine_id)
        if entry is None:
            return False    # not placed yet (JiT keeps it queued)
        if entry.status is LockStatus.SCHEDULED:
            if not lineage.try_acquire(entry, self.sim.now,
                                       finished=self.is_finished,
                                       wants_read=entry.reads):
                return False
            if self.journal is not None:
                self._journal("lineage-acquired",
                              routine_id=run.routine_id,
                              device_id=command.device_id)
            if entry.pre_leased:
                self._arm_revocation(run, entry)
        return entry.status is LockStatus.ACQUIRED

    def _on_write_applied(self, run: RoutineRun,
                          execution: CommandExecution) -> None:
        entry = self.table.lineage(
            execution.command.device_id).entry_for(run.routine_id)
        if entry is not None:
            entry.applied_value = execution.command.value

    def _on_device_access_done(self, run: RoutineRun,
                               device_id: int) -> None:
        """Last command on the device finished → post-lease (§4.1)."""
        lineage = self.table.lineage(device_id)
        index = lineage.index_of(run.routine_id)
        if index is None:
            return
        entry = lineage.entries[index]
        if entry.status is not LockStatus.ACQUIRED:
            return
        if self.config.post_lease:
            # Inline release (the ACQUIRED guard above is release()'s
            # precondition); index is reused for the post-lease stat
            # instead of a second lineage scan.
            entry.status = LockStatus.RELEASED
            entry.released_at = self.sim.now
            if self.journal is not None:
                self._journal("lineage-released",
                              routine_id=run.routine_id,
                              device_id=device_id)
            if index + 1 < len(lineage.entries):
                self.scheduler_stats["post_leases"] += 1
            self._cancel_revocation(run, device_id)
            self._notify_release(device_id, run)
        # With post-leasing off the entry stays ACQUIRED until finish.

    def _notify_release(self, device_id: int,
                        releasing: Optional[RoutineRun] = None) -> None:
        self.scheduler.on_release(device_id)
        self._pump_released((device_id,), also=releasing)

    # -- finish: commit with compaction (§4.3, Fig 7) ----------------------------------

    def _finish_point(self, run: RoutineRun) -> None:
        # Active routines transitively serialized before this commit
        # must also precede anything placed over the committed states it
        # writes — remember them per device, or a later pre-lease could
        # contradict an order that only this (about-to-vanish) routine's
        # entries were witnessing.
        before_commit = {
            rid for rid in self._predecessor_index().pre(run.routine_id)
            if not self.is_finished(rid) and rid != run.routine_id}
        released_devices: List[int] = []
        for device_id in run.routine.device_ids:
            lineage = self.table.lineage(device_id)
            entry = lineage.entry_for(run.routine_id)
            if entry is None:
                # A later routine already committed and compacted us away
                # ("last writer wins") — our effect on this device is
                # superseded; no committed-state update.
                continue
            if entry.status is LockStatus.ACQUIRED:
                lineage.release(run.routine_id, self.sim.now)
            self._cancel_revocation(run, device_id)
            if entry.applied_value is not UNSET:
                self.table.set_committed(device_id, entry.applied_value,
                                         source=run.routine_id)
                compacted = self.table.compact_commit(run.routine_id,
                                                      device_id)
                if self.journal is not None:
                    self._journal("lineage-compacted",
                                  routine_id=run.routine_id,
                                  device_id=device_id,
                                  removed=sorted(compacted))
                if before_commit:
                    self.compacted_before.setdefault(
                        device_id, set()).update(before_commit)
            else:
                lineage.remove(run.routine_id)
            released_devices.append(device_id)
        self.commit(run)
        if self.config.paranoid:
            self.table.verify_all()
        for device_id in released_devices:
            self.scheduler.on_release(device_id)
        self._pump_released(released_devices)

    def _policy_after_finish(self, run: RoutineRun) -> None:
        for hidden in self.compacted_before.values():
            hidden.discard(run.routine_id)
        self.scheduler.on_finish(run)

    # -- abort & rollback (§4.3) ---------------------------------------------------------

    def _rollback(self, run: RoutineRun) -> None:
        released_devices: List[int] = []
        for device_id in run.routine.device_ids:
            lineage = self.table.lineage(device_id)
            entry = lineage.entry_for(run.routine_id)
            if entry is None:
                continue
            self._cancel_revocation(run, device_id)
            if lineage.is_last_writer(run.routine_id):
                target = self.resolve_undo(
                    run, device_id,
                    lineage.rollback_target(run.routine_id))
                lineage.remove(run.routine_id)
                self._restore_device(run, device_id, target)
            else:
                # Either we never wrote the device, or a successor's
                # write is already the latest — just drop the access.
                lineage.remove(run.routine_id)
            released_devices.append(device_id)
        if self.config.paranoid:
            self.table.verify_all()
        for device_id in released_devices:
            self.scheduler.on_release(device_id)
        self._pump_released(released_devices)

    def _restore_device(self, run: RoutineRun, device_id: int,
                        target: Any) -> None:
        if target is UNSET:
            return
        super()._restore_device(run, device_id, target)

    # -- lease revocation (§4.1) -----------------------------------------------------------

    def _arm_revocation(self, run: RoutineRun, entry: LockAccess) -> None:
        if not self.config.post_lease:
            # The revocation deadline is "estimated time between Rdst's
            # first and last actions on D" (§4.1) — meaningful only when
            # the lock returns after the last access.  With post-leasing
            # ablated the lock is held to routine finish, which includes
            # unbounded waits on other devices, so leases are not
            # revocable in that mode.
            return
        deadline = (entry.duration * self.config.leniency_factor
                    + self.config.revoke_slack_s)
        event = self.sim.call_after(
            deadline, self._revoke, run, entry.device_id,
            label="revoke")
        self._revocations[(run.routine_id, entry.device_id)] = event

    def _cancel_revocation(self, run: RoutineRun, device_id: int) -> None:
        event = self._revocations.pop((run.routine_id, device_id), None)
        self.sim.cancel(event)

    def _revoke(self, run: RoutineRun, device_id: int) -> None:
        self._revocations.pop((run.routine_id, device_id), None)
        if run.done:
            return
        lineage = self.table.lineage(device_id)
        entry = lineage.entry_for(run.routine_id)
        if entry is None or entry.status is not LockStatus.ACQUIRED:
            return
        index = lineage.index_of(run.routine_id)
        waiting_behind = index + 1 < len(lineage.entries)
        if waiting_behind:
            self.request_abort(
                run, f"leased lock on device {device_id} revoked")

    # -- failure serialization (§3, EV rules) ------------------------------------------------

    def _policy_on_failure(self, device_id: int) -> None:
        for run in self.active_runs():
            if device_id not in run.routine.device_set:
                continue  # case 1: arbitrary order
            if device_id in run.devices_done:
                continue  # case 3: serialize failure after R
            if run.in_touch_phase(device_id):
                # Case 4: the failure splits R's touches — unless every
                # remaining command on the device is best-effort.
                if self._has_must_command(run, device_id):
                    self.request_abort(
                        run, f"failure of device {device_id} mid-touch")
            # Untouched device (case 2): tolerated if it restarts before
            # R's first touch; otherwise the believed-failed check at
            # touch time aborts/skips.

    @staticmethod
    def _has_must_command(run: RoutineRun, device_id: int) -> bool:
        return any(c.must for c in run.commands
                   if c.device_id == device_id)

    # -- durability: state capture -------------------------------------------------------------

    def snapshot_state(self):
        state = super().snapshot_state()
        state["lineage"] = self.table.snapshot()
        state["compacted_before"] = {
            device_id: sorted(hidden) for device_id, hidden in
            sorted(self.compacted_before.items()) if hidden}
        state["scheduler_stats"] = dict(self.scheduler_stats)
        state["armed_revocations"] = sorted(self._revocations)
        return state

    # -- helpers -----------------------------------------------------------------------------

    def serialization_edges(self) -> List[Tuple[int, int]]:
        """Live precedence edges (testing/visualisation)."""
        edges = []
        for lineage in self.table.lineages():
            owners = lineage.owners()
            edges.extend(zip(owners, owners[1:]))
        return edges
