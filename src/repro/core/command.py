"""Commands: the unit of actuation inside a routine.

A command sets one device to one value and then holds the device for a
duration ("make coffee for 4 mins", "run sprinkler for 15 mins").  The
paper distinguishes:

* **must** vs **best-effort** commands (§2.2): a failed best-effort
  command is skipped; a failed must command aborts the routine.
* **long** commands (§1): exclusive control for an extended period —
  first-class, not two short commands.
* read commands (conditional clauses) matter for the dirty-read rule of
  post-leasing (§4.1).
"""

from dataclasses import dataclass
from typing import Any, Optional


# Commands at or above this duration are "long" (the paper's |L| averages
# 20 minutes; short commands average 10 s).  Used only for reporting.
LONG_COMMAND_THRESHOLD_S = 60.0


@dataclass
class Command:
    """One device actuation within a routine.

    Attributes:
        device_id: target device.
        value: desired state (ignored for reads).
        duration: seconds of exclusive control after the state change.
        must: False marks the command best-effort (optional).
        is_read: True for a sensor read / conditional clause.
        undoable: False for physically irreversible actions (blare a test
            alarm); undo then restores the device's prior state instead,
            as §2.2 prescribes — which is exactly what our rollback does,
            so the flag is informational plus hook for custom handlers.
        undo_value: optional explicit value for a user-specified
            undo-handler.
    """

    device_id: int
    value: Any = None
    duration: float = 0.0
    must: bool = True
    is_read: bool = False
    undoable: bool = True
    undo_value: Optional[Any] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("command duration cannot be negative")
        if self.is_read and self.value is not None:
            raise ValueError("read commands take no value")

    @property
    def is_long(self) -> bool:
        """Long commands need exclusive control for an extended period."""
        return self.duration >= LONG_COMMAND_THRESHOLD_S

    @property
    def is_write(self) -> bool:
        return not self.is_read

    def describe(self) -> str:
        tag = "must" if self.must else "best-effort"
        if self.is_read:
            return f"READ dev{self.device_id} [{tag}]"
        return (f"dev{self.device_id}:={self.value!r} "
                f"for {self.duration:g}s [{tag}]")


class CommandExecution:
    """Runtime record: what actually happened to one command.

    A ``__slots__`` class, not a dataclass: one is allocated per issued
    command, which makes it a measured hot-path allocation (see the
    ``fleet_scale`` benchmark).
    """

    __slots__ = ("command", "started_at", "finished_at", "applied",
                 "skipped", "rolled_back", "observed", "extra")

    def __init__(self, command: Command,
                 started_at: Optional[float] = None,
                 finished_at: Optional[float] = None,
                 applied: bool = False, skipped: bool = False,
                 rolled_back: bool = False, observed: Any = None,
                 extra: Optional[dict] = None) -> None:
        self.command = command
        self.started_at = started_at
        self.finished_at = finished_at
        self.applied = applied         # state change landed on the device
        self.skipped = skipped         # best-effort command skipped
        self.rolled_back = rolled_back
        self.observed = observed       # value seen, for reads
        self.extra = {} if extra is None else extra

    def __repr__(self) -> str:
        return (f"CommandExecution({self.command.describe()}, "
                f"applied={self.applied}, skipped={self.skipped}, "
                f"rolled_back={self.rolled_back})")
