"""Commands: the unit of actuation inside a routine.

A command sets one device to one value and then holds the device for a
duration ("make coffee for 4 mins", "run sprinkler for 15 mins").  The
paper distinguishes:

* **must** vs **best-effort** commands (§2.2): a failed best-effort
  command is skipped; a failed must command aborts the routine.
* **long** commands (§1): exclusive control for an extended period —
  first-class, not two short commands.
* read commands (conditional clauses) matter for the dirty-read rule of
  post-leasing (§4.1).
"""

from dataclasses import dataclass, field
from typing import Any, Optional


# Commands at or above this duration are "long" (the paper's |L| averages
# 20 minutes; short commands average 10 s).  Used only for reporting.
LONG_COMMAND_THRESHOLD_S = 60.0


@dataclass
class Command:
    """One device actuation within a routine.

    Attributes:
        device_id: target device.
        value: desired state (ignored for reads).
        duration: seconds of exclusive control after the state change.
        must: False marks the command best-effort (optional).
        is_read: True for a sensor read / conditional clause.
        undoable: False for physically irreversible actions (blare a test
            alarm); undo then restores the device's prior state instead,
            as §2.2 prescribes — which is exactly what our rollback does,
            so the flag is informational plus hook for custom handlers.
        undo_value: optional explicit value for a user-specified
            undo-handler.
    """

    device_id: int
    value: Any = None
    duration: float = 0.0
    must: bool = True
    is_read: bool = False
    undoable: bool = True
    undo_value: Optional[Any] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("command duration cannot be negative")
        if self.is_read and self.value is not None:
            raise ValueError("read commands take no value")

    @property
    def is_long(self) -> bool:
        """Long commands need exclusive control for an extended period."""
        return self.duration >= LONG_COMMAND_THRESHOLD_S

    @property
    def is_write(self) -> bool:
        return not self.is_read

    def describe(self) -> str:
        tag = "must" if self.must else "best-effort"
        if self.is_read:
            return f"READ dev{self.device_id} [{tag}]"
        return (f"dev{self.device_id}:={self.value!r} "
                f"for {self.duration:g}s [{tag}]")


@dataclass
class CommandExecution:
    """Runtime record: what actually happened to one command."""

    command: Command
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    applied: bool = False          # state change landed on the device
    skipped: bool = False          # best-effort command skipped
    rolled_back: bool = False
    observed: Any = None           # value seen, for reads
    extra: dict = field(default_factory=dict)
