"""The locking data-structure: per-device lineages (§4.2–4.3).

A device's *lineage* is the planned transition order of its virtual
lock: the latest committed state followed by lock-access entries, left
to right.  The list order **is** the serialization order — a routine may
only execute on a device once every entry to the left of its own is
``RELEASED`` (or removed).  Planned times guide Timeline placement but
never override list order, so serializability holds even when duration
estimates are wrong.

Leases are placements: a *pre-lease* inserts a new access before an
existing ``SCHEDULED`` access; a *post-lease* is an acquisition that
follows a ``RELEASED`` access whose owner has not finished.
"""

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import LineageInvariantError

# Sentinel distinguishing "no write applied yet" from "wrote None".
UNSET = object()


class LockStatus(enum.Enum):
    """Lifecycle of a lock-access entry (Invariant 3: R ← A ← S)."""

    SCHEDULED = "S"
    ACQUIRED = "A"
    RELEASED = "R"


_STATUS_RANK = {LockStatus.RELEASED: 0, LockStatus.ACQUIRED: 1,
                LockStatus.SCHEDULED: 2}


@dataclass
class LockAccess:
    """One routine's lock-access on one device (Fig 5 row entry)."""

    routine_id: int
    device_id: int
    status: LockStatus = LockStatus.SCHEDULED
    planned_start: float = 0.0
    duration: float = 0.0
    writes: bool = True
    reads: bool = False
    final_value: Any = UNSET       # intended last write on this device
    applied_value: Any = UNSET     # actual last applied write
    acquired_at: Optional[float] = None
    released_at: Optional[float] = None
    # True when this access was inserted before existing entries — i.e.
    # it borrows the lock via a pre-lease and is subject to revocation.
    pre_leased: bool = False

    @property
    def planned_end(self) -> float:
        return self.planned_start + self.duration

    def __repr__(self) -> str:
        return (f"[{self.status.value}:R{self.routine_id}"
                f"@{self.planned_start:g}+{self.duration:g}]")


@dataclass(frozen=True)
class Gap:
    """A free interval in a device's projected timeline.

    ``index`` is the position in the lineage's entry list where a new
    access placed in this gap would be inserted.
    """

    device_id: int
    index: int
    start: float
    end: float  # math.inf for the tail gap

    def fits(self, earliest: float, duration: float) -> bool:
        return max(self.start, earliest) + duration <= self.end

    def placement(self, earliest: float) -> float:
        return max(self.start, earliest)


class Lineage:
    """Lock-access list plus committed state for one device."""

    def __init__(self, device_id: int, committed_state: Any = UNSET) -> None:
        self.device_id = device_id
        self.entries: List[LockAccess] = []
        self.committed_state = committed_state
        self.committed_source: Optional[int] = None

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    # -- lookup ---------------------------------------------------------------

    def index_of(self, routine_id: int) -> Optional[int]:
        for index, entry in enumerate(self.entries):
            if entry.routine_id == routine_id:
                return index
        return None

    def entry_for(self, routine_id: int) -> Optional[LockAccess]:
        # Direct scan (not via index_of): this is the hottest lineage
        # lookup — every pump asks it once per routine-device pair.
        for entry in self.entries:
            if entry.routine_id == routine_id:
                return entry
        return None

    def owners(self) -> List[int]:
        return [entry.routine_id for entry in self.entries]

    # -- mutation ---------------------------------------------------------------

    def insert(self, index: int, access: LockAccess) -> None:
        if access.device_id != self.device_id:
            raise LineageInvariantError("access belongs to another device")
        if self.index_of(access.routine_id) is not None:
            raise LineageInvariantError(
                f"routine {access.routine_id} already has an access on "
                f"device {self.device_id}")
        if not 0 <= index <= len(self.entries):
            raise LineageInvariantError(f"bad insert index {index}")
        # Invariant 3: never insert a SCHEDULED entry to the left of a
        # RELEASED or ACQUIRED one.
        for earlier in self.entries[index:]:
            if _STATUS_RANK[earlier.status] < _STATUS_RANK[access.status]:
                raise LineageInvariantError(
                    "insert would put a newer-status entry before an "
                    f"older one on device {self.device_id}")
        self.entries.insert(index, access)

    def append(self, access: LockAccess) -> None:
        self.insert(len(self.entries), access)

    def remove(self, routine_id: int) -> Optional[LockAccess]:
        index = self.index_of(routine_id)
        if index is None:
            return None
        return self.entries.pop(index)

    # -- lock lifecycle ---------------------------------------------------------

    def can_acquire(self, routine_id: int, *,
                    finished: Callable[[int], bool],
                    wants_read: bool = False) -> bool:
        """True when ``routine_id``'s entry may become ACQUIRED now.

        Every entry to the left must be RELEASED; additionally the
        dirty-read guard (§4.1) blocks a reader behind a released access
        whose *unfinished* owner wrote the device.
        """
        released = LockStatus.RELEASED
        for earlier in self.entries:      # single pass, no index slice
            if earlier.routine_id == routine_id:
                return True
            if earlier.status is not released:
                return False
            dirty = (earlier.writes and wants_read
                     and not finished(earlier.routine_id))
            if dirty:
                return False
        return False                      # routine has no entry here

    def try_acquire(self, entry: LockAccess, now: float, *,
                    finished: Callable[[int], bool],
                    wants_read: bool = False) -> bool:
        """Fused :meth:`can_acquire` + :meth:`acquire` for the pump path.

        One pass over the entries decides acquirability (every earlier
        entry RELEASED, no dirty read) and, when granted, flips
        ``entry`` to ACQUIRED in place — the same outcome as the
        two-call sequence, without re-scanning the list three times.
        ``entry`` must be this lineage's SCHEDULED access for the
        routine (the caller just looked it up via :meth:`entry_for`).
        """
        released = LockStatus.RELEASED
        for earlier in self.entries:
            if earlier is entry:
                entry.status = LockStatus.ACQUIRED
                entry.acquired_at = now
                self.check_local_invariants()
                return True
            if earlier.status is not released:
                return False
            if earlier.writes and wants_read \
                    and not finished(earlier.routine_id):
                return False    # dirty read (§4.1)
        return False            # entry not in this lineage

    def acquire(self, routine_id: int, now: float) -> LockAccess:
        index = self.index_of(routine_id)
        if index is None:
            raise LineageInvariantError(
                f"routine {routine_id} has no access on device "
                f"{self.device_id}")
        entries = self.entries
        for i in range(index):       # no slice allocation: hot path
            earlier = entries[i]
            if earlier.status is not LockStatus.RELEASED:
                raise LineageInvariantError(
                    f"acquire out of order on device {self.device_id}: "
                    f"{earlier} precedes R{routine_id}")
        entry = entries[index]
        if entry.status is not LockStatus.SCHEDULED:
            raise LineageInvariantError(
                f"double acquire by R{routine_id} on device {self.device_id}")
        entry.status = LockStatus.ACQUIRED
        entry.acquired_at = now
        self.check_local_invariants()
        return entry

    def release(self, routine_id: int, now: float) -> LockAccess:
        entry = self.entry_for(routine_id)
        if entry is None or entry.status is not LockStatus.ACQUIRED:
            raise LineageInvariantError(
                f"release without acquire by R{routine_id} on device "
                f"{self.device_id}")
        entry.status = LockStatus.RELEASED
        entry.released_at = now
        return entry

    # -- invariants (§4.3) -------------------------------------------------------

    def check_local_invariants(self) -> None:
        """Invariants 2 and 3 for this lineage; raises on violation."""
        acquired = 0
        last_rank = 0
        for e in self.entries:      # single pass, no list builds
            rank = _STATUS_RANK[e.status]
            if rank == 1:
                acquired += 1
                if acquired > 1:
                    raise LineageInvariantError(
                        f"invariant 2 violated on device {self.device_id}"
                        f": {acquired} ACQUIRED entries")
            if rank < last_rank:
                raise LineageInvariantError(
                    f"invariant 3 violated on device {self.device_id}: "
                    f"{self.entries}")
            last_rank = rank

    def planned_overlaps(self) -> List[Tuple[LockAccess, LockAccess]]:
        """Invariant 1 check on *scheduled* planned times."""
        overlaps = []
        future = [e for e in self.entries if e.status is LockStatus.SCHEDULED]
        for first, second in zip(future, future[1:]):
            if second.planned_start < first.planned_end:
                overlaps.append((first, second))
        return overlaps

    # -- snapshot / restore (durability contract) ------------------------------------

    def snapshot(self) -> dict:
        """In-memory image of the lineage (entries in serialization
        order plus the committed state).  Values are kept raw so a
        restored lineage preserves rollback-target identity; the
        checkpoint layer jsonifies them for digests.  ``UNSET`` is
        encoded as absence."""
        entries = []
        for e in self.entries:
            entry = {"routine_id": e.routine_id, "status": e.status.value,
                     "planned_start": e.planned_start,
                     "duration": e.duration, "writes": e.writes,
                     "reads": e.reads, "acquired_at": e.acquired_at,
                     "released_at": e.released_at,
                     "pre_leased": e.pre_leased}
            if e.final_value is not UNSET:
                entry["final_value"] = e.final_value
            if e.applied_value is not UNSET:
                entry["applied_value"] = e.applied_value
            entries.append(entry)
        snap = {"device_id": self.device_id, "entries": entries,
                "committed_source": self.committed_source}
        if self.committed_state is not UNSET:
            snap["committed_state"] = self.committed_state
        return snap

    def restore(self, snapshot: dict) -> None:
        """Rebuild from a :meth:`snapshot` image (inverse)."""
        if snapshot["device_id"] != self.device_id:
            raise LineageInvariantError("snapshot belongs to another device")
        self.committed_state = snapshot.get("committed_state", UNSET)
        self.committed_source = snapshot.get("committed_source")
        self.entries = []
        for entry in snapshot["entries"]:
            self.entries.append(LockAccess(
                routine_id=entry["routine_id"],
                device_id=self.device_id,
                status=LockStatus(entry["status"]),
                planned_start=entry["planned_start"],
                duration=entry["duration"],
                writes=entry["writes"],
                reads=entry["reads"],
                final_value=entry.get("final_value", UNSET),
                applied_value=entry.get("applied_value", UNSET),
                acquired_at=entry["acquired_at"],
                released_at=entry["released_at"],
                pre_leased=entry["pre_leased"]))
        self.check_local_invariants()

    # -- status inference (Fig 8) --------------------------------------------------

    def inferred_state(self) -> Any:
        """Estimate the device's current state without querying it."""
        acquired = [e for e in self.entries
                    if e.status is LockStatus.ACQUIRED]
        if acquired:
            entry = acquired[-1]
            if entry.applied_value is not UNSET:
                return entry.applied_value
        released = [e for e in self.entries
                    if e.status is LockStatus.RELEASED
                    and e.applied_value is not UNSET]
        if released:
            return released[-1].applied_value
        return self.committed_state

    def rollback_target(self, routine_id: int) -> Any:
        """State to restore when aborting ``routine_id`` (§4.3).

        The immediately-left entry that actually applied a write wins;
        otherwise the committed state.
        """
        index = self.index_of(routine_id)
        if index is None:
            raise LineageInvariantError(
                f"routine {routine_id} not in lineage {self.device_id}")
        for earlier in reversed(self.entries[:index]):
            if earlier.applied_value is not UNSET:
                return earlier.applied_value
        return self.committed_state

    def is_last_writer(self, routine_id: int) -> bool:
        """True when no successor has applied a write after this routine."""
        index = self.index_of(routine_id)
        if index is None:
            return False
        entry = self.entries[index]
        if entry.applied_value is UNSET:
            return False
        for later in self.entries[index + 1:]:
            if later.applied_value is not UNSET:
                return False
        return True

    # -- projection / gaps (Timeline scheduling) ------------------------------------

    def projected_intervals(self, now: float,
                            end_estimator: Optional[
                                Callable[[LockAccess], float]] = None
                            ) -> List[Tuple[LockAccess, float, float]]:
        """(entry, start, end) projections for not-yet-released entries."""
        intervals: List[Tuple[LockAccess, float, float]] = []
        cursor = now
        for entry in self.entries:
            if entry.status is LockStatus.RELEASED:
                continue
            if entry.status is LockStatus.ACQUIRED:
                start = entry.acquired_at if entry.acquired_at is not None \
                    else now
                end = max(now, start + entry.duration)
                if end_estimator is not None:
                    end = max(end, end_estimator(entry))
            else:
                start = max(cursor, entry.planned_start)
                end = start + entry.duration
            intervals.append((entry, start, end))
            cursor = end
        return intervals

    def gaps(self, now: float,
             end_estimator: Optional[Callable[[LockAccess], float]] = None
             ) -> List[Gap]:
        """Free intervals from ``now`` on, each tagged with insert index."""
        intervals = self.projected_intervals(now, end_estimator)
        gaps: List[Gap] = []
        cursor = now
        released_count = sum(1 for e in self.entries
                             if e.status is LockStatus.RELEASED)
        position = released_count
        for entry, start, end in intervals:
            if start > cursor:
                gaps.append(Gap(self.device_id, position, cursor, start))
            cursor = max(cursor, end)
            position += 1
        gaps.append(Gap(self.device_id, position, cursor, math.inf))
        return gaps


class LineageTable:
    """All device lineages plus the wait queue bookkeeping (Fig 4).

    ``committed_lookup`` (device_id → state) seeds a lineage's committed
    state lazily at first use, so devices may be registered after the
    controller is constructed.
    """

    def __init__(self, committed_lookup: Optional[
            Callable[[int], Any]] = None) -> None:
        self._lineages: Dict[int, Lineage] = {}
        self._committed_lookup = committed_lookup

    def lineage(self, device_id: int) -> Lineage:
        lineage = self._lineages.get(device_id)
        if lineage is None:
            committed = UNSET
            if self._committed_lookup is not None:
                committed = self._committed_lookup(device_id)
            lineage = Lineage(device_id, committed)
            self._lineages[device_id] = lineage
        return lineage

    def __contains__(self, device_id: int) -> bool:
        return device_id in self._lineages

    def lineages(self) -> Iterable[Lineage]:
        return self._lineages.values()

    def set_committed(self, device_id: int, value: Any,
                      source: Optional[int] = None) -> None:
        lineage = self.lineage(device_id)
        lineage.committed_state = value
        lineage.committed_source = source

    def committed(self, device_id: int) -> Any:
        return self.lineage(device_id).committed_state

    def remove_routine(self, routine_id: int) -> List[int]:
        """Drop every access of a routine; returns affected device ids."""
        affected = []
        for lineage in self._lineages.values():
            if lineage.remove(routine_id) is not None:
                affected.append(lineage.device_id)
        return affected

    def compact_commit(self, routine_id: int, device_id: int) -> List[int]:
        """Commit compaction (Fig 7) for one device.

        Removes the committing routine's access *and every access to its
        left* — later routines in the serialization order overwrite the
        effects of earlier ones ("last writer wins").  Returns the
        routine ids whose accesses were compacted away.
        """
        lineage = self.lineage(device_id)
        index = lineage.index_of(routine_id)
        if index is None:
            return []
        removed = lineage.entries[:index + 1]
        for entry in removed:
            if entry.status is LockStatus.ACQUIRED:
                raise LineageInvariantError(
                    f"compaction would drop an ACQUIRED access: {entry}")
        del lineage.entries[:index + 1]
        return [e.routine_id for e in removed if e.routine_id != routine_id]

    # -- snapshot / restore ------------------------------------------------------

    def snapshot(self) -> dict:
        """Every device lineage, keyed (sorted) by device id."""
        return {"lineages": [self._lineages[device_id].snapshot()
                             for device_id in sorted(self._lineages)]}

    def restore(self, snapshot: dict) -> None:
        """Rebuild all lineages from a :meth:`snapshot` image."""
        self._lineages = {}
        for entry in snapshot["lineages"]:
            lineage = Lineage(entry["device_id"])
            lineage.restore(entry)
            self._lineages[entry["device_id"]] = lineage

    # -- invariant 4 ------------------------------------------------------------

    def precedence_pairs(self) -> Dict[Tuple[int, int], List[int]]:
        """(before, after) routine pairs implied by every lineage."""
        pairs: Dict[Tuple[int, int], List[int]] = {}
        for lineage in self._lineages.values():
            owners = lineage.owners()
            for i, before in enumerate(owners):
                for after in owners[i + 1:]:
                    pairs.setdefault((before, after), []).append(
                        lineage.device_id)
        return pairs

    def verify_serialize_before(self) -> None:
        """Invariant 4: pairwise order is consistent across devices."""
        pairs = self.precedence_pairs()
        for (before, after), devices in pairs.items():
            if (after, before) in pairs:
                raise LineageInvariantError(
                    f"invariant 4 violated: R{before} and R{after} ordered "
                    f"both ways (devices {devices} vs "
                    f"{pairs[(after, before)]})")

    def verify_all(self) -> None:
        """Full invariant sweep (used by tests and paranoid mode)."""
        for lineage in self._lineages.values():
            lineage.check_local_invariants()
            overlaps = lineage.planned_overlaps()
            if overlaps:
                raise LineageInvariantError(
                    f"invariant 1 violated on device {lineage.device_id}: "
                    f"{overlaps}")
        self.verify_serialize_before()
