"""Controller infrastructure shared by every visibility model.

A *controller* owns the execution of routines against the device
substrate: issuing commands through the driver, tracking per-routine
runtime state, rolling back aborted routines, and reacting to failure /
restart detections from the hub's failure detector.  Subclasses
(`wv`, `gsv`, `psv`, `ev`) supply the concurrency and failure-
serialization policy.
"""

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.core.command import Command, CommandExecution
from repro.core.routine import Routine
from repro.devices.driver import CommandOutcome, Driver
from repro.devices.registry import DeviceRegistry
from repro.errors import SafeHomeError
from repro.sim.engine import Simulator


class RoutineStatus(enum.Enum):
    PENDING = "pending"        # submitted, arrival scheduled
    WAITING = "waiting"        # arrived, not yet executing
    RUNNING = "running"        # executing commands
    COMMITTED = "committed"
    ABORTED = "aborted"


# `status.finished` sits on the hottest lock-admission path (every
# lineage scan asks it per entry), so it is precomputed as a plain
# per-member attribute instead of a property building a tuple per call.
for _status in RoutineStatus:
    _status.finished = _status in (RoutineStatus.COMMITTED,
                                   RoutineStatus.ABORTED)
del _status


@dataclass
class ControllerConfig:
    """Tunables shared across visibility models.

    Attributes mirror the paper's implementation choices: §4.1 leasing
    with a 1.1× leniency factor, §4.3's 100 ms τ-timeout floor on
    duration estimates, and §6's failure-detector timings.
    """

    pre_lease: bool = True
    post_lease: bool = True
    leniency_factor: float = 1.1
    revoke_slack_s: float = 1.0     # absorbs network jitter in revocation
    tau_timeout_s: float = 0.1      # duration-estimate floor (short cmds)
    estimate_error: float = 0.0     # relative error injected into estimates
    scheduler: str = "timeline"     # fcfs | jit | timeline
    execution: str = "serial"       # serial | parallel (command plan)
    jit_ttl_s: float = 120.0        # JiT anti-starvation TTL
    stretch_threshold: float = 4.0  # TL admission bound (×ideal runtime)
    reconcile_on_restart: bool = True
    paranoid: bool = False          # verify lineage invariants continuously


@dataclass
class RoutineRun:
    """Runtime record of one routine instance."""

    routine: Routine
    routine_id: int
    submit_time: float
    status: RoutineStatus = RoutineStatus.PENDING
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    next_index: int = 0
    executions: List[CommandExecution] = field(default_factory=list)
    abort_reason: str = ""
    abort_pending: str = ""
    inflight_count: int = 0
    # Compiled CommandPlan (execution core); None until first dispatch.
    plan: Optional[Any] = None
    # Seconds commands spent ready-but-blocked on locks (parallel plans)
    # plus lock-table admission waits.
    lock_wait_s: float = 0.0
    # Order of arrival at the controller (lock-table admission FIFO).
    arrival_seq: int = -1
    # device id -> index of the routine's last command on that device,
    # precomputed once so per-command bookkeeping is O(1).
    last_index_by_device: Dict[int, int] = field(default_factory=dict)
    # Devices → state observed just before this routine's first write
    # (rollback target for the lineage-less models).
    prior_states: Dict[int, Any] = field(default_factory=dict)
    # Devices on which the routine has completed its last command.
    devices_done: Set[int] = field(default_factory=set)
    # Devices whose failure was detected after our last touch (PSV's
    # finish-point check).
    failed_after_last_touch: Set[int] = field(default_factory=set)
    rolled_back_commands: int = 0

    def __post_init__(self) -> None:
        self.last_index_by_device = {
            command.device_id: index
            for index, command in enumerate(self.routine.commands)}

    @property
    def inflight(self) -> bool:
        """At least one command is currently executing (parallel plans
        may have several in flight at once)."""
        return self.inflight_count > 0

    @property
    def name(self) -> str:
        return self.routine.name

    @property
    def commands(self) -> List[Command]:
        return self.routine.commands

    @property
    def done(self) -> bool:
        return self.status.finished

    @property
    def wait_time(self) -> Optional[float]:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def latency(self) -> Optional[float]:
        """Submission → successful completion (paper's primary metric)."""
        if self.status is not RoutineStatus.COMMITTED:
            return None
        return self.finish_time - self.submit_time

    @property
    def executed_write_count(self) -> int:
        return sum(1 for e in self.executions
                   if e.applied and e.command.is_write)

    def effective_final_writes(self) -> Dict[int, Any]:
        """Last *applied* write per device (skips excluded)."""
        values: Dict[int, Any] = {}
        for execution in self.executions:
            if execution.applied and execution.command.is_write:
                values[execution.command.device_id] = execution.command.value
        return values

    def touched_before(self, device_id: int) -> bool:
        """Has the routine applied/attempted any command on the device?"""
        return any(e.command.device_id == device_id
                   for e in self.executions)

    def in_touch_phase(self, device_id: int) -> bool:
        """True between the first and last command on ``device_id``."""
        if device_id in self.devices_done:
            return False
        return self.touched_before(device_id)


class Controller:
    """Base class: command execution, aborts, rollback, bookkeeping."""

    model_name = "base"
    # What happens to a RUNNING routine when the hub crashes and recovers
    # in "policy" mode (see docs/durability.md): "resume" re-issues its
    # remaining commands, "abort" rolls it back at recovery time.  Each
    # visibility model pins its own value.
    hub_recovery_policy = "resume"

    def __init__(self, sim: Simulator, registry: DeviceRegistry,
                 driver: Driver,
                 config: Optional[ControllerConfig] = None) -> None:
        self.sim = sim
        self.registry = registry
        self.driver = driver
        self.config = config or ControllerConfig()
        self.runs: List[RoutineRun] = []
        self._runs_by_id: Dict[int, RoutineRun] = {}
        self._next_routine_id = 0
        # The hub's *belief* about device liveness (detection, not truth).
        self.believed_failed: Set[int] = set()
        # Detection event log: ("failure"|"restart", device_id, time).
        self.detection_events: List[tuple] = []
        # Live subscribers to detections: callback(kind, device_id, time).
        self.on_detection: List[Callable[[str, int, float], None]] = []
        # device id -> value to re-apply when the device restarts.
        self.pending_reconcile: Dict[int, Any] = {}
        # Per-device order in which routines completed their last access
        # (feeds the serialization-order reconstruction).
        self.device_access_order: Dict[int, List[int]] = {}
        self.on_routine_finished: List[Callable[[RoutineRun], None]] = []
        # The durable hub's WAL (an object with .observe(type, payload,
        # time)); None keeps journaling at zero cost.
        self.journal: Optional[Any] = None
        # User-specified undo handlers for irreversible commands (§2.2).
        from repro.core.undo import UndoRegistry
        self.undo_registry = UndoRegistry()

    def _journal(self, type_: str, **payload: Any) -> None:
        """Append one observation record to the hub's WAL, if any."""
        journal = self.journal
        if journal is not None:
            journal.observe(type_, payload, self.sim.now)

    # -- submission ------------------------------------------------------------

    def submit(self, routine: Routine,
               when: Optional[float] = None) -> RoutineRun:
        """Register a routine to arrive at ``when`` (default: now)."""
        when = self.sim.now if when is None else when
        run = RoutineRun(routine=routine,
                         routine_id=self._next_routine_id,
                         submit_time=when)
        self._next_routine_id += 1
        self.runs.append(run)
        self._runs_by_id[run.routine_id] = run
        if self.journal is not None:
            self._journal("routine-submitted", routine_id=run.routine_id,
                          name=routine.name, when=when)
        self.sim.call_at(when, self._arrive, run, label="arrive")
        return run

    def _arrive(self, run: RoutineRun) -> None:
        """Routine reaches the hub; policy decides when it starts."""
        raise NotImplementedError

    # -- command execution helpers ----------------------------------------------

    def _begin(self, run: RoutineRun) -> None:
        if run.status in (RoutineStatus.PENDING, RoutineStatus.WAITING):
            run.status = RoutineStatus.RUNNING
            run.start_time = self.sim.now
            if self.journal is not None:
                self._journal("routine-admitted",
                              routine_id=run.routine_id)

    def _issue_command(self, run: RoutineRun, command: Command,
                       on_done: Callable[[RoutineRun, CommandExecution], None]
                       ) -> CommandExecution:
        """Fire one command through the driver; ``on_done`` runs after the
        command's duration elapses (or immediately on skip/timeout)."""
        execution = CommandExecution(command=command,
                                     started_at=self.sim.now)
        run.executions.append(execution)
        run.inflight_count += 1
        if self.journal is not None:
            self._journal("command-dispatched", routine_id=run.routine_id,
                          device_id=command.device_id,
                          index=len(run.executions) - 1,
                          read=command.is_read)

        if command.device_id in self.believed_failed:
            # The hub already believes the device is down: no point
            # issuing; resolve instantly as a timeout-equivalent.
            self._command_unreachable(run, execution, on_done)
            return execution

        if command.is_read:
            self._issue_read(run, execution, on_done)
            return execution

        self.driver.issue(command.device_id, command.value,
                          source=run.routine_id,
                          callback=self._write_landed,
                          cb_args=(run, execution, on_done))
        return execution

    def _write_landed(self, outcome: CommandOutcome, prior: Any,
                      run: RoutineRun, execution: CommandExecution,
                      on_done: Callable) -> None:
        """Driver callback for a write command (bound method + explicit
        args instead of a per-command closure — the hottest callback in
        fleet runs)."""
        if outcome is CommandOutcome.APPLIED:
            command = execution.command
            # Prior state is captured at land time (the write is
            # ordered with every other write), making it the correct
            # rollback target for the lineage-less models.
            run.prior_states.setdefault(command.device_id, prior)
            execution.applied = True
            self._on_write_applied(run, execution)
            self.sim.call_after(command.duration, self._command_elapsed,
                                run, execution, on_done,
                                label="cmd-done")
        else:
            self._command_unreachable(run, execution, on_done)

    def _issue_read(self, run: RoutineRun, execution: CommandExecution,
                    on_done: Callable) -> None:
        command = execution.command

        def landed(outcome: CommandOutcome) -> None:
            if outcome is CommandOutcome.APPLIED:
                execution.applied = True
                execution.observed = self.registry.get(
                    command.device_id).state
                self.sim.call_after(command.duration,
                                    self._command_elapsed,
                                    run, execution, on_done,
                                    label="read-done")
            else:
                self._command_unreachable(run, execution, on_done)

        # A read is an API call with no state change.
        self.driver.ping(command.device_id, landed)

    def _command_elapsed(self, run: RoutineRun, execution: CommandExecution,
                         on_done: Callable) -> None:
        execution.finished_at = self.sim.now
        run.inflight_count -= 1
        self._on_execution_resolved(run, execution)
        if run.abort_pending and not run.done:
            # A parallel plan may still have sibling commands in flight;
            # the abort fires when the last one resolves (serial plans
            # are always at zero here, preserving the old behavior).
            if run.inflight_count == 0:
                reason, run.abort_pending = run.abort_pending, ""
                self.abort(run, reason)
            return
        if run.done:
            return
        on_done(run, execution)

    def _command_unreachable(self, run: RoutineRun,
                             execution: CommandExecution,
                             on_done: Callable) -> None:
        """Command could not reach its device: skip or abort (§2.2)."""
        execution.finished_at = self.sim.now
        execution.skipped = True
        run.inflight_count -= 1
        self._on_execution_resolved(run, execution)
        if run.abort_pending and not run.done:
            if run.inflight_count == 0:
                reason, run.abort_pending = run.abort_pending, ""
                self.abort(run, reason)
            return
        if run.done:
            return
        if execution.command.must:
            self.request_abort(run, f"must-command unreachable "
                                    f"(device {execution.command.device_id})")
        else:
            on_done(run, execution)

    def _on_execution_resolved(self, run: RoutineRun,
                               execution: CommandExecution) -> None:
        """Hook: an execution finished, was skipped or timed out (runs
        on every resolution path; the execution engine frees the
        per-device FIFO slot here, after calling super())."""
        if self.journal is not None:
            self._journal("command-acked", routine_id=run.routine_id,
                          device_id=execution.command.device_id,
                          applied=execution.applied,
                          skipped=execution.skipped)

    def _on_write_applied(self, run: RoutineRun,
                          execution: CommandExecution) -> None:
        """Hook for subclasses (EV records applied values in the lineage)."""

    # -- finish / abort -----------------------------------------------------------

    def request_abort(self, run: RoutineRun, reason: str) -> None:
        """Abort now, or as soon as the in-flight command resolves."""
        if run.done:
            return
        if run.inflight:
            if not run.abort_pending:
                run.abort_pending = reason
            return
        self.abort(run, reason)

    def abort(self, run: RoutineRun, reason: str) -> None:
        if run.done:
            return
        run.status = RoutineStatus.ABORTED
        run.abort_reason = reason
        run.finish_time = self.sim.now
        if self.journal is not None:
            self._journal("routine-aborted", routine_id=run.routine_id,
                          reason=reason)
        self._rollback(run)
        self._after_finish(run)

    def commit(self, run: RoutineRun) -> None:
        if run.done:
            return
        run.status = RoutineStatus.COMMITTED
        run.finish_time = self.sim.now
        if self.journal is not None:
            self._journal("routine-committed",
                          routine_id=run.routine_id)
        self._on_commit(run)
        self._after_finish(run)

    def _on_commit(self, run: RoutineRun) -> None:
        """Hook: EV updates committed states and compacts lineages."""

    def _after_finish(self, run: RoutineRun) -> None:
        for callback in self.on_routine_finished:
            callback(run)
        self._policy_after_finish(run)

    def _policy_after_finish(self, run: RoutineRun) -> None:
        """Hook: start queued routines, release locks, etc."""

    # -- rollback (§2.2, §4.3) -----------------------------------------------------

    def _rollback(self, run: RoutineRun) -> None:
        """Undo the aborted routine's applied writes.

        The default (lineage-less) policy restores each written device to
        the state captured just before the routine's first write to it.
        EV overrides targeting via the lineage table.
        """
        targets = self._rollback_targets(run)
        for device_id, target in targets.items():
            self._restore_device(run, device_id, target)

    def _rollback_targets(self, run: RoutineRun) -> Dict[int, Any]:
        targets: Dict[int, Any] = {}
        for execution in run.executions:
            command = execution.command
            if execution.applied and command.is_write:
                prior = run.prior_states[command.device_id]
                targets[command.device_id] = \
                    self.undo_registry.resolve(command, prior)
        return targets

    def resolve_undo(self, run: RoutineRun, device_id: int,
                     prior: Any) -> Any:
        """Undo target for a device via the routine's last write on it."""
        last_write: Optional[Command] = None
        for execution in run.executions:
            command = execution.command
            if execution.applied and command.is_write and \
                    command.device_id == device_id:
                last_write = command
        if last_write is None:
            return prior
        return self.undo_registry.resolve(last_write, prior)

    def _restore_device(self, run: RoutineRun, device_id: int,
                        target: Any) -> None:
        device = self.registry.get(device_id)
        undone = sum(1 for e in run.executions
                     if e.applied and e.command.is_write
                     and e.command.device_id == device_id)
        for execution in run.executions:
            if execution.applied and execution.command.device_id == device_id:
                execution.rolled_back = True
        run.rolled_back_commands += undone
        if device.state == target and device_id not in self.believed_failed:
            return
        self._hub_write(device_id, target, ("rollback", run.routine_id))

    def _hub_write(self, device_id: int, target: Any, tag: Any) -> None:
        """A hub-initiated corrective write (rollback / reconcile).

        Applied instantaneously: corrective writes must stay ordered
        with the routine writes the concurrency policy serializes, and
        giving them their own network delay would let them race with
        the next routine's first command.  (The ~one-RTT error this
        introduces is invisible to every §7 metric.)
        """
        from repro.errors import DeviceUnavailableError

        if device_id in self.believed_failed:
            if self.config.reconcile_on_restart:
                self.pending_reconcile[device_id] = target
            return
        try:
            self.registry.get(device_id).apply(target, self.sim.now, tag)
        except DeviceUnavailableError:
            # Failed but not yet detected; reconcile once it is.
            if self.config.reconcile_on_restart:
                self.pending_reconcile[device_id] = target

    # -- failure detection ------------------------------------------------------------

    def on_failure_detected(self, device_id: int) -> None:
        if device_id in self.believed_failed:
            return
        self.believed_failed.add(device_id)
        self.detection_events.append(("failure", device_id, self.sim.now))
        self._journal("detection", kind="failure", device_id=device_id)
        self._notify_detection("failure", device_id)
        self._policy_on_failure(device_id)

    def on_restart_detected(self, device_id: int) -> None:
        if device_id not in self.believed_failed:
            return
        self.believed_failed.discard(device_id)
        self.detection_events.append(("restart", device_id, self.sim.now))
        self._journal("detection", kind="restart", device_id=device_id)
        self._notify_detection("restart", device_id)
        if device_id in self.pending_reconcile:
            target = self.pending_reconcile.pop(device_id)
            self._hub_write(device_id, target, ("reconcile", device_id))
        self._policy_on_restart(device_id)

    def _notify_detection(self, kind: str, device_id: int) -> None:
        for callback in self.on_detection:
            callback(kind, device_id, self.sim.now)

    def _policy_on_failure(self, device_id: int) -> None:
        """Hook: failure-serialization rules of the model (§3)."""

    def _policy_on_restart(self, device_id: int) -> None:
        """Hook: restart-serialization rules of the model (§3)."""

    # -- durability: state capture & hub-crash policy ---------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Recoverable controller state for a hub checkpoint.

        Subclasses extend the dict with their model-specific structures
        (EV lineage entries, OCC commit log, lock-table holdings);
        values may be arbitrary objects — the checkpoint digests them
        via ``jsonify``.
        """
        return {
            "model": self.model_name,
            "believed_failed": sorted(self.believed_failed),
            "pending_reconcile": dict(self.pending_reconcile),
            "device_access_order": {k: list(v) for k, v in
                                    self.device_access_order.items()},
            "runs": [{
                "routine_id": run.routine_id,
                "name": run.name,
                "status": run.status.value,
                "next_index": run.next_index,
                "executions": len(run.executions),
                "inflight": run.inflight_count,
                "devices_done": sorted(run.devices_done),
            } for run in self.runs],
        }

    def hub_recovery_action(self, run: RoutineRun) -> str:
        """Fate of a RUNNING routine under "policy"-mode hub recovery:
        ``"resume"`` or ``"abort"`` (see :attr:`hub_recovery_policy`)."""
        return self.hub_recovery_policy

    # -- bookkeeping ------------------------------------------------------------------

    def record_last_access(self, run: RoutineRun, device_id: int) -> None:
        """Called when a routine completes its last command on a device."""
        run.devices_done.add(device_id)
        order = self.device_access_order.get(device_id)
        if order is None:
            order = self.device_access_order[device_id] = []
        order.append(run.routine_id)

    def active_runs(self) -> List[RoutineRun]:
        return [run for run in self.runs if not run.done]

    def all_done(self) -> bool:
        return all(run.done for run in self.runs)

    def run_by_id(self, routine_id: int) -> RoutineRun:
        run = self._runs_by_id.get(routine_id)
        if run is None:
            raise SafeHomeError(f"no run with id {routine_id}")
        return run

    def is_finished(self, routine_id: int) -> bool:
        run = self._runs_by_id.get(routine_id)
        if run is None:
            run = self.run_by_id(routine_id)   # raises SafeHomeError
        return run.status.finished


@dataclass
class RunResult:
    """Everything an experiment needs after a simulation completes."""

    model_name: str
    runs: List[RoutineRun]
    end_state: Dict[int, Any]
    makespan: float
    device_write_logs: Dict[int, list]
    detection_events: List[tuple]
    device_access_order: Dict[int, List[int]]

    @property
    def committed(self) -> List[RoutineRun]:
        return [r for r in self.runs
                if r.status is RoutineStatus.COMMITTED]

    @property
    def aborted(self) -> List[RoutineRun]:
        return [r for r in self.runs if r.status is RoutineStatus.ABORTED]

    @property
    def abort_rate(self) -> float:
        if not self.runs:
            return 0.0
        return len(self.aborted) / len(self.runs)

    def latencies(self) -> List[float]:
        return [r.latency for r in self.committed]

    def rollback_overheads(self) -> List[float]:
        """Per aborted routine: fraction of its commands rolled back."""
        overheads = []
        for run in self.aborted:
            total = len(run.commands)
            if total:
                overheads.append(run.rolled_back_commands / total)
        return overheads

    @classmethod
    def from_controller(cls, controller: Controller) -> "RunResult":
        registry = controller.registry
        return cls(
            model_name=controller.model_name,
            runs=list(controller.runs),
            end_state=registry.snapshot(),
            makespan=controller.sim.now,
            device_write_logs={d.device_id: list(d.write_log)
                               for d in registry},
            detection_events=list(controller.detection_events),
            device_access_order={k: list(v) for k, v in
                                 controller.device_access_order.items()},
        )
