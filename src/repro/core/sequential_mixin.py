"""Backward-compatible alias for the execution core's serial strategy.

The sequential command chain that used to live here is now the
``serial`` plan strategy of :class:`repro.core.execution.engine.
PlanExecutionMixin` (bit-compatible: same event order, same labels,
same bookkeeping).  The name is kept so external code and older tests
importing ``SequentialExecutionMixin`` keep working.
"""

from repro.core.execution.engine import PlanExecutionMixin


class SequentialExecutionMixin(PlanExecutionMixin):
    """Deprecated alias: the serial strategy of the execution core."""
