"""Shared sequential command-chain execution.

Every visibility model executes a routine's commands strictly in order;
they differ in *when* a routine may start/advance and in failure policy.
This mixin provides the chain: ``_run_next`` issues the next command and
``_after_command`` performs per-device completion bookkeeping before
looping.
"""

from typing import Optional

from repro.core.command import CommandExecution
from repro.core.controller import Controller, RoutineRun


class SequentialExecutionMixin(Controller):
    """Drives ``run.next_index`` through the routine's command list."""

    def _run_next(self, run: RoutineRun) -> None:
        if run.done or run.inflight:
            return
        if run.next_index >= len(run.commands):
            self._finish_point(run)
            return
        command = run.commands[run.next_index]
        run.next_index += 1
        self._issue_command(run, command, self._after_command)

    def _after_command(self, run: RoutineRun,
                       execution: CommandExecution) -> None:
        device_id = execution.command.device_id
        if self._last_index_on_device(run, device_id) < run.next_index:
            self.record_last_access(run, device_id)
            self._on_device_access_done(run, device_id)
        self._run_next(run)

    @staticmethod
    def _last_index_on_device(run: RoutineRun, device_id: int) -> int:
        last = -1
        for index, command in enumerate(run.commands):
            if command.device_id == device_id:
                last = index
        return last

    def _finish_point(self, run: RoutineRun) -> None:
        """All commands processed; default is to commit immediately."""
        self.commit(run)

    def _on_device_access_done(self, run: RoutineRun,
                               device_id: int) -> None:
        """Hook: EV releases the virtual lock (post-lease) here."""
