"""Weak Visibility (WV): today's status quo (§2.1).

Routines execute as they arrive, as quickly as possible, with no
isolation, no atomicity and no failure serialization.  Unreachable
commands are silently skipped (best-effort), which is how current hubs
behave and why Fig 1/Fig 12b show incongruent end states.

WV takes no locks even under the ``parallel`` plan strategy — only the
per-device FIFO of the execution core serializes simultaneous writes to
one device, which mirrors how a real hub's device driver behaves.
"""

from repro.core.command import CommandExecution
from repro.core.controller import RoutineRun
from repro.core.execution.engine import PlanExecutionMixin


class WeakVisibilityController(PlanExecutionMixin):
    """No locks, no serialization: every routine runs immediately."""

    model_name = "wv"
    # Hub-crash recovery (docs/durability.md): the status quo promises
    # nothing, so recovered routines barrel on from where replay left
    # them — exactly how today's hubs behave after a reboot.
    hub_recovery_policy = "resume"

    def _arrive(self, run: RoutineRun) -> None:
        self._begin(run)
        self._run_next(run)

    def _command_unreachable(self, run: RoutineRun,
                             execution: CommandExecution,
                             on_done) -> None:
        # Status quo: failures are silent, even for must commands; the
        # routine barrels on.
        execution.finished_at = self.sim.now
        execution.skipped = True
        run.inflight_count -= 1
        self._on_execution_resolved(run, execution)
        if run.done:
            return
        on_done(run, execution)
