"""Weak Visibility (WV): today's status quo (§2.1).

Routines execute as they arrive, as quickly as possible, with no
isolation, no atomicity and no failure serialization.  Unreachable
commands are silently skipped (best-effort), which is how current hubs
behave and why Fig 1/Fig 12b show incongruent end states.
"""

from repro.core.command import CommandExecution
from repro.core.controller import RoutineRun
from repro.core.sequential_mixin import SequentialExecutionMixin


class WeakVisibilityController(SequentialExecutionMixin):
    """No locks, no serialization: every routine runs immediately."""

    model_name = "wv"

    def _arrive(self, run: RoutineRun) -> None:
        self._begin(run)
        self._run_next(run)

    def _command_unreachable(self, run: RoutineRun,
                             execution: CommandExecution,
                             on_done) -> None:
        # Status quo: failures are silent, even for must commands; the
        # routine barrels on.
        execution.finished_at = self.sim.now
        execution.skipped = True
        run.inflight = False
        if run.done:
            return
        on_done(run, execution)
