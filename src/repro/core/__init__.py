"""SafeHome's core: routines, virtual locks, lineage, visibility models.

Public surface::

    from repro.core import Command, Routine, make_controller, VisibilityModel

``make_controller`` builds a concurrency controller implementing one of
the paper's visibility models (WV, GSV, S-GSV, PSV, EV) on top of a
simulator + device registry.
"""

from repro.core.command import Command
from repro.core.controller import (ControllerConfig, RoutineRun,
                                   RoutineStatus, RunResult)
from repro.core.lineage import (Lineage, LineageTable, LockAccess,
                                LockStatus)
from repro.core.routine import LockRequest, Routine
from repro.core.visibility import VisibilityModel, make_controller

__all__ = [
    "Command",
    "Routine",
    "LockRequest",
    "RoutineRun",
    "RoutineStatus",
    "RunResult",
    "ControllerConfig",
    "Lineage",
    "LineageTable",
    "LockAccess",
    "LockStatus",
    "VisibilityModel",
    "make_controller",
]
