"""JSON routine specifications (paper Fig 10).

SafeHome's routine format is compatible with mainstream hubs: a routine
is a named list of command objects.  Example::

    {
      "routineName": "Prepare Breakfast",
      "commands": [
        {"device": "coffee_maker-0", "action": "ON",
         "durationSec": 240, "priority": "MUST"},
        {"device": "toaster-0", "action": "ON",
         "durationSec": 120, "priority": "BEST_EFFORT"}
      ]
    }
"""

import json
from typing import Any, Dict, Union

from repro.core.command import Command
from repro.core.routine import Routine
from repro.devices.registry import DeviceRegistry
from repro.errors import RoutineSpecError

_PRIORITIES = {"MUST": True, "BEST_EFFORT": False}


def parse_routine(spec: Union[str, Dict[str, Any]],
                  registry: DeviceRegistry) -> Routine:
    """Build a :class:`Routine` from a JSON string or parsed dict.

    Device references may be names (``"coffee_maker-0"``) or integer ids.

    Raises:
        RoutineSpecError: on any malformed field.
    """
    if isinstance(spec, str):
        try:
            spec = json.loads(spec)
        except json.JSONDecodeError as exc:
            raise RoutineSpecError(f"invalid JSON: {exc}") from exc
    if not isinstance(spec, dict):
        raise RoutineSpecError("routine spec must be a JSON object")

    name = spec.get("routineName") or spec.get("name")
    if not name:
        raise RoutineSpecError("routine spec missing 'routineName'")
    raw_commands = spec.get("commands")
    if not isinstance(raw_commands, list) or not raw_commands:
        raise RoutineSpecError("routine spec needs a non-empty 'commands'")

    commands = []
    for position, entry in enumerate(raw_commands):
        commands.append(_parse_command(entry, position, registry))
    return Routine(name=name, commands=commands,
                   user=spec.get("user", ""),
                   trigger=spec.get("trigger", ""))


def _parse_command(entry: Dict[str, Any], position: int,
                   registry: DeviceRegistry) -> Command:
    if not isinstance(entry, dict):
        raise RoutineSpecError(f"command #{position} must be an object")
    device_ref = entry.get("device")
    if device_ref is None:
        raise RoutineSpecError(f"command #{position} missing 'device'")
    if isinstance(device_ref, int):
        device_id = registry.get(device_ref).device_id
    else:
        device_id = registry.by_name(str(device_ref)).device_id

    priority = str(entry.get("priority", "MUST")).upper()
    if priority not in _PRIORITIES:
        raise RoutineSpecError(
            f"command #{position}: unknown priority {priority!r}")

    is_read = bool(entry.get("read", False))
    action = entry.get("action")
    if not is_read and action is None:
        raise RoutineSpecError(f"command #{position} missing 'action'")

    duration = float(entry.get("durationSec", 0.0))
    if duration < 0:
        raise RoutineSpecError(f"command #{position}: negative duration")

    return Command(device_id=device_id,
                   value=None if is_read else action,
                   duration=duration,
                   must=_PRIORITIES[priority],
                   is_read=is_read,
                   undoable=bool(entry.get("undoable", True)),
                   undo_value=entry.get("undoAction"),
                   name=str(entry.get("name", "")))


def routine_to_spec(routine: Routine,
                    registry: DeviceRegistry) -> Dict[str, Any]:
    """Inverse of :func:`parse_routine` (round-trips in tests)."""
    commands = []
    for command in routine.commands:
        entry: Dict[str, Any] = {
            "device": registry.get(command.device_id).name,
            "durationSec": command.duration,
            "priority": "MUST" if command.must else "BEST_EFFORT",
        }
        if command.is_read:
            entry["read"] = True
        else:
            entry["action"] = command.value
        if not command.undoable:
            entry["undoable"] = False
        if command.undo_value is not None:
            entry["undoAction"] = command.undo_value
        if command.name:
            entry["name"] = command.name
        commands.append(entry)
    spec: Dict[str, Any] = {"routineName": routine.name, "commands": commands}
    if routine.user:
        spec["user"] = routine.user
    if routine.trigger:
        spec["trigger"] = routine.trigger
    return spec
