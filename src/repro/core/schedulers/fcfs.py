"""First-Come-First-Serve scheduling (§5).

Routines are serialized in arrival order: every lock-access is appended
to its device's lineage at arrival.  Pre-leases would reorder arrivals,
so FCFS never uses them; post-leases still apply (a released access lets
the next arrival in).
"""

from repro.core.controller import RoutineRun
from repro.core.schedulers.base import Scheduler


class FCFSScheduler(Scheduler):
    """Append-at-tail placement in arrival order."""

    name = "fcfs"

    def on_arrive(self, run: RoutineRun) -> None:
        self.controller.place_run(run, self.tail_placements(run))
