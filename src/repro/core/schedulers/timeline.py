"""Timeline (TL) scheduling — Algorithm 1 (§5).

TL speculatively places a new routine's lock-accesses into *gaps* of the
projected per-device timelines, using duration estimates.  For each
access it tries gaps left to right; a gap is valid when the transitive
preSet/postSet of the implied serialization position are disjoint
(no contradiction with previously decided orders).  On failure it
backtracks and tries the next gap.  The all-tails placement always
succeeds, so the search terminates.

A stretch-admission check (Fig 9c) rejects placements that would
stretch the new routine beyond ``config.stretch_threshold`` × its ideal
runtime when the plain tail placement would stretch it less.
"""

import time as _time
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from repro.core.controller import RoutineRun
from repro.core.ev import Placement
from repro.core.lineage import Gap
from repro.core.schedulers.base import Scheduler

# Cap on gaps tried per lock-access; keeps worst-case search polynomial
# while far exceeding realistic lineage sizes.
MAX_GAPS_PER_ACCESS = 32


class TimelineScheduler(Scheduler):
    """Backtracking gap placement with estimate-driven timelines."""

    name = "timeline"

    def __init__(self, controller) -> None:
        super().__init__(controller)
        # Wall-clock seconds spent inside the placement search, per
        # routine size — reproduces Fig 15d.
        self.insertion_times: List[Tuple[int, float]] = []

    def on_arrive(self, run: RoutineRun) -> None:
        started = _time.perf_counter()
        placements = self._place(run)
        self.insertion_times.append(
            (len(run.commands), _time.perf_counter() - started))
        self.controller.place_run(run, placements)

    # -- Algorithm 1 -----------------------------------------------------------------

    def _place(self, run: RoutineRun) -> List[Placement]:
        controller = self.controller
        now = controller.sim.now
        requests = run.routine.lock_requests()
        durations = [controller.estimate_duration(run, request)
                     for request in requests]

        # Fast path: when every requested device's lineage is empty (no
        # live entries, no compacted-before ghosts) — ~80% of fleet-mix
        # placements — the search degenerates to the tail chain: each
        # access lands in its device's sole (index 0, now → ∞) gap with
        # empty preSet/postSet, which is exactly what the backtracking
        # search below computes gap-by-gap.  Skips the gap projection,
        # closure build and recursion without changing one placement.
        table = controller.table
        compacted = controller.compacted_before
        empty = True
        for request in requests:
            if table.lineage(request.device_id).entries or \
                    compacted.get(request.device_id):
                empty = False
                break
        if empty:
            chain = self.chains_devices()
            placements = []
            earliest = now
            for request, duration in zip(requests, durations):
                placements.append(Placement(request, 0, earliest,
                                            duration))
                if chain:
                    earliest += duration
            return self._admit(run, placements, durations)

        estimator = controller.routine_end_estimator()
        # Per device: the (truncated) gap list plus a bisect index over
        # the gap *end* times.  Gaps are disjoint and time-ordered, so
        # ends are increasing and every gap with ``end < earliest +
        # duration`` can be skipped wholesale — those are exactly the
        # gaps the old linear scan rejected one ``fits`` call at a time.
        gaps_by_device: Dict[
            int, Tuple[List[Gap], List[float], List[int]]] = {}
        for request in requests:
            lineage = controller.table.lineage(request.device_id)
            gaps = lineage.gaps(now, estimator)
            if not controller.config.pre_lease:
                gaps = gaps[-1:]  # tail only: no placement before others
            gaps = gaps[:MAX_GAPS_PER_ACCESS]
            gaps_by_device[request.device_id] = (
                gaps, [gap.end for gap in gaps], lineage.owners())

        closures = controller.closure_index()
        assignment: List[Optional[Placement]] = [None] * len(requests)
        chain = self.chains_devices()

        def schedule(index: int, earliest: float,
                     pre: set, post: set) -> bool:
            """Recursive backtracking placement (Algorithm 1)."""
            if index >= len(requests):
                return True
            request = requests[index]
            duration = durations[index]
            gaps, ends, owners = gaps_by_device[request.device_id]
            for gap in gaps[bisect_left(ends, earliest + duration):]:
                if not gap.fits(earliest, duration):
                    continue
                start = gap.placement(earliest)
                gap_pre, gap_post = controller.before_after_for_gap(
                    request.device_id, gap.index, closures,
                    owners=owners)
                cur_pre = pre | gap_pre
                cur_post = post | gap_post
                if cur_pre & cur_post:
                    continue  # serialization violated: try next gap
                assignment[index] = Placement(request, gap.index,
                                              start, duration)
                if schedule(index + 1,
                            start + duration if chain else earliest,
                            cur_pre, cur_post):
                    return True
                assignment[index] = None
            return False

        if not schedule(0, now, set(), set()):
            # Unreachable in theory (tail gaps always compose), but fall
            # back gracefully rather than dying mid-simulation.
            return self.tail_placements(run)

        placements = [p for p in assignment if p is not None]
        return self._admit(run, placements, durations)

    # -- stretch admission --------------------------------------------------------------

    def _admit(self, run: RoutineRun, placements: List[Placement],
               durations: List[float]) -> List[Placement]:
        ideal = sum(durations)
        if ideal <= 0:
            return placements
        threshold = self.controller.config.stretch_threshold
        stretch = self._stretch_of(placements, ideal)
        if stretch <= threshold:
            return placements
        tail = self.tail_placements(run)
        if self._stretch_of(tail, ideal) < stretch:
            return tail
        return placements

    @staticmethod
    def _stretch_of(placements: List[Placement], ideal: float) -> float:
        start = placements[0].planned_start
        end = placements[-1].planned_start + placements[-1].duration
        return (end - start) / ideal
