"""Scheduler interface and shared placement helpers."""

from typing import TYPE_CHECKING, List

from repro.core.controller import RoutineRun
from repro.core.ev import Placement

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.ev import EventualVisibilityController


class Scheduler:
    """Decides when/where a routine's lock-accesses enter the lineage."""

    name = "base"

    def __init__(self, controller: "EventualVisibilityController") -> None:
        self.controller = controller

    # -- events from the controller ------------------------------------------------

    def on_arrive(self, run: RoutineRun) -> None:
        raise NotImplementedError

    def on_release(self, device_id: int) -> None:
        """A lock-access on ``device_id`` was released or removed."""

    def on_finish(self, run: RoutineRun) -> None:
        """A routine committed or aborted."""

    # -- helpers ----------------------------------------------------------------------

    def chains_devices(self) -> bool:
        """Serial plans execute a routine's per-device accesses
        back-to-back, so placement estimates chain each access after
        the previous one; parallel plans start every device's chain at
        routine start, so estimates must not chain."""
        return self.controller.config.execution != "parallel"

    def tail_placements(self, run: RoutineRun) -> List[Placement]:
        """Append-to-tail placement: serialization after every current
        access (the FCFS placement; also every scheduler's fallback)."""
        controller = self.controller
        now = controller.sim.now
        placements: List[Placement] = []
        chain = self.chains_devices()
        earliest = now
        estimator = controller.routine_end_estimator()
        for request in run.routine.lock_requests():
            lineage = controller.table.lineage(request.device_id)
            duration = controller.estimate_duration(run, request)
            tail_gap = lineage.gaps(now, estimator)[-1]
            start = tail_gap.placement(earliest)
            placements.append(Placement(request, tail_gap.index,
                                        start, duration))
            if chain:
                earliest = start + duration
        return placements
