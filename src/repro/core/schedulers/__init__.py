"""Scheduling policies for Eventual Visibility (§5).

* **FCFS** — serialize in arrival order; post-leases only.
* **JiT** — greedy eligibility test on arrival and on every lock
  release, with a TTL against starvation.
* **Timeline (TL)** — speculative placement into lineage gaps using
  duration estimates (Algorithm 1 backtracking).
"""

from repro.core.schedulers.base import Scheduler
from repro.core.schedulers.fcfs import FCFSScheduler
from repro.core.schedulers.jit import JiTScheduler
from repro.core.schedulers.timeline import TimelineScheduler

_SCHEDULERS = {
    "fcfs": FCFSScheduler,
    "jit": JiTScheduler,
    "timeline": TimelineScheduler,
    "tl": TimelineScheduler,
}


def make_scheduler(name: str, controller) -> Scheduler:
    """Instantiate a scheduler by config name ('fcfs'|'jit'|'timeline')."""
    cls = _SCHEDULERS.get(name.lower())
    if cls is None:
        raise ValueError(
            f"unknown scheduler {name!r}; pick from {sorted(_SCHEDULERS)}")
    return cls(controller)


__all__ = ["Scheduler", "FCFSScheduler", "JiTScheduler",
           "TimelineScheduler", "make_scheduler"]
