"""Just-in-Time scheduling (§5).

A new routine waits in the queue until a greedy *eligibility test* says
it can acquire **all** of its locks right now — free locks, post-leases
(after a released prefix) or pre-leases (before purely SCHEDULED
accesses).  The test runs on every arrival and every lock release.  A
per-routine TTL prevents starvation: once a waiting routine's TTL
expires, no younger routine may be scheduled ahead of it.
"""

from typing import List, Optional

from repro.core.controller import RoutineRun
from repro.core.ev import Placement
from repro.core.lineage import LockStatus
from repro.core.schedulers.base import Scheduler


class JiTScheduler(Scheduler):
    """Eligibility-test scheduling with TTL anti-starvation."""

    name = "jit"

    def __init__(self, controller) -> None:
        super().__init__(controller)
        self.queue: List[RoutineRun] = []

    def on_arrive(self, run: RoutineRun) -> None:
        self.queue.append(run)
        self._try_schedule()

    def on_release(self, device_id: int) -> None:
        self._try_schedule()

    def on_finish(self, run: RoutineRun) -> None:
        if run in self.queue:
            self.queue.remove(run)
        self._try_schedule()

    # -- eligibility (the greedy test) ------------------------------------------------

    def _try_schedule(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for run in self._candidates():
                placements = self._eligible(run)
                if placements is None:
                    continue
                self.queue.remove(run)
                self.controller.place_run(run, placements)
                progressed = True
                break  # placements changed the table; re-derive candidates

    def _candidates(self) -> List[RoutineRun]:
        """Queue order, restricted to expired-TTL routines if any exist."""
        now = self.controller.sim.now
        ttl = self.controller.config.jit_ttl_s
        live = [run for run in self.queue if not run.done]
        expired = [run for run in live if now - run.submit_time >= ttl]
        return expired if expired else live

    def _eligible(self, run: RoutineRun) -> Optional[List[Placement]]:
        """Placement if every lock is acquirable now, else ``None``."""
        controller = self.controller
        config = controller.config
        closures = controller.closure_index()
        pre: set = set()
        post: set = set()
        placements: List[Placement] = []
        now = controller.sim.now
        chain = self.chains_devices()
        earliest = now
        for request in run.routine.lock_requests():
            lineage = controller.table.lineage(request.device_id)
            entries = lineage.entries
            released_prefix = 0
            for entry in entries:
                if entry.status is LockStatus.RELEASED:
                    released_prefix += 1
                else:
                    break
            if released_prefix < len(entries):
                blocker = entries[released_prefix]
                if blocker.status is not LockStatus.SCHEDULED:
                    return None  # the device is actively in use
                if not config.pre_lease:
                    return None  # would need a pre-lease
            if released_prefix and not config.post_lease:
                # A released-but-unfinished owner ahead of us means we
                # would be borrowing via post-lease.
                unfinished = any(
                    not controller.is_finished(e.routine_id)
                    for e in entries[:released_prefix])
                if unfinished:
                    return None
            index = released_prefix
            gap_pre, gap_post = controller.before_after_for_gap(
                request.device_id, index, closures)
            pre |= gap_pre
            post |= gap_post
            if pre & post:
                return None  # would contradict the serialization order
            duration = controller.estimate_duration(run, request)
            placements.append(
                Placement(request, index, earliest, duration))
            if chain:
                earliest += duration
        return placements
