"""Routines: sequences of commands, and their lock-request footprint.

A routine touches each of its devices through one *lock-access* spanning
its first to its last command on that device (§4.3's lock-accessD(Ri)).
:func:`Routine.lock_requests` derives that footprint together with the
relative time offsets the Timeline scheduler needs.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.command import Command
from repro.errors import RoutineSpecError


@dataclass(frozen=True)
class LockRequest:
    """A routine's aggregate footprint on one device.

    Attributes:
        device_id: the device.
        offset: seconds after routine start when the first command on
            this device begins (assuming no lock waits).
        duration: seconds from that first command's start to the last
            command's end on this device.
        command_indexes: indexes into ``routine.commands``.
        writes: True if any command in the span writes the device.
        reads: True if any command in the span reads the device.
    """

    device_id: int
    offset: float
    duration: float
    command_indexes: tuple
    writes: bool
    reads: bool


@dataclass
class Routine:
    """A user- or trigger-initiated sequence of commands.

    Attributes:
        name: label ("goodnight", "R1", ...).
        commands: executed strictly in order.
        user: optional submitting user (scenarios).
        trigger: optional trigger description (dispatcher).
    """

    name: str
    commands: List[Command]
    user: str = ""
    trigger: str = ""
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.commands:
            raise RoutineSpecError(f"routine {self.name!r} has no commands")
        self._check_contiguous_devices()

    def _check_contiguous_devices(self) -> None:
        """Reject A,B,A device patterns.

        One lock-access per device must span first→last touch; a routine
        that touches A, then B, then A again would need its A lock-access
        to *contain* B's, which Algorithm 1's sequential gap chaining
        cannot place.  Workload generators always emit contiguous
        per-device groups, so we enforce it here.
        """
        seen: Dict[int, int] = {}
        previous: Optional[int] = None
        for index, command in enumerate(self.commands):
            dev = command.device_id
            if dev in seen and previous != dev:
                raise RoutineSpecError(
                    f"routine {self.name!r} touches device {dev} "
                    f"non-contiguously (commands {seen[dev]} and {index})"
                )
            if dev not in seen:
                seen[dev] = index
            previous = dev

    # -- derived footprint ---------------------------------------------------
    #
    # The footprint views below are cached on first use: commands are
    # fixed after construction (the contiguity check would be meaningless
    # otherwise) and the controllers re-derive these on every placement,
    # finish and rollback.  Callers must treat the returned lists as
    # read-only.

    @property
    def device_ids(self) -> List[int]:
        """Devices touched, in first-touch order (no duplicates)."""
        cached = self.__dict__.get("_device_ids")
        if cached is None:
            ordered: List[int] = []
            for command in self.commands:
                if command.device_id not in ordered:
                    ordered.append(command.device_id)
            cached = self.__dict__["_device_ids"] = ordered
        return cached

    @property
    def device_set(self) -> frozenset:
        return frozenset(c.device_id for c in self.commands)

    def conflicts_with(self, other: "Routine") -> bool:
        """True when the two routines touch at least one common device."""
        return bool(self.device_set & other.device_set)

    @property
    def total_duration(self) -> float:
        """Ideal (lock-wait-free) execution time of the routine."""
        cached = self.__dict__.get("_total_duration")
        if cached is None:
            cached = self.__dict__["_total_duration"] = \
                sum(c.duration for c in self.commands)
        return cached

    @property
    def is_long(self) -> bool:
        """A long routine contains at least one long command (§1)."""
        return any(c.is_long for c in self.commands)

    def command_offsets(self) -> List[float]:
        """Start offset of each command under back-to-back execution."""
        offsets, elapsed = [], 0.0
        for command in self.commands:
            offsets.append(elapsed)
            elapsed += command.duration
        return offsets

    def lock_requests(self) -> List[LockRequest]:
        """Per-device lock-accesses in first-touch order.

        Single pass over the commands: per-device groups are contiguous
        (enforced at construction), so a device's span closes when the
        next device begins.  Offsets accumulate the same left-to-right
        float additions :meth:`command_offsets` performs.
        """
        cached = self.__dict__.get("_lock_requests")
        if cached is not None:
            return cached
        requests: List[LockRequest] = []
        elapsed = 0.0
        device_id: Optional[int] = None
        start = 0.0
        indexes: List[int] = []
        writes = reads = False
        for index, command in enumerate(self.commands):
            if command.device_id != device_id:
                if device_id is not None:
                    requests.append(LockRequest(
                        device_id=device_id, offset=start,
                        duration=elapsed - start,
                        command_indexes=tuple(indexes),
                        writes=writes, reads=reads))
                device_id = command.device_id
                start = elapsed
                indexes = []
                writes = reads = False
            indexes.append(index)
            writes = writes or command.is_write
            reads = reads or command.is_read
            elapsed += command.duration
        if device_id is not None:
            requests.append(LockRequest(
                device_id=device_id, offset=start,
                duration=elapsed - start, command_indexes=tuple(indexes),
                writes=writes, reads=reads))
        self.__dict__["_lock_requests"] = requests
        return requests

    def final_write_values(self) -> Dict[int, Any]:
        """Last written value per device — the routine's end-state effect.

        Used by the serial-equivalence checkers: in a serial world, a
        routine's effect on each device is its last write.
        """
        cached = self.__dict__.get("_final_writes")
        if cached is None:
            values: Dict[int, Any] = {}
            for command in self.commands:
                if command.is_write:
                    values[command.device_id] = command.value
            cached = self.__dict__["_final_writes"] = values
        return cached

    def describe(self) -> str:
        steps = "; ".join(c.describe() for c in self.commands)
        return f"{self.name}: {steps}"


def sequential(name: str, steps: Sequence[tuple], **kwargs: Any) -> Routine:
    """Convenience constructor from ``(device_id, value, duration)`` tuples.

    >>> cooling = sequential("cooling", [(1, "CLOSED", 1.0), (2, "ON", 1.0)])
    """
    commands = []
    for step in steps:
        device_id, value, duration = step[0], step[1], step[2]
        must = step[3] if len(step) > 3 else True
        commands.append(Command(device_id=device_id, value=value,
                                duration=duration, must=must))
    return Routine(name=name, commands=commands, **kwargs)
