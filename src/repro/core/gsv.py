"""Global Strict Visibility (GSV) and Strong GSV (§2.1, §3).

GSV executes at most one routine at a time, presenting a single
serialized home at every point in time.  The one-at-a-time rule is an
exclusive lock on the :data:`~repro.core.execution.locks.GLOBAL`
pseudo-resource of the shared lock table: arrivals acquire it FIFO, so
the policy here reduces to "hold the home lock for the whole routine".
Failure serialization (§3): if a device failure or restart event is
detected while a routine is executing, the routine aborts —

* **GSV (loose)**: only when the routine touches the failed/restarted
  device;
* **S-GSV (strong)**: on *any* device's failure/restart event.
"""

from typing import Optional

from repro.core.controller import RoutineRun, RoutineStatus
from repro.core.execution.engine import PlanExecutionMixin
from repro.core.execution.locks import GLOBAL


class GlobalStrictVisibilityController(PlanExecutionMixin):
    """One routine at a time, FIFO; loose failure serialization."""

    model_name = "gsv"
    strong = False
    # Hub-crash recovery (docs/durability.md): GSV shows a single
    # serialized home at every instant; a routine that straddled a hub
    # outage cannot claim that, so recovery aborts the executing routine
    # (the global lock then passes to the next FIFO waiter).
    hub_recovery_policy = "abort"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._current: Optional[RoutineRun] = None

    def snapshot_state(self):
        state = super().snapshot_state()
        state["current"] = (self._current.routine_id
                            if self._current is not None else None)
        return state

    def _arrive(self, run: RoutineRun) -> None:
        run.status = RoutineStatus.WAITING
        if self._admit_with_locks(run, (GLOBAL,)):
            self._start_admitted(run)

    def _start_admitted(self, run: RoutineRun) -> None:
        self._current = run
        self._begin(run)
        self._run_next(run)

    def _policy_after_finish(self, run: RoutineRun) -> None:
        if run is self._current:
            self._current = None
        self._release_admission_locks(run)

    def _abort_current_if_affected(self, device_id: int,
                                   event: str) -> None:
        run = self._current
        if run is None or run.done:
            return
        # Loose GSV aborts when the routine touches the device with a
        # *must* command (best-effort touches are skippable, §2.2);
        # S-GSV aborts on any device's event.
        affected = self.strong or any(
            c.must and c.device_id == device_id for c in run.commands)
        if affected:
            self.request_abort(
                run, f"{event} of device {device_id} during execution")

    def _policy_on_failure(self, device_id: int) -> None:
        self._abort_current_if_affected(device_id, "failure")

    def _policy_on_restart(self, device_id: int) -> None:
        self._abort_current_if_affected(device_id, "restart")


class StrongGSVController(GlobalStrictVisibilityController):
    """S-GSV: abort the running routine on any failure/restart event."""

    model_name = "sgsv"
    strong = True
