"""Per-device FIFO of in-flight executions.

Parallel dispatch can make several routines want to actuate the same
device in the same virtual instant (WV and OCC have no locks at all).
Physical devices process one request at a time, and both the driver's
write log and the failure detector assume a single writer per device.
``DeviceQueues`` is that serialization point: a submitted execution
fires immediately when its device is idle, otherwise it queues FIFO and
fires when the device frees up.

A queued thunk returns True when it actually issued work and False when
it became moot (its routine finished while queued); moot thunks are
skipped so they never hold the device.
"""

from collections import deque
from typing import Callable, Deque, Dict

#: An execution attempt: returns True if it issued work on the device.
Thunk = Callable[[], bool]


class DeviceQueues:
    """One in-flight execution per device; FIFO overflow."""

    def __init__(self) -> None:
        self._busy: Dict[int, bool] = {}
        self._waiting: Dict[int, Deque[Thunk]] = {}

    def submit(self, device_id: int, thunk: Thunk) -> bool:
        """Fire now if the device is idle, else enqueue.

        Returns True when the thunk fired (and issued) immediately."""
        if self._busy.get(device_id):
            self._waiting.setdefault(device_id, deque()).append(thunk)
            return False
        return self._fire(device_id, thunk)

    def complete(self, device_id: int) -> None:
        """The in-flight execution resolved; fire the next waiter."""
        self._busy[device_id] = False
        waiting = self._waiting.get(device_id)
        while waiting:
            if self._fire(device_id, waiting.popleft()):
                return

    def _fire(self, device_id: int, thunk: Thunk) -> bool:
        self._busy[device_id] = True
        if thunk():
            return True
        self._busy[device_id] = False
        return False

    def busy(self, device_id: int) -> bool:
        return bool(self._busy.get(device_id))

    def depth(self, device_id: int) -> int:
        """Queued (not yet fired) executions behind the device."""
        return len(self._waiting.get(device_id, ()))

    def snapshot(self) -> dict:
        """Structural image for hub checkpoints: which devices are busy
        and how deep each backlog is.  Queued thunks are closures and
        cannot be serialized — recovery reconstructs them by replay, so
        this snapshot is evidence (digested, compared), not a restore
        source."""
        return {
            "busy": sorted(d for d, flag in self._busy.items() if flag),
            "depths": {d: len(q) for d, q in sorted(self._waiting.items())
                       if q},
        }
