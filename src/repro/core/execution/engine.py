"""The shared execution engine: drive a routine's command plan.

``PlanExecutionMixin`` is what every visibility controller now inherits
instead of hand-rolling its command chain.  It owns three policy-agnostic
mechanisms:

* the **serial chain** — the exact command-after-command driver the old
  ``SequentialExecutionMixin`` implemented, kept bit-compatible because
  the paper's experiments (and every seeded baseline report) execute
  routines strictly in order;
* the **parallel dispatcher** — compiles the routine into a
  :class:`~repro.core.execution.plan.CommandPlan` DAG and issues every
  ready command whose device the policy lets it claim, through the
  per-device :class:`~repro.core.execution.queues.DeviceQueues` FIFO;
* **lock-table admission** — the helper GSV and PSV use to express
  their admission rules as acquisitions against the shared
  :class:`~repro.core.execution.locks.LockTable` (with the wait-for
  cycle safety net; admission acquires atomically in arrival order, so
  cycles cannot arise from the built-in policies, but a custom policy
  acquiring incrementally is protected by deterministic victim abort).

Controllers choose the strategy via ``ControllerConfig.execution``
(``"serial"`` | ``"parallel"``) and customize three hooks:
``_claim_device`` (may this ready command execute now?),
``_start_admitted`` (a lock-table admission completed) and the existing
finish/failure-point hooks.
"""

from typing import List, Sequence

from repro.core.command import CommandExecution
from repro.core.controller import Controller, RoutineRun
from repro.core.execution.locks import LockMode, LockTable
from repro.core.execution.plan import STRATEGIES, CommandPlan, NodeState
from repro.core.execution.queues import DeviceQueues


class PlanExecutionMixin(Controller):
    """Drives a routine's commands under the configured plan strategy."""

    # Built-in policies acquire their whole footprint atomically in
    # arrival order, so the wait-for graph is provably acyclic and the
    # per-admission cycle scan would be pure overhead.  A custom policy
    # that acquires locks *incrementally* after admission should flip
    # this on to get deterministic victim aborts instead of hangs.
    deadlock_detection = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        strategy = getattr(self.config, "execution", "serial")
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown execution strategy {strategy!r}; "
                f"pick from {STRATEGIES}")
        self.locks = LockTable()
        self.device_queues = DeviceQueues()
        self._arrival_counter = 0
        # routine id -> resources still awaited for lock-table admission.
        self._admission_pending = {}
        # The strategy is fixed for the controller's lifetime (SafeHome
        # rebuilds the whole stack on recovery), so the per-pump flag is
        # computed once instead of a getattr + compare per command.
        self._parallel_flag = strategy == "parallel"

    # -- strategy ----------------------------------------------------------------

    def _parallel_enabled(self) -> bool:
        return self._parallel_flag

    def _plan_for(self, run: RoutineRun) -> CommandPlan:
        if run.plan is None:
            run.plan = CommandPlan(run.commands,
                                   strategy=self.config.execution,
                                   now=self.sim.now)
        return run.plan

    # -- serial chain (bit-compatible with SequentialExecutionMixin) --------------

    def _run_next(self, run: RoutineRun) -> None:
        if self._parallel_enabled():
            self._dispatch(run)
            return
        if run.done or run.inflight:
            return
        if run.next_index >= len(run.commands):
            self._finish_point(run)
            return
        command = run.commands[run.next_index]
        run.next_index += 1
        self._issue_command(run, command, self._after_command)

    def _after_command(self, run: RoutineRun,
                       execution: CommandExecution) -> None:
        device_id = execution.command.device_id
        if self._last_index_on_device(run, device_id) < run.next_index:
            self.record_last_access(run, device_id)
            self._on_device_access_done(run, device_id)
        self._run_next(run)

    @staticmethod
    def _last_index_on_device(run: RoutineRun, device_id: int) -> int:
        return run.last_index_by_device.get(device_id, -1)

    def _finish_point(self, run: RoutineRun) -> None:
        """All commands processed; default is to commit immediately."""
        self.commit(run)

    def _on_device_access_done(self, run: RoutineRun,
                               device_id: int) -> None:
        """Hook: EV releases the virtual lock (post-lease) here."""

    # -- parallel dispatch ---------------------------------------------------------

    def _dispatch(self, run: RoutineRun) -> None:
        """Issue every ready plan node whose device the policy grants."""
        if run.done or run.abort_pending:
            return
        plan = self._plan_for(run)
        for index in plan.ready_indexes():
            if plan.nodes[index].state is not NodeState.READY:
                # A believed-failed device resolves its command
                # synchronously, so issuing one node can re-enter
                # _dispatch and issue later ready nodes before this
                # loop reaches them; don't issue them twice.
                continue
            command = run.commands[index]
            if not self._claim_device(run, command):
                continue
            run.lock_wait_s += plan.mark_issued(index, self.sim.now)
            self._begin(run)
            self.device_queues.submit(command.device_id,
                                      self._node_thunk(run, index))
        if plan.all_done() and not run.inflight and not run.done:
            self._finish_point(run)

    def _claim_device(self, run: RoutineRun, command) -> bool:
        """May this ready command execute now?  Policy hook: the default
        (WV/OCC — no locks; GSV/PSV — whole-routine admission already
        holds every lock) always grants; EV gates on its lineage."""
        return True

    def _node_thunk(self, run: RoutineRun, index: int):
        def fire() -> bool:
            if run.done or run.abort_pending:
                return False
            command = run.commands[index]
            self._issue_command(
                run, command,
                lambda r, e: self._after_parallel_command(r, e, index))
            return True
        return fire

    def _after_parallel_command(self, run: RoutineRun,
                                execution: CommandExecution,
                                index: int) -> None:
        plan = self._plan_for(run)
        plan.mark_done(index, self.sim.now)
        device_id = execution.command.device_id
        if index == self._last_index_on_device(run, device_id):
            self.record_last_access(run, device_id)
            self._on_device_access_done(run, device_id)
        self._dispatch(run)

    def _on_execution_resolved(self, run: RoutineRun,
                               execution: CommandExecution) -> None:
        """Free the device FIFO slot the moment an execution resolves —
        including abort/skip paths that never reach ``on_done``."""
        super()._on_execution_resolved(run, execution)
        if self._parallel_enabled():
            self.device_queues.complete(execution.command.device_id)

    # -- durability: state capture -------------------------------------------------

    def snapshot_state(self):
        state = super().snapshot_state()
        state["locks"] = self.locks.snapshot()
        state["device_queues"] = self.device_queues.snapshot()
        state["admission_pending"] = {
            owner: sorted(resources)
            for owner, resources in sorted(self._admission_pending.items())}
        state["arrival_counter"] = self._arrival_counter
        state["plans"] = {
            run.routine_id: run.plan.snapshot()
            for run in self.runs if run.plan is not None}
        return state

    # -- lock-table admission (GSV/PSV policies) -----------------------------------

    def _admit_with_locks(self, run: RoutineRun,
                          resources: Sequence[int],
                          mode: LockMode = LockMode.EXCLUSIVE) -> bool:
        """Acquire every resource or enqueue FIFO; True when fully
        granted now.  Resources are requested atomically in arrival
        order, which makes admission deadlock-free by construction
        (wait-for edges always point at earlier arrivals)."""
        run.arrival_seq = self._arrival_counter
        self._arrival_counter += 1
        now = self.sim.now
        pending = set()
        for resource in resources:
            if not self.locks.acquire(run.routine_id, resource,
                                      mode=mode, now=now):
                pending.add(resource)
        self._journal("admission", routine_id=run.routine_id,
                      resources=sorted(resources),
                      granted=not pending,
                      waiting=sorted(pending))
        if not pending:
            return True
        self._admission_pending[run.routine_id] = pending
        if self.deadlock_detection:              # custom-policy safety net
            victim = self.locks.detect_deadlock()
            if victim is not None:
                self.request_abort(self.run_by_id(victim),
                                   "deadlock victim (lock-table cycle)")
        return False

    def _release_admission_locks(self, run: RoutineRun) -> None:
        """Return a finished routine's locks; start newly admitted runs
        in arrival order (reproducing the old queue-scan order)."""
        self._admission_pending.pop(run.routine_id, None)
        grants = self.locks.forget(run.routine_id, self.sim.now)
        startable: List[RoutineRun] = []
        for grant in grants:
            pending = self._admission_pending.get(grant.owner)
            if pending is None:
                continue
            pending.discard(grant.resource)
            if not pending:
                del self._admission_pending[grant.owner]
                startable.append(self.run_by_id(grant.owner))
        for next_run in sorted(startable, key=lambda r: r.arrival_seq):
            next_run.lock_wait_s += self.locks.wait_seconds.pop(
                next_run.routine_id, 0.0)
            self._journal("lock-granted", routine_id=next_run.routine_id,
                          released_by=run.routine_id)
            if next_run.done:
                self._release_admission_locks(next_run)
            else:
                self._start_admitted(next_run)

    def _start_admitted(self, run: RoutineRun) -> None:
        """Hook: a lock-table admission completed; begin the routine."""
        raise NotImplementedError
