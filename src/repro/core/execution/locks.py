"""Centralized lock table: the classic lock-manager design.

One table per controller replaces the per-model lock bookkeeping that
used to live inside GSV (an implicit global mutex), PSV (a blocked-set
scan over waiting routines) and EV's lease plumbing.  The table speaks
the textbook vocabulary of transactional lock managers:

* **shared / exclusive** modes per resource (a resource is usually a
  device id; GSV locks the single :data:`GLOBAL` pseudo-resource);
* **FIFO wait queues** — a request that cannot be granted now waits in
  arrival order, so grants never overtake earlier waiters;
* a **wait-for graph** derived from holders and waiters, with cycle
  detection and *deterministic victim selection* (youngest routine in
  the cycle, i.e. highest routine id — deterministic across runs and
  backends, unlike timestamp- or random-victim schemes);
* **leniency-scaled lease expiry**: a grant may carry a deadline
  computed as ``duration × leniency + slack`` (§4.1's revocation rule);
  :meth:`LockTable.overdue` reports expired grants that have waiters
  queued behind them, which is exactly when revoking is worthwhile.

The table is pure bookkeeping: it never touches the simulator.  Policy
code decides when to request, release and revoke; the execution engine
wires grant callbacks back into routine admission.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

#: Pseudo-resource representing "the whole home" (GSV's one-at-a-time
#: rule is an exclusive lock on this resource).
GLOBAL = -1


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


def lease_deadline(now: float, duration: float, leniency: float = 1.1,
                   slack: float = 0.0) -> float:
    """§4.1's revocation deadline: estimated hold time, leniency-scaled
    to absorb estimate error, plus fixed slack for network jitter."""
    return now + duration * leniency + slack


@dataclass
class LockGrant:
    """One owner's granted hold on one resource."""

    owner: int
    resource: int
    mode: LockMode
    granted_at: float = 0.0
    deadline: Optional[float] = None    # lease expiry; None = no lease

    def overdue(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


@dataclass
class _Waiter:
    """A queued request (FIFO per resource)."""

    owner: int
    resource: int
    mode: LockMode
    enqueued_at: float = 0.0
    deadline: Optional[float] = None


@dataclass
class _Resource:
    """Grant set plus wait queue for one resource."""

    resource: int
    grants: List[LockGrant] = field(default_factory=list)
    waiters: List[_Waiter] = field(default_factory=list)

    def holder_ids(self) -> List[int]:
        return [grant.owner for grant in self.grants]

    def grantable(self, owner: int, mode: LockMode) -> bool:
        """Could ``owner`` be granted ``mode`` right now?

        Requires compatibility with every current grant *and* no
        earlier waiter (FIFO fairness: lock requests never overtake).
        """
        if any(not grant.mode.compatible(mode) for grant in self.grants
               if grant.owner != owner):
            return False
        return not any(waiter.owner != owner for waiter in self.waiters)


class LockTable:
    """Shared/exclusive resource locks with FIFO waiters and deadlock
    detection.  All operations are deterministic given call order."""

    def __init__(self) -> None:
        self._resources: Dict[int, _Resource] = {}
        # owner -> total seconds spent waiting for grants (lock-wait
        # breakdown for the metrics layer).
        self.wait_seconds: Dict[int, float] = {}
        self.stats: Dict[str, int] = {
            "acquired": 0, "waited": 0, "deadlocks": 0}

    def _resource(self, resource: int) -> _Resource:
        if resource not in self._resources:
            self._resources[resource] = _Resource(resource)
        return self._resources[resource]

    # -- queries --------------------------------------------------------------

    def holds(self, owner: int, resource: int) -> bool:
        table = self._resources.get(resource)
        return bool(table) and owner in table.holder_ids()

    def holdings(self, owner: int) -> List[int]:
        return [res.resource for res in self._resources.values()
                if owner in res.holder_ids()]

    def waiting_on(self, owner: int) -> List[int]:
        return [res.resource for res in self._resources.values()
                if any(w.owner == owner for w in res.waiters)]

    def waiter_count(self, resource: int) -> int:
        table = self._resources.get(resource)
        return len(table.waiters) if table else 0

    def overdue(self, now: float) -> List[LockGrant]:
        """Expired leases that have waiters queued behind them — the
        grants worth revoking (an uncontended overdue lease harms
        nobody, §4.1)."""
        out = []
        for res in self._resources.values():
            if not res.waiters:
                continue
            out.extend(g for g in res.grants if g.overdue(now))
        return out

    # -- acquire / release ----------------------------------------------------

    def acquire(self, owner: int, resource: int, *,
                mode: LockMode = LockMode.EXCLUSIVE, now: float = 0.0,
                deadline: Optional[float] = None) -> bool:
        """Grant now (True) or enqueue FIFO and return False."""
        res = self._resource(resource)
        if self.holds(owner, resource):
            return True
        if res.grantable(owner, mode):
            res.grants.append(LockGrant(owner, resource, mode,
                                        granted_at=now, deadline=deadline))
            self.stats["acquired"] += 1
            return True
        res.waiters.append(_Waiter(owner, resource, mode,
                                   enqueued_at=now, deadline=deadline))
        self.stats["waited"] += 1
        return False

    def release(self, owner: int, resource: int,
                now: float = 0.0) -> List[LockGrant]:
        """Release one hold; returns the waiters granted as a result."""
        res = self._resources.get(resource)
        if res is None:
            return []
        res.grants = [g for g in res.grants if g.owner != owner]
        return self._promote(res, now)

    def forget(self, owner: int, now: float = 0.0) -> List[LockGrant]:
        """Drop every hold *and* queued wait of ``owner`` (routine
        finished or was chosen as a deadlock victim); returns every
        newly granted waiter across all resources."""
        granted: List[LockGrant] = []
        for res in self._resources.values():
            before = len(res.grants) + len(res.waiters)
            res.grants = [g for g in res.grants if g.owner != owner]
            res.waiters = [w for w in res.waiters if w.owner != owner]
            if before != len(res.grants) + len(res.waiters):
                granted.extend(self._promote(res, now))
        return granted

    def _promote(self, res: _Resource, now: float) -> List[LockGrant]:
        """Grant the longest FIFO prefix of compatible waiters."""
        granted: List[LockGrant] = []
        while res.waiters:
            head = res.waiters[0]
            if any(not grant.mode.compatible(head.mode)
                   for grant in res.grants):
                break
            res.waiters.pop(0)
            grant = LockGrant(head.owner, head.resource, head.mode,
                              granted_at=now, deadline=head.deadline)
            res.grants.append(grant)
            self.wait_seconds[head.owner] = (
                self.wait_seconds.get(head.owner, 0.0)
                + max(0.0, now - head.enqueued_at))
            self.stats["acquired"] += 1
            granted.append(grant)
        return granted

    # -- snapshot / restore (durability contract) ------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable image of every grant and waiter.

        Deterministic: resources sorted by id, grants and waiters in
        their (semantically meaningful) list order.
        """
        return {
            "resources": [{
                "resource": res.resource,
                "grants": [{"owner": g.owner, "mode": g.mode.value,
                            "granted_at": g.granted_at,
                            "deadline": g.deadline}
                           for g in res.grants],
                "waiters": [{"owner": w.owner, "mode": w.mode.value,
                             "enqueued_at": w.enqueued_at,
                             "deadline": w.deadline}
                            for w in res.waiters],
            } for res in sorted(self._resources.values(),
                                key=lambda r: r.resource)],
            "wait_seconds": dict(self.wait_seconds),
            "stats": dict(self.stats),
        }

    def restore(self, snapshot: dict) -> None:
        """Rebuild the table from a :meth:`snapshot` image (inverse)."""
        self._resources = {}
        for entry in snapshot["resources"]:
            res = self._resource(entry["resource"])
            res.grants = [LockGrant(g["owner"], entry["resource"],
                                    LockMode(g["mode"]),
                                    granted_at=g["granted_at"],
                                    deadline=g["deadline"])
                          for g in entry["grants"]]
            res.waiters = [_Waiter(w["owner"], entry["resource"],
                                   LockMode(w["mode"]),
                                   enqueued_at=w["enqueued_at"],
                                   deadline=w["deadline"])
                           for w in entry["waiters"]]
        self.wait_seconds = {int(k): v for k, v in
                             snapshot["wait_seconds"].items()}
        self.stats = dict(snapshot["stats"])

    # -- deadlock handling ----------------------------------------------------

    def wait_for_edges(self) -> List[Tuple[int, int]]:
        """(waiter, holder) edges: who is blocked on whom.

        A waiter waits on every incompatible current holder and on
        every earlier waiter in the same queue (FIFO ordering is part
        of the blocking relation)."""
        edges: Set[Tuple[int, int]] = set()
        for res in self._resources.values():
            for index, waiter in enumerate(res.waiters):
                for grant in res.grants:
                    if grant.owner != waiter.owner and \
                            not grant.mode.compatible(waiter.mode):
                        edges.add((waiter.owner, grant.owner))
                for earlier in res.waiters[:index]:
                    if earlier.owner != waiter.owner:
                        edges.add((waiter.owner, earlier.owner))
        return sorted(edges)

    def find_cycle(self) -> Optional[List[int]]:
        """One wait-for cycle (as an owner list), or None.

        Deterministic: nodes and successors are visited in sorted
        order, so the same table state always yields the same cycle."""
        successors: Dict[int, List[int]] = {}
        for waiter, holder in self.wait_for_edges():
            successors.setdefault(waiter, []).append(holder)
        for succ in successors.values():
            succ.sort()

        state: Dict[int, int] = {}      # 0 = visiting, 1 = done
        stack: List[int] = []

        def visit(node: int) -> Optional[List[int]]:
            if state.get(node) == 1:
                return None
            if state.get(node) == 0:
                return stack[stack.index(node):]
            state[node] = 0
            stack.append(node)
            for succ in successors.get(node, ()):
                cycle = visit(succ)
                if cycle is not None:
                    return cycle
            stack.pop()
            state[node] = 1
            return None

        for node in sorted(successors):
            cycle = visit(node)
            if cycle is not None:
                return cycle
        return None

    @staticmethod
    def choose_victim(cycle: List[int]) -> int:
        """Deterministic victim: the youngest routine (highest id) — it
        has done the least work and retrying it is cheapest."""
        return max(cycle)

    def detect_deadlock(self) -> Optional[int]:
        """Victim owner id if the wait-for graph has a cycle, else None."""
        cycle = self.find_cycle()
        if cycle is None:
            return None
        self.stats["deadlocks"] += 1
        return self.choose_victim(cycle)
