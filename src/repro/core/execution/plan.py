"""Command-DAG planner: compile a routine into a dependency graph.

A routine's command list is a *program*; how much of it may run
concurrently is a *strategy*:

* ``serial`` — every command depends on its predecessor (the chain the
  old ``SequentialExecutionMixin`` hard-coded).  Kept for
  bit-compatibility: the paper's experiments execute routines strictly
  in order.
* ``parallel`` — commands on the *same* device keep program order
  (device state transitions must not reorder); commands on distinct
  devices with no read/write conflict run concurrently in virtual
  time.  Read commands are conditional clauses, so they act as
  barriers: a read waits for every earlier command, and every later
  command waits for the read — reordering around a condition would
  change what the condition observes and gates.

The plan tracks per-node lifecycle (PENDING → READY → ISSUED → DONE)
and the virtual time at which each node became ready, which gives the
metrics layer its lock-wait breakdown (ready-but-blocked time).
"""

import enum
from typing import Dict, List, Optional, Sequence, Set

from repro.core.command import Command

STRATEGIES = ("serial", "parallel")


class NodeState(enum.Enum):
    PENDING = "pending"     # dependencies not yet satisfied
    READY = "ready"         # dependencies done; waiting for lock/queue
    ISSUED = "issued"       # handed to the device layer
    DONE = "done"           # resolved (applied, skipped or timed out)


class PlanNode:
    """One command plus its dependency edges.

    ``__slots__``: plans allocate one node per command per routine run,
    a measured per-command hot-path allocation.
    """

    __slots__ = ("index", "command", "deps", "dependents", "state",
                 "ready_at", "issued_at")

    def __init__(self, index: int, command: Command) -> None:
        self.index = index
        self.command = command
        self.deps: Set[int] = set()
        self.dependents: List[int] = []
        self.state = NodeState.PENDING
        self.ready_at = 0.0
        self.issued_at: Optional[float] = None

    def __repr__(self) -> str:
        return (f"PlanNode({self.index}, dev={self.command.device_id}, "
                f"{self.state.value}, deps={sorted(self.deps)})")


class CommandPlan:
    """The compiled DAG for one routine run."""

    def __init__(self, commands: Sequence[Command],
                 strategy: str = "serial", now: float = 0.0) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown execution strategy {strategy!r}; "
                             f"pick from {STRATEGIES}")
        self.strategy = strategy
        self.nodes: List[PlanNode] = [
            PlanNode(index=i, command=c) for i, c in enumerate(commands)]
        self._open: Set[int] = set(range(len(self.nodes)))
        self._build_edges()
        for node in self.nodes:
            if not node.deps:
                node.state = NodeState.READY
                node.ready_at = now

    def _build_edges(self) -> None:
        if self.strategy == "serial":
            for node in self.nodes[1:]:
                self._edge(node.index - 1, node.index)
            return
        last_on_device: Dict[int, int] = {}
        last_barrier: Optional[int] = None
        for node in self.nodes:
            command = node.command
            prev = last_on_device.get(command.device_id)
            if prev is not None:
                self._edge(prev, node.index)
            if command.is_read:
                # Barrier in: a condition observes the home *after*
                # everything already requested.
                for earlier in self.nodes[:node.index]:
                    self._edge(earlier.index, node.index)
                last_barrier = node.index
            elif last_barrier is not None:
                # Barrier out: commands after a condition are gated on it.
                self._edge(last_barrier, node.index)
            last_on_device[command.device_id] = node.index

    def _edge(self, before: int, after: int) -> None:
        if before != after and before not in self.nodes[after].deps:
            self.nodes[after].deps.add(before)
            self.nodes[before].dependents.append(after)

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def ready_indexes(self) -> List[int]:
        """READY nodes in deterministic (program) order."""
        return [node.index for node in self.nodes
                if node.state is NodeState.READY]

    def all_done(self) -> bool:
        return not self._open

    def remaining(self) -> int:
        return len(self._open)

    def width(self) -> int:
        """Maximum theoretical concurrency: the largest level of the
        DAG under longest-path leveling."""
        level: Dict[int, int] = {}
        for node in self.nodes:     # indexes are topologically sorted
            level[node.index] = 1 + max(
                (level[d] for d in node.deps), default=-1)
        if not level:
            return 0
        counts: Dict[int, int] = {}
        for depth in level.values():
            counts[depth] = counts.get(depth, 0) + 1
        return max(counts.values())

    def critical_path_s(self) -> float:
        """Ideal makespan: the longest dependency chain by duration."""
        finish: Dict[int, float] = {}
        for node in self.nodes:
            start = max((finish[d] for d in node.deps), default=0.0)
            finish[node.index] = start + node.command.duration
        return max(finish.values(), default=0.0)

    # -- snapshot / restore (durability contract) -------------------------------

    def snapshot(self) -> dict:
        """Per-node lifecycle image (edges are recomputed on restore —
        they are a pure function of the command list and strategy)."""
        return {
            "strategy": self.strategy,
            "nodes": [{"index": node.index, "state": node.state.value,
                       "ready_at": node.ready_at,
                       "issued_at": node.issued_at}
                      for node in self.nodes],
        }

    def restore(self, snapshot: dict) -> None:
        """Re-apply a :meth:`snapshot` onto a plan compiled from the
        same command list and strategy."""
        if snapshot["strategy"] != self.strategy:
            raise ValueError(
                f"snapshot strategy {snapshot['strategy']!r} does not "
                f"match plan strategy {self.strategy!r}")
        if len(snapshot["nodes"]) != len(self.nodes):
            raise ValueError("snapshot node count mismatch")
        self._open = set()
        for entry in snapshot["nodes"]:
            node = self.nodes[entry["index"]]
            node.state = NodeState(entry["state"])
            node.ready_at = entry["ready_at"]
            node.issued_at = entry["issued_at"]
            if node.state is not NodeState.DONE:
                self._open.add(node.index)

    # -- lifecycle ------------------------------------------------------------

    def mark_issued(self, index: int, now: float = 0.0) -> float:
        """READY → ISSUED; returns seconds spent ready-but-blocked."""
        node = self.nodes[index]
        if node.state is not NodeState.READY:
            raise ValueError(f"node {index} is {node.state.value}, "
                             "not ready")
        node.state = NodeState.ISSUED
        node.issued_at = now
        return max(0.0, now - node.ready_at)

    def mark_done(self, index: int, now: float = 0.0) -> List[int]:
        """ISSUED → DONE; promotes dependents, returns the newly READY."""
        node = self.nodes[index]
        node.state = NodeState.DONE
        self._open.discard(index)
        newly_ready: List[int] = []
        for dep_index in node.dependents:
            dependent = self.nodes[dep_index]
            if dependent.state is not NodeState.PENDING:
                continue
            if all(self.nodes[d].state is NodeState.DONE
                   for d in dependent.deps):
                dependent.state = NodeState.READY
                dependent.ready_at = now
                newly_ready.append(dep_index)
        return sorted(newly_ready)


def compile_plan(commands: Sequence[Command],
                 strategy: str = "serial") -> CommandPlan:
    """Convenience constructor (mirrors ``CommandPlan(...)``)."""
    return CommandPlan(commands, strategy=strategy)
