"""Policy-agnostic execution core.

The controllers in :mod:`repro.core` are *policies*: they decide when a
routine is admitted, how long locks are held and what happens at finish
and failure points.  Everything mechanical about actually running a
routine's commands lives here:

* :mod:`~repro.core.execution.locks` — a centralized :class:`LockTable`
  (shared/exclusive device locks, FIFO waiters, wait-for-graph cycle
  detection with deterministic victim selection, leniency-scaled lease
  expiry), extracted from the lock/lease bookkeeping the GSV/PSV/EV
  controllers used to re-implement individually;
* :mod:`~repro.core.execution.plan` — :class:`CommandPlan`, the
  compiler from a routine's command list to a dependency DAG (the
  ``serial`` strategy is a chain; ``parallel`` keeps program order per
  device and lets disjoint devices proceed concurrently);
* :mod:`~repro.core.execution.queues` — :class:`DeviceQueues`, a
  per-device FIFO of in-flight executions so the driver and failure
  detector always observe one writer at a time per device;
* :mod:`~repro.core.execution.engine` — :class:`PlanExecutionMixin`,
  the shared driver that walks a plan under either strategy.
"""

from repro.core.execution.engine import PlanExecutionMixin
from repro.core.execution.locks import (LockGrant, LockMode, LockTable,
                                        lease_deadline)
from repro.core.execution.plan import (CommandPlan, NodeState, PlanNode,
                                       compile_plan)
from repro.core.execution.queues import DeviceQueues

__all__ = [
    "CommandPlan", "DeviceQueues", "LockGrant", "LockMode", "LockTable",
    "NodeState", "PlanExecutionMixin", "PlanNode", "compile_plan",
    "lease_deadline",
]
