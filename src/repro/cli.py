"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figures [NAME ...]`` — regenerate one or all paper figures and
  print their data tables (fig01, fig02, fig12a, fig12b, fig13, fig14,
  fig15ab, fig15c, fig15d, fig16, fig16d, fig17).
* ``scenario NAME --model M`` — run one trace scenario and report.
* ``export-trace NAME PATH`` — write a scenario to a trace JSON file.
* ``run-trace PATH --model M`` — run a trace file under a model.
* ``ablations`` — run the design-choice ablation sweeps.
* ``fleet --homes N --seed S`` — simulate a fleet of N independent
  homes across a worker pool and print deterministic aggregate
  metrics JSON (see :mod:`repro.fleet`); ``--plan fleet.json`` loads
  settings from a plan file (flags override), ``--dump-plan`` prints
  the effective plan.
* ``fleet-ops apply --plan plan.json`` — drive the fleet control
  plane from a versioned ``repro-fleet-plan/1`` file: cohort
  assignment, live visibility-model migration, supervised restarts
  under hub-crash chaos, canary comparison with auto-rollback, all
  journaled to a deterministic ops log (``fleet-ops status`` reads it
  back; see docs/control-plane.md).
* ``crash-recovery`` — run the hub-crash chaos workload on a durable
  hub: crash at seeded points (or ``--crash-at`` / ``--crash-event``),
  recover from checkpoint + WAL, and compare the final report against
  an uninterrupted run (see docs/durability.md); ``--wal-dir`` puts
  the WAL on disk as segmented CRC-framed files.
* ``fsck PATH`` — verify a durable artifact (segmented home WAL dir
  or merged fleet spool): classify clean / crash-consistent torn tail
  / corrupt, replay-verify the survivors, and with ``--salvage`` cut a
  corrupt log at its last good checkpoint and rebuild an oracle-clean
  home.  Exit 0 healthy, 1 damage corrected, 2 damage uncorrected.
* ``bench`` — run registered benchmark suites through the unified
  harness, write the merged ``BENCH_summary.json`` and optionally gate
  events/sec against a checked-in baseline (see docs/benchmarks.md).
* ``hunt`` — adversarial search over generated scenarios
  (:mod:`repro.workloads.synth`): seeded random + hill-climbing
  mutation maximizing incongruence/abort/lock-wait pressure per
  visibility model, oracle-checked, emitting a deterministic JSON
  corpus of worst-found scenarios (see docs/scenario-synthesis.md).
* ``serve`` — run the hub as a long-lived service: N tenants submit
  closed-loop against live homes under real-time pacing
  (``--speedup``), bounded fair admission queues and streaming SLO
  metrics (``--json-status``, ``GET /status``); ``--speedup inf``
  runs virtual-paced and byte-deterministic (see docs/serving.md).
"""

import argparse
import sys
from typing import Callable, Dict, List

from repro.experiments import figures as fig_mod
from repro.experiments.report import print_table
from repro.experiments.runner import ExperimentSetup, run_workload
from repro.workloads.fanout import fanout_scenario
from repro.workloads.scenarios import (factory_scenario, morning_scenario,
                                       party_scenario)

_SCENARIOS = {
    "morning": morning_scenario,
    "party": party_scenario,
    "factory": factory_scenario,
    "fanout": fanout_scenario,
}


def _figure_registry(trials: int) -> Dict[str, Callable[[], None]]:
    def show(title, rows):
        print_table(title, rows)

    return {
        "fig01": lambda: show("Fig 1", fig_mod.fig01_weak_visibility(
            trials=trials)),
        "fig02": lambda: show("Fig 2", fig_mod.fig02_example()),
        "fig12a": lambda: show("Fig 12a", fig_mod.fig12a_scenarios(
            trials=max(3, trials // 4))),
        "fig12b": lambda: show("Fig 12b",
                               fig_mod.fig12b_final_incongruence(
                                   runs=max(20, trials))),
        "fig13": lambda: [show(f"Fig 13 ({key})", rows) for key, rows
                          in fig_mod.fig13_failures(
                              trials=max(2, trials // 5)).items()],
        "fig14": lambda: show("Fig 14", fig_mod.fig14_schedulers(
            trials=max(2, trials // 5))),
        "fig15ab": lambda: show("Fig 15a/b", fig_mod.fig15ab_leasing(
            trials=max(2, trials // 5))),
        "fig15c": lambda: show("Fig 15c", [
            {k: v for k, v in row.items() if k != "cdf"}
            for row in fig_mod.fig15c_stretch(
                trials=max(2, trials // 5))]),
        "fig15d": lambda: show("Fig 15d", fig_mod.fig15d_insertion_time()),
        "fig16": lambda: show("Fig 16a-c", fig_mod.fig16_routine_size(
            trials=max(2, trials // 5))),
        "fig16d": lambda: show("Fig 16d", fig_mod.fig16d_popularity(
            trials=max(2, trials // 5))),
        "fig17": lambda: [show(f"Fig 17 ({key})", rows) for key, rows
                          in fig_mod.fig17_long_routines(
                              trials=max(2, trials // 5)).items()],
    }


def cmd_figures(args: argparse.Namespace) -> int:
    registry = _figure_registry(args.trials)
    names = args.names or sorted(registry)
    unknown = [name for name in names if name not in registry]
    if unknown:
        print(f"unknown figures: {unknown}; "
              f"available: {sorted(registry)}", file=sys.stderr)
        return 2
    for name in names:
        registry[name]()
    return 0


def _report_json(report) -> str:
    """Deterministic JSON for one scenario report (determinism gate)."""
    import json

    payload = dict(report.row())
    payload["serial_order"] = list(report.serial_order)
    payload["lock_wait_p50"] = round(report.lock_wait.get("p50", 0.0), 6)
    payload["lock_wait_mean"] = round(report.lock_wait.get("mean", 0.0), 6)
    payload["plan_makespan_p50"] = round(
        report.plan_makespan.get("p50", 0.0), 6)
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def cmd_scenario(args: argparse.Namespace) -> int:
    factory = _SCENARIOS.get(args.name)
    if factory is None:
        print(f"unknown scenario {args.name!r}; "
              f"available: {sorted(_SCENARIOS)}", file=sys.stderr)
        return 2
    workload = factory(seed=args.seed)
    setup = ExperimentSetup(model=args.model, scheduler=args.scheduler,
                            execution=args.execution,
                            seed=args.seed, check_final=False)
    _result, report, _controller = run_workload(workload, setup)
    print_table(f"{args.name} under {args.model}", [report.row()])
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(_report_json(report))
    return 0


def cmd_export_trace(args: argparse.Namespace) -> int:
    from repro.workloads.traces import save_workload

    factory = _SCENARIOS.get(args.name)
    if factory is None:
        print(f"unknown scenario {args.name!r}", file=sys.stderr)
        return 2
    save_workload(factory(seed=args.seed), args.path)
    print(f"wrote {args.name} trace to {args.path}")
    return 0


def cmd_run_trace(args: argparse.Namespace) -> int:
    from repro.workloads.traces import load_workload

    workload = load_workload(args.path)
    setup = ExperimentSetup(model=args.model, scheduler=args.scheduler,
                            execution=args.execution,
                            seed=args.seed, check_final=False)
    _result, report, _controller = run_workload(workload, setup)
    print_table(f"{workload.name} under {args.model}", [report.row()])
    return 0


def _fleet_plan_section(path: str) -> Dict[str, object]:
    """The ``fleet`` section of a plan file.

    Accepts either a full ``repro-fleet-plan/1`` document (validated
    through :class:`~repro.fleet.control.plan.FleetPlan`) or a bare
    fleet dict such as ``{"homes": 100, "seed": 42}``.
    """
    import json

    from repro.errors import PlanError
    from repro.fleet.control.plan import FleetPlan

    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise PlanError(f"{path}: plan must be a JSON object")
    if "version" in data or "fleet" in data:
        return FleetPlan.from_dict(data).fleet
    return data


def _fleet_overrides(args: argparse.Namespace) -> Dict[str, object]:
    """The FleetConfig fields the user set explicitly on the CLI.

    Every fleet flag defaults to ``None`` (unset), so the effective
    config layers dataclass defaults <- ``--plan`` <- explicit flags.
    """
    from repro.errors import PlanError

    overrides: Dict[str, object] = {}
    for flag in ("homes", "seed", "scenario", "model", "scheduler",
                 "execution", "backend", "chunk", "aggregate",
                 "crashes", "recovery", "transport", "pin", "wal_dir"):
        value = getattr(args, flag)
        if value is not None:
            overrides[flag] = value
    if args.mix:
        overrides["mix"] = tuple(args.mix.split(","))
    if args.workers is not None:
        raw = str(args.workers).strip().lower()
        if raw == "auto":
            overrides["workers"] = 0   # 0 = one per CPU (capped at homes)
        else:
            try:
                overrides["workers"] = int(raw)
            except ValueError:
                raise PlanError(f"--workers must be an integer or "
                                f"'auto', got {args.workers!r}")
    if args.exact:
        overrides["aggregate"] = "exact"
    if args.no_check_final:
        overrides["check_final"] = False
    return overrides


def cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from repro.errors import PlanError
    from repro.fleet import FleetConfig, FleetEngine

    try:
        fleet = _fleet_plan_section(args.plan) if args.plan else {}
        config = FleetConfig.from_plan(fleet, **_fleet_overrides(args))
    except (PlanError, OSError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.dump_plan:
        sys.stdout.write(json.dumps(config.to_plan(), sort_keys=True,
                                    indent=2) + "\n")
        return 0
    try:
        engine = FleetEngine(config)
        result = engine.run()
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    text = result.to_json(per_home=args.per_home) + "\n"
    sys.stdout.write(text)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(text)
    if args.stats:
        print(f"simulated {len(result.rows)} homes in "
              f"{result.elapsed_s:.2f}s wall "
              f"({result.homes_per_second:.1f} homes/sec, "
              f"backend={config.backend}, "
              f"workers={engine.pool_workers()})", file=sys.stderr)
    return 0


def cmd_fleet_ops_apply(args: argparse.Namespace) -> int:
    from repro.errors import PlanError
    from repro.fleet.control import ControlLoop, load_plan

    try:
        plan = load_plan(args.plan)
        result = ControlLoop(plan).run()
    except (PlanError, OSError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.ops_log:
        result.ops.save(args.ops_log)
    text = result.to_json(per_home=args.per_home) + "\n"
    sys.stdout.write(text)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(text)
    restarts = sum(row.get("restarts", 0) for row in result.rows)
    print(f"applied {args.plan}: {len(result.rows)} homes, "
          f"{len(result.migrated_homes)} migrated, "
          f"{restarts} restarts, rolled_back={result.rolled_back}, "
          f"{len(result.ops)} ops journaled", file=sys.stderr)
    if not result.ok:
        print(f"FAIL: {len(result.failed_homes)} abandoned home(s), "
              f"{result.oracle_violations} congruence-oracle "
              f"violation(s)", file=sys.stderr)
        return 1
    return 0


def cmd_fleet_ops_status(args: argparse.Namespace) -> int:
    from repro.fleet.control import OpsLog

    try:
        log = OpsLog.load(args.ops_log)
    except (OSError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    counts = log.counts()
    print_table(f"ops log: {args.ops_log} ({len(log)} entries)",
                [{"op": op, "count": counts[op]} for op in sorted(counts)])
    for entry in log:
        if entry.get("op") == "complete":
            print(f"complete: homes={entry.get('homes')} "
                  f"migrated={entry.get('migrated')} "
                  f"restarts={entry.get('restarts')} "
                  f"failed={len(entry.get('failed', []))} "
                  f"oracle_ok={entry.get('oracle_ok')} "
                  f"rolled_back={entry.get('rolled_back')}",
                  file=sys.stderr)
    return 0


def cmd_crash_recovery(args: argparse.Namespace) -> int:
    from repro.metrics.recovery import recovery_wall_summary
    from repro.workloads.chaos import run_chaos

    if args.crash_at is not None and args.crash_event is not None:
        print("--crash-at and --crash-event are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.crash_event is not None and args.crash_event < 1:
        print("--crash-event must be >= 1", file=sys.stderr)
        return 2
    try:
        result = run_chaos(
            model=args.model, execution=args.execution or "serial",
            seed=args.seed, crashes=args.crashes, recovery=args.recovery,
            checkpoint_every=args.checkpoint_every,
            crash_at=args.crash_at, crash_event=args.crash_event,
            scenario=args.scenario or None,
            wal_dir=args.wal_dir or None)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    rows = [dict(recovery, congruent=result.congruent)
            for recovery in result.recoveries] or \
        [{"congruent": result.congruent, "mode": result.recovery_mode}]
    print_table(
        f"hub crash-recovery: {args.model}/{result.execution} "
        f"({result.recovery_mode} mode)",
        [{key: row.get(key) for key in
          ("mode", "crash_events", "replayed_events", "replayed_records",
           "checkpoints_verified", "resumed", "aborted", "congruent")}
         for row in rows])
    walls = recovery_wall_summary(result.recovery_wall_s)
    print(f"recovery wall-clock: mean {walls['mean'] * 1e3:.2f} ms, "
          f"max {walls['max'] * 1e3:.2f} ms over {walls['n']} recoveries",
          file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(result.to_json() + "\n")
    if args.recovery == "replay" and not result.congruent:
        print("FAIL: replay recovery diverged from the uninterrupted run",
              file=sys.stderr)
        return 1
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    from repro.errors import CorruptionError, SafeHomeError
    from repro.hub.durability.fsck import fsck_path

    try:
        report = fsck_path(args.path, salvage=args.salvage)
    except CorruptionError as error:
        # Structurally unreadable before a report could be built
        # (e.g. an unparseable fleet index): uncorrected damage.
        print(f"fsck: {error}", file=sys.stderr)
        return 2
    except (SafeHomeError, OSError, ValueError) as error:
        print(f"fsck: {error}", file=sys.stderr)
        return 2
    text = report.to_json() + "\n"
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(text)
    if args.json or not args.report:
        sys.stdout.write(text)
    code = report.exit_code()
    label = {0: "healthy", 1: "damage corrected (salvaged)",
             2: "damage NOT corrected"}[code]
    print(f"fsck {args.path}: status={report.status} "
          f"exit={code} ({label})", file=sys.stderr)
    return code


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench import registry, runner
    from repro.bench.registry import BenchError
    from repro.bench.suites import load_builtin_suites

    if args.list:
        load_builtin_suites()
        for spec in registry.select(suite=args.suite,
                                    pattern=args.filter or None):
            print(f"{spec.name:24s} [{spec.suite}] {spec.description}")
        return 0
    try:
        summary = runner.run_suite(
            suite=args.suite, pattern=args.filter or None,
            warmup=args.warmup, repeats=args.repeats,
            baseline_path=args.baseline or None,
            tolerance=args.tolerance,
            progress=lambda line: print(line, file=sys.stderr))
    except BenchError as error:
        print(str(error), file=sys.stderr)
        return 2
    results = runner.summary_results(summary)
    print_table(f"bench suite={args.suite}"
                + (f" filter={args.filter}" if args.filter else ""),
                [result.row() for result in results])
    comparison = summary.get("baseline")
    if comparison:
        print_table(f"baseline: {comparison['path']} "
                    f"(tolerance {comparison['tolerance']:.0%})",
                    comparison["rows"])
    if args.json:
        runner.write_summary(summary, args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    if args.update_baseline:
        from repro.bench import load_baseline, make_baseline

        extra = {}
        old = None
        try:
            # Preserve the recorded optimization-pass tables and the
            # floors of benchmarks outside this (possibly filtered) run.
            old = load_baseline(args.update_baseline)
            for table in ("hotpath_pass", "fleet_pass", "scaling_mp"):
                if table in old:
                    extra[table] = old[table]
        except (OSError, BenchError):
            pass
        payload = make_baseline(results, extra=extra, merge_into=old)
        with open(args.update_baseline, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"updated baseline {args.update_baseline}", file=sys.stderr)
    if not summary["ok"]:
        print("FAIL: benchmark regression vs baseline "
              f"{comparison['path']}", file=sys.stderr)
        return 1
    return 0


def cmd_hunt(args: argparse.Namespace) -> int:
    from repro.workloads.synth import (HUNT_MODELS, OBJECTIVES,
                                       corpus_to_json, hunt_corpus)

    models = tuple(args.model.split(",")) if args.model != "all" \
        else HUNT_MODELS
    unknown = [m for m in models if m not in HUNT_MODELS]
    if unknown:
        print(f"unknown models {unknown}; pick from {list(HUNT_MODELS)} "
              "or 'all'", file=sys.stderr)
        return 2
    if args.objective not in OBJECTIVES:
        print(f"unknown objective {args.objective!r}; "
              f"pick from {sorted(OBJECTIVES)}", file=sys.stderr)
        return 2
    corpus = hunt_corpus(models, objective=args.objective,
                         seed=args.seed, budget=args.budget,
                         execution=args.execution or "serial")
    print_table(
        f"hunt: objective={args.objective} seed={args.seed} "
        f"budget={args.budget}",
        [{"model": model,
          "score": entry["best"]["score"],
          "found_at": entry["best"]["found_at"],
          "routines": entry["best"]["spec"]["routines"],
          "devices": entry["best"]["spec"]["devices"],
          "violations": entry["oracle_violations"]}
         for model, entry in corpus["models"].items()])
    for model, entry in corpus["models"].items():
        print(f"{model}: {entry['best']['scenario']}", file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(corpus_to_json(corpus) + "\n")
    if corpus["oracle_violations"]:
        print(f"FAIL: {corpus['oracle_violations']} congruence-oracle "
              "violations — a visibility model broke an invariant",
              file=sys.stderr)
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import math

    from repro.errors import ServeError
    from repro.serve import (ServeConfig, ServeHub, StatusServer,
                             ThreadedClient, build_serve_home,
                             parse_speedup, run_closed_loop)
    from repro.sim.random import derive_seed

    try:
        speedup = parse_speedup(args.speedup)
        config = ServeConfig(speedup=speedup,
                             queue_capacity=args.queue_capacity,
                             window_s=args.window)
        homes = {
            f"home-{i}": build_serve_home(
                model=args.model, scheduler=args.scheduler,
                execution=args.execution,
                seed=derive_seed(args.seed, f"home-{i}"))
            for i in range(args.homes)}
        hub = ServeHub(homes, config)
        weights = [int(w) for w in args.weights.split(",")] \
            if args.weights else [1]
        for i in range(args.tenants):
            hub.add_tenant(f"t{i}", weight=weights[i % len(weights)])
    except (ServeError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2

    status_server = None
    if args.port >= 0:
        status_server = StatusServer(hub, port=args.port)
        status_server.start()
        print(f"status: http://127.0.0.1:{status_server.port}/status",
              file=sys.stderr)
    try:
        if math.isinf(speedup):
            # Virtual-paced: inline, single-threaded, deterministic.
            run_closed_loop(hub, per_tenant=args.routines,
                            seed=args.seed)
        else:
            hub.start()
            clients = [ThreadedClient(hub, f"t{i}", count=args.routines,
                                      seed=args.seed)
                       for i in range(args.tenants)]
            for client in clients:
                client.start()
            for client in clients:
                client.join()
            hub.shutdown(drain=True, timeout=60.0)
            for client in clients:
                if client.error is not None:
                    raise client.error
    finally:
        if status_server is not None:
            status_server.stop()

    status = hub.status(include_wall=not math.isinf(speedup))
    label = "inf" if math.isinf(speedup) else f"{speedup:g}"
    print_table(
        f"serve: {args.model} x{args.homes} home(s), "
        f"{args.tenants} tenant(s), speedup={label}",
        [dict({"tenant": name}, **{
            key: row[key] for key in
            ("home", "weight", "admitted", "rejected", "committed",
             "aborted", "max_depth", "abort_rate")})
         for name, row in status["tenants"].items()])
    latency = status["latency"]["total"]
    print(f"latency (virtual s): n={latency['n']} "
          f"p50={latency['p50']:.3f} p95={latency['p95']:.3f} "
          f"p99={latency['p99']:.3f}", file=sys.stderr)
    if "wall" in status:
        print(f"wall: {status['wall']['elapsed_s']:.2f}s elapsed, "
              f"{status['wall']['behind_s']:.3f}s behind schedule, "
              f"{status['wall']['clock_regressions']} clock regressions",
              file=sys.stderr)
    if args.json_status:
        with open(args.json_status, "w", encoding="utf-8") as handle:
            handle.write(hub.status_json() + "\n")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(hub.final_report_json())
    if args.check_oracle:
        violations = sum(len(report.violations)
                         for report in hub.oracle_reports().values())
        if violations:
            print(f"FAIL: {violations} congruence-oracle violation(s) "
                  "in the served run", file=sys.stderr)
            return 1
    return 0


def cmd_ablations(args: argparse.Namespace) -> int:
    from repro.experiments import ablations

    print_table("Leniency factor (noisy estimates)",
                ablations.ablate_leniency(trials=args.trials))
    print_table("Duration-estimate error (Timeline)",
                ablations.ablate_estimate_error(trials=args.trials))
    print_table("Failure-detector ping period",
                ablations.ablate_detector_period(trials=args.trials))
    print_table("Network jitter vs WV incongruence",
                ablations.ablate_network_jitter())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SafeHome reproduction (EuroSys 2021) experiment CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("names", nargs="*")
    figures.add_argument("--trials", type=int, default=20)
    figures.set_defaults(func=cmd_figures)

    scenario = sub.add_parser("scenario", help="run one trace scenario")
    scenario.add_argument("name")
    scenario.add_argument("--model", default="ev")
    scenario.add_argument("--scheduler", default="timeline")
    scenario.add_argument("--execution", default=None,
                          choices=("serial", "parallel"),
                          help="command-plan strategy (default: serial)")
    scenario.add_argument("--seed", type=int, default=0)
    scenario.add_argument("--json", default="",
                          help="write the report JSON to this path "
                               "(deterministic; used by the CI gate)")
    scenario.set_defaults(func=cmd_scenario)

    export = sub.add_parser("export-trace", help="write a scenario trace")
    export.add_argument("name")
    export.add_argument("path")
    export.add_argument("--seed", type=int, default=0)
    export.set_defaults(func=cmd_export_trace)

    run_trace = sub.add_parser("run-trace", help="run a trace file")
    run_trace.add_argument("path")
    run_trace.add_argument("--model", default="ev")
    run_trace.add_argument("--scheduler", default="timeline")
    run_trace.add_argument("--execution", default=None,
                           choices=("serial", "parallel"))
    run_trace.add_argument("--seed", type=int, default=0)
    run_trace.set_defaults(func=cmd_run_trace)

    ablate = sub.add_parser("ablations", help="design-choice sweeps")
    ablate.add_argument("--trials", type=int, default=4)
    ablate.set_defaults(func=cmd_ablations)

    crash = sub.add_parser(
        "crash-recovery",
        help="crash the hub mid-run and recover from checkpoint + WAL")
    crash.add_argument("--model", default="ev")
    crash.add_argument("--execution", default=None,
                       choices=("serial", "parallel"),
                       help="command-plan strategy (default: serial)")
    crash.add_argument("--seed", type=int, default=0)
    crash.add_argument("--crashes", type=int, default=2,
                       help="seeded crash points per run (default: 2)")
    crash.add_argument("--crash-at", type=float, default=None,
                       help="single crash at this virtual time "
                            "(overrides --crashes)")
    crash.add_argument("--crash-event", type=int, default=None,
                       help="single crash after this many simulator "
                            "events (overrides --crashes)")
    crash.add_argument("--recovery", default="replay",
                       choices=("replay", "policy"),
                       help="in-flight routine handling on recovery "
                            "(default: replay)")
    crash.add_argument("--checkpoint-every", type=int, default=32,
                       help="observation records per checkpoint "
                            "(default: 32)")
    crash.add_argument("--scenario", default="",
                       help="run a generated 'synth:...' scenario "
                            "(e.g. from a hunt corpus) instead of the "
                            "evening scene")
    crash.add_argument("--json", default="",
                       help="write the deterministic chaos summary "
                            "JSON to this path")
    crash.add_argument("--wal-dir", default="",
                       help="write the crashing home's WAL to segmented "
                            "CRC-framed files in this directory "
                            "(inspect afterwards with 'repro fsck')")
    crash.set_defaults(func=cmd_crash_recovery)

    fsck = sub.add_parser(
        "fsck",
        help="verify (and optionally salvage) a durable WAL artifact: "
             "a segmented home WAL dir or a merged fleet spool")
    fsck.add_argument("path",
                      help="home WAL directory (wal-*.seg), fleet spool "
                           "directory, or a fleet-wal.jsonl path")
    fsck.add_argument("--salvage", action="store_true",
                      help="on corruption, cut the log at its last good "
                           "checkpoint, replay the surviving prefix and "
                           "verify it against the congruence oracle")
    fsck.add_argument("--report", default="",
                      help="write the deterministic repro-fsck-report/1 "
                           "JSON to this path instead of stdout")
    fsck.add_argument("--json", action="store_true",
                      help="print the report JSON to stdout even when "
                           "--report is given")
    fsck.set_defaults(func=cmd_fsck)

    hunt = sub.add_parser(
        "hunt",
        help="adversarial search for each model's worst generated "
             "scenarios (oracle-checked)")
    hunt.add_argument("--model", default="all",
                      help="comma-separated visibility models, or 'all' "
                           "(default: all)")
    hunt.add_argument("--objective", default="incongruence",
                      choices=("incongruence", "aborts", "lock_wait"),
                      help="pressure metric the search maximizes "
                           "(default: incongruence)")
    hunt.add_argument("--seed", type=int, default=0,
                      help="search seed; same seed + budget => "
                           "byte-identical corpus (default: 0)")
    hunt.add_argument("--budget", type=int, default=50,
                      help="evaluations per model (default: 50)")
    hunt.add_argument("--execution", default=None,
                      choices=("serial", "parallel"),
                      help="command-plan strategy (default: serial)")
    hunt.add_argument("--json", default="",
                      help="write the worst-found corpus JSON to this "
                           "path")
    hunt.set_defaults(func=cmd_hunt)

    bench = sub.add_parser(
        "bench", help="run benchmark suites through the unified harness")
    bench.add_argument("--suite", default="smoke",
                       choices=("smoke", "scale", "full"),
                       help="benchmark suite (default: smoke); 'scale' "
                            "holds the multi-core scaling measurements")
    bench.add_argument("--filter", default="",
                       help="glob/substring filter on benchmark names")
    bench.add_argument("--warmup", type=int, default=1,
                       help="untimed warmup iterations (default: 1)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timed iterations; wall time is their "
                            "minimum (default: 3)")
    bench.add_argument("--json", default="",
                       help="write the merged summary JSON to this path")
    bench.add_argument("--baseline", default="",
                       help="compare events/sec + homes/sec against "
                            "this baseline JSON (exit 1 on regression)")
    bench.add_argument("--tolerance", type=float, default=0.25,
                       help="allowed fractional drop below the baseline "
                            "before failing (default: 0.25)")
    bench.add_argument("--update-baseline", default="",
                       help="rewrite this baseline file from the "
                            "measured results")
    bench.add_argument("--list", action="store_true",
                       help="list the selected benchmarks and exit")
    bench.set_defaults(func=cmd_bench)

    fleet = sub.add_parser(
        "fleet", help="simulate N independent homes concurrently")
    fleet.add_argument("--plan", default="",
                       help="load fleet settings from this JSON file — a "
                            "full repro-fleet-plan/1 document (its "
                            "'fleet' section is used) or a bare fleet "
                            "dict; explicit flags override the plan")
    fleet.add_argument("--dump-plan", action="store_true",
                       help="print the effective fleet plan JSON "
                            "(defaults <- --plan <- flags) and exit")
    fleet.add_argument("--homes", type=int, default=None,
                       help="fleet size (default: 10)")
    fleet.add_argument("--seed", type=int, default=None,
                       help="master seed, split per home (default: 0)")
    fleet.add_argument("--scenario", default=None,
                       help="'mix' or one fleet scenario name "
                            "(default: mix)")
    fleet.add_argument("--mix", default="",
                       help="comma-separated scenario cycle for "
                            "--scenario mix")
    fleet.add_argument("--model", default=None,
                       help="visibility model (default: ev)")
    fleet.add_argument("--scheduler", default=None,
                       help="scheduler (default: timeline)")
    fleet.add_argument("--execution", default=None,
                       choices=("serial", "parallel"),
                       help="per-home command-plan strategy "
                            "(default: serial)")
    fleet.add_argument("--backend", default=None,
                       choices=("serial", "thread", "process"),
                       help="worker pool type (default: serial)")
    fleet.add_argument("--workers", default=None,
                       help="pool size; 0 or 'auto' = one per CPU "
                            "(default: 0)")
    fleet.add_argument("--chunk", type=int, default=None,
                       help="homes per dispatch chunk; 0 = homes/workers "
                            "rounded up (amortizes IPC; smaller chunks "
                            "stream better)")
    fleet.add_argument("--aggregate", default=None,
                       choices=("exact", "stream"),
                       help="'exact' pools raw latency samples in the "
                            "parent (byte-stable default); 'stream' "
                            "merges per-chunk histogram accumulators "
                            "(percentiles within 1 ms)")
    fleet.add_argument("--exact", action="store_true",
                       help="force exact pooled-percentile aggregation "
                            "(the default; overrides --aggregate)")
    fleet.add_argument("--transport", default=None,
                       choices=("pickle", "shm"),
                       help="how streaming partials reach the parent: "
                            "'pickle' through the pool result channel, "
                            "'shm' struct-packed into preallocated "
                            "shared-memory slabs (needs --aggregate "
                            "stream)")
    fleet.add_argument("--pin", default=None,
                       choices=("none", "spread"),
                       help="CPU affinity for process workers: 'spread' "
                            "pins one worker per CPU round-robin; no-op "
                            "where unsupported (default: none)")
    fleet.add_argument("--wal-dir", default=None,
                       help="spool per-home WALs to worker-local segment "
                            "files in this directory and merge them into "
                            "an indexed fleet-wal.jsonl (forces durable "
                            "homes)")
    fleet.add_argument("--crashes", type=int, default=None,
                       help="hub crashes per home at seeded times "
                            "(default: 0 = no chaos)")
    fleet.add_argument("--recovery", default=None,
                       choices=("replay", "policy"),
                       help="hub recovery mode when --crashes > 0")
    fleet.add_argument("--per-home", action="store_true",
                       help="include per-home rows in the JSON")
    fleet.add_argument("--no-check-final", action="store_true",
                       help="skip the final-incongruence check (faster)")
    fleet.add_argument("--json", default="",
                       help="also write the JSON to this path")
    fleet.add_argument("--stats", action="store_true",
                       help="print wall-clock homes/sec to stderr")
    fleet.set_defaults(func=cmd_fleet)

    fleet_ops = sub.add_parser(
        "fleet-ops",
        help="fleet control plane: apply versioned plans (live "
             "migration, supervision, canaries) and inspect ops logs")
    ops_sub = fleet_ops.add_subparsers(dest="ops_command", required=True)

    ops_apply = ops_sub.add_parser(
        "apply",
        help="execute a repro-fleet-plan/1 file through the control "
             "loop; exit 1 on oracle violations or abandoned homes")
    ops_apply.add_argument("--plan", required=True,
                           help="repro-fleet-plan/1 JSON file "
                                "(the only way to drive fleet ops)")
    ops_apply.add_argument("--ops-log", default="",
                           help="write the deterministic JSONL ops "
                                "journal to this path (the CI control "
                                "gate cmp's two runs)")
    ops_apply.add_argument("--json", default="",
                           help="also write the result JSON to this path")
    ops_apply.add_argument("--per-home", action="store_true",
                           help="include per-home rows in the JSON")
    ops_apply.set_defaults(func=cmd_fleet_ops_apply)

    ops_status = ops_sub.add_parser(
        "status", help="summarize a saved ops log")
    ops_status.add_argument("--ops-log", required=True,
                            help="JSONL ops journal written by apply")
    ops_status.set_defaults(func=cmd_fleet_ops_status)

    serve = sub.add_parser(
        "serve",
        help="run the hub as a long-lived multi-tenant service with "
             "real-time pacing, admission control and SLO metrics")
    serve.add_argument("--model", default="ev")
    serve.add_argument("--scheduler", default="timeline")
    serve.add_argument("--execution", default=None,
                       choices=("serial", "parallel"),
                       help="command-plan strategy (default: serial)")
    serve.add_argument("--seed", type=int, default=0,
                       help="master seed for homes and client picks "
                            "(default: 0)")
    serve.add_argument("--homes", type=int, default=1,
                       help="live homes behind the hub; tenants are "
                            "routed round-robin (default: 1)")
    serve.add_argument("--tenants", type=int, default=4,
                       help="closed-loop client tenants (default: 4)")
    serve.add_argument("--weights", default="",
                       help="comma-separated fair-share weights, cycled "
                            "across tenants (default: all 1)")
    serve.add_argument("--routines", type=int, default=50,
                       help="routines each tenant submits (default: 50)")
    serve.add_argument("--speedup", default="inf",
                       help="virtual seconds per wall second, or 'inf' "
                            "for virtual-paced deterministic serving "
                            "(default: inf)")
    serve.add_argument("--queue-capacity", type=int, default=64,
                       help="per-tenant admission queue bound "
                            "(default: 64)")
    serve.add_argument("--window", type=float, default=60.0,
                       help="rolling SLO window in virtual seconds "
                            "(default: 60)")
    serve.add_argument("--port", type=int, default=-1,
                       help="serve GET /status on this port while "
                            "running (0 = ephemeral; default: off)")
    serve.add_argument("--json", default="",
                       help="write the deterministic final report JSON "
                            "to this path (the determinism gate)")
    serve.add_argument("--json-status", default="",
                       help="write the final SLO status JSON to this "
                            "path (CI artifact)")
    serve.add_argument("--check-oracle", action="store_true",
                       help="fail (exit 1) on any congruence-oracle "
                            "violation in the served run")
    serve.set_defaults(func=cmd_serve)
    return parser


def main(argv: List[str] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
