"""Workload container consumed by the experiment runner."""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.routine import Routine
from repro.devices.failures import FailurePlan


@dataclass
class Workload:
    """A reproducible set of devices, routines and failures.

    Routines arrive either open-loop (``arrivals``: fixed submission
    times) or closed-loop (``streams``: each stream submits its next
    routine when the previous one finishes — the paper's ρ concurrent
    routines).
    """

    name: str
    devices: List[Tuple[str, str]]              # (catalog type, name)
    arrivals: List[Tuple[Routine, float]] = field(default_factory=list)
    streams: List[List[Routine]] = field(default_factory=list)
    failure_plans: List[FailurePlan] = field(default_factory=list)
    horizon_hint: Optional[float] = None        # rough virtual run length
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError(f"workload {self.name!r} has no devices")
        if not self.arrivals and not any(self.streams):
            raise ValueError(f"workload {self.name!r} has no routines")

    @property
    def routine_count(self) -> int:
        return len(self.arrivals) + sum(len(s) for s in self.streams)

    def all_routines(self) -> List[Routine]:
        routines = [routine for routine, _t in self.arrivals]
        for stream in self.streams:
            routines.extend(stream)
        return routines

    def device_count(self) -> int:
        return len(self.devices)


def attach_streams(controller, streams: List[List[Routine]]) -> None:
    """Closed-loop injection: each stream submits its next routine when
    the previous one finishes (the paper's ρ concurrent routines)."""
    cursors = {index: 0 for index in range(len(streams))}
    run_to_stream: Dict[int, int] = {}

    def submit_next(stream_index: int) -> None:
        cursor = cursors[stream_index]
        if cursor >= len(streams[stream_index]):
            return
        cursors[stream_index] = cursor + 1
        run = controller.submit(streams[stream_index][cursor])
        run_to_stream[run.routine_id] = stream_index

    def on_finished(run) -> None:
        stream_index = run_to_stream.get(run.routine_id)
        if stream_index is not None:
            submit_next(stream_index)

    controller.on_routine_finished.append(on_finished)
    for stream_index, stream in enumerate(streams):
        if stream:
            submit_next(stream_index)
