"""Workload trace serialization.

The paper promises to release its trace-derived benchmarks openly; this
module defines the on-disk JSON format so workloads can be exported,
shared and re-imported, and so users can bring their own traces.

Format (one JSON object)::

    {
      "name": "morning",
      "devices": [{"type": "light", "name": "bed1-light"}, ...],
      "arrivals": [{"at": 12.5, "routine": {<Fig-10 routine spec>}}, ...],
      "streams": [[{<routine spec>}, ...], ...],
      "failures": [{"device": "bed1-light", "failAt": 100.0,
                    "restartAt": 160.0}, ...]
    }
"""

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.spec import parse_routine, routine_to_spec
from repro.devices.failures import FailurePlan
from repro.devices.registry import DeviceRegistry
from repro.errors import RoutineSpecError
from repro.workloads.base import Workload


def workload_to_dict(workload: Workload) -> Dict[str, Any]:
    """Serialize a workload to the trace JSON structure."""
    registry = DeviceRegistry()
    for type_name, name in workload.devices:
        registry.create(type_name, name)
    name_of = {device.device_id: device.name for device in registry}

    return {
        "name": workload.name,
        "devices": [{"type": t, "name": n} for t, n in workload.devices],
        "arrivals": [{"at": at,
                      "routine": routine_to_spec(routine, registry)}
                     for routine, at in workload.arrivals],
        "streams": [[routine_to_spec(routine, registry)
                     for routine in stream]
                    for stream in workload.streams],
        "failures": [{"device": name_of[plan.device_id],
                      "failAt": plan.fail_at,
                      **({"restartAt": plan.restart_at}
                         if plan.restart_at is not None else {})}
                     for plan in workload.failure_plans],
        "horizonHint": workload.horizon_hint,
    }


def workload_from_dict(data: Dict[str, Any]) -> Workload:
    """Inverse of :func:`workload_to_dict`."""
    if not isinstance(data, dict):
        raise RoutineSpecError("trace must be a JSON object")
    devices = [(entry["type"], entry["name"])
               for entry in data.get("devices", ())]
    registry = DeviceRegistry()
    for type_name, name in devices:
        registry.create(type_name, name)

    arrivals = [(parse_routine(entry["routine"], registry),
                 float(entry["at"]))
                for entry in data.get("arrivals", ())]
    streams = [[parse_routine(spec, registry) for spec in stream]
               for stream in data.get("streams", ())]
    failures = []
    for entry in data.get("failures", ()):
        device = registry.by_name(entry["device"])
        failures.append(FailurePlan(
            device.device_id, float(entry["failAt"]),
            float(entry["restartAt"]) if "restartAt" in entry else None))
    return Workload(
        name=data.get("name", "trace"),
        devices=devices,
        arrivals=arrivals,
        streams=streams,
        failure_plans=failures,
        horizon_hint=data.get("horizonHint"),
    )


def save_workload(workload: Workload, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(workload_to_dict(workload),
                                     indent=2, sort_keys=True))


def load_workload(path: Union[str, Path]) -> Workload:
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise RoutineSpecError(f"invalid trace JSON in {path}: {exc}") \
            from exc
    return workload_from_dict(data)
