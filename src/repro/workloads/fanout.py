"""Wide fan-out workload: the parallel-execution showcase.

Routines like "movie time" or "leaving home" touch many devices with no
ordering between them — lights in six rooms, every shade, every plug.
Under a serial command chain such a routine's makespan is the *sum* of
its command durations; under the ``parallel`` plan strategy it is the
*maximum*, because the commands form an antichain in the command DAG.

Each routine here touches its own disjoint device group (different
rooms), so the workload is congruent under every visibility model and
isolates intra-routine parallelism: any makespan difference between
``execution="serial"`` and ``execution="parallel"`` comes purely from
the planner, not from inter-routine concurrency policy.
"""

from typing import List, Tuple

from repro.core.command import Command
from repro.core.routine import Routine
from repro.sim.random import RandomStreams
from repro.workloads.base import Workload


def fanout_scenario(seed: int = 0, routines: int = 6, width: int = 8,
                    mean_duration_s: float = 4.0,
                    stagger_s: float = 1.0) -> Workload:
    """``routines`` disjoint wide routines, ``width`` devices each.

    Every command's duration is jittered around ``mean_duration_s`` so
    the parallel makespan is the max (not exactly the mean), and
    arrivals are staggered by ``stagger_s`` so runs overlap without
    conflicting.
    """
    if routines <= 0 or width <= 0:
        raise ValueError("routines and width must be positive")
    rng = RandomStreams(seed=seed).stream("fanout")
    devices: List[Tuple[str, str]] = []
    arrivals: List[Tuple[Routine, float]] = []
    for r in range(routines):
        commands = []
        for w in range(width):
            device_id = len(devices)
            devices.append(("plug", f"fan-{r}-{w}"))
            duration = max(0.5, rng.normalvariate(
                mean_duration_s, mean_duration_s * 0.25))
            commands.append(Command(device_id=device_id, value="ON",
                                    duration=duration))
        routine = Routine(name=f"fanout-{r}", commands=commands,
                          user=f"user-{r % 4}")
        arrivals.append((routine, r * stagger_s))
    horizon = routines * stagger_s + width * mean_duration_s * 2
    return Workload(name="fanout", devices=devices, arrivals=arrivals,
                    horizon_hint=horizon,
                    meta={"routines": routines, "width": width})
