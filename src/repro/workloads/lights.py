"""The Fig 1 workload: two conflicting group routines.

R1 turns ON all lights; R2 turns them all OFF, starting ``offset``
seconds after R1.  Under Weak Visibility, per-command network jitter
interleaves the two write streams and the end state is frequently
neither all-ON nor all-OFF — the paper's motivating experiment with
TP-Link devices.
"""

from repro.core.command import Command
from repro.core.routine import Routine
from repro.workloads.base import Workload


def lights_workload(n_devices: int, offset_s: float,
                    command_duration_s: float = 0.0) -> Workload:
    """R1 = all lights ON; R2 = all lights OFF at ``offset_s``."""
    if n_devices <= 0:
        raise ValueError("need at least one light")
    devices = [("light", f"light-{i}") for i in range(n_devices)]
    on = Routine(name="all-on", commands=[
        Command(device_id=i, value="ON", duration=command_duration_s)
        for i in range(n_devices)])
    off = Routine(name="all-off", commands=[
        Command(device_id=i, value="OFF", duration=command_duration_s)
        for i in range(n_devices)])
    return Workload(
        name="lights",
        devices=devices,
        arrivals=[(on, 0.0), (off, offset_s)],
        horizon_hint=offset_s + n_devices * (command_duration_s + 1.0) + 10,
        meta={"n_devices": n_devices, "offset_s": offset_s},
    )


def serialized_end_states(n_devices: int) -> list:
    """The only two serially-equivalent end states: all ON or all OFF."""
    return [
        {i: "ON" for i in range(n_devices)},
        {i: "OFF" for i in range(n_devices)},
    ]
