"""Hub-crash chaos workload.

Device failures have been injectable since the seed; this workload adds
the missing scenario class: the *hub itself* dies mid-run.  A seeded
evening-scene workload (overlapping routines, a flaky light) runs on a
durable :class:`~repro.hub.safehome.SafeHome`, crashes at seeded points
— under serial or parallel execution — recovers from checkpoint + WAL,
and compares the final congruence report against an uninterrupted run
of the same seed.

Under ``"replay"`` recovery the comparison must be byte-identical (the
property the test suite pins for every model at every crash index);
under ``"policy"`` recovery the divergence *is* the measurement — how
much work each visibility model loses to a hub outage.
"""

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.spec import parse_routine
from repro.devices.failures import FailurePlan
from repro.devices.registry import DeviceRegistry
from repro.metrics.recovery import recovery_summary
from repro.sim.random import RandomStreams
from repro.workloads.base import Workload

_DEVICES = [
    ("light", "hall-light"),
    ("light", "porch-light"),
    ("light", "bed-light"),
    ("window", "living-window"),
    ("ac", "living-ac"),
    ("door_lock", "front-door"),
    ("coffee_maker", "kitchen-coffee"),
]

_ROUTINES = [
    {"routineName": "evening-lights", "commands": [
        {"device": "hall-light", "action": "ON", "durationSec": 1},
        {"device": "porch-light", "action": "ON", "durationSec": 1,
         "priority": "BEST_EFFORT"},
        {"device": "bed-light", "action": "ON", "durationSec": 1}]},
    {"routineName": "cooling", "commands": [
        {"device": "living-window", "action": "CLOSED", "durationSec": 2},
        {"device": "living-ac", "action": "ON", "durationSec": 3}]},
    {"routineName": "lockup", "commands": [
        {"device": "front-door", "action": "LOCKED", "durationSec": 1},
        {"device": "hall-light", "action": "OFF", "durationSec": 1},
        {"device": "porch-light", "action": "OFF", "durationSec": 1,
         "priority": "BEST_EFFORT"}]},
    {"routineName": "brew", "commands": [
        {"device": "kitchen-coffee", "action": "ON", "durationSec": 4},
        {"device": "kitchen-coffee", "action": "OFF", "durationSec": 1}]},
    {"routineName": "night-air", "commands": [
        {"device": "living-ac", "action": "OFF", "durationSec": 1},
        {"device": "living-window", "action": "OPEN", "durationSec": 2}]},
]


def chaos_workload(seed: int = 0) -> Workload:
    """The seeded evening scene the hub-crash chaos runs execute."""
    registry = DeviceRegistry()
    for type_name, name in _DEVICES:
        registry.create(type_name, name)
    rng = RandomStreams(seed=seed).stream("chaos-arrivals")
    arrivals = [(parse_routine(spec, registry),
                 round(rng.uniform(0.0, 6.0), 3))
                for spec in _ROUTINES]
    flaky = registry.by_name("porch-light")
    fail_at = round(rng.uniform(0.5, 4.0), 3)
    failures = [FailurePlan(flaky.device_id, fail_at,
                            restart_at=fail_at + 2.5)]
    return Workload(name="chaos", devices=list(_DEVICES),
                    arrivals=arrivals, failure_plans=failures,
                    horizon_hint=15.0, meta={"seed": seed})


@dataclass
class ChaosResult:
    """One chaos run: crash points, recoveries, congruence verdict."""

    model: str
    execution: str
    recovery_mode: str
    seed: int
    crash_events: List[int]
    baseline_events: int
    baseline_row: Dict[str, Any]
    recovered_row: Dict[str, Any]
    congruent: bool
    recoveries: List[Dict[str, Any]] = field(default_factory=list)
    recovery_wall_s: List[float] = field(default_factory=list)

    def summary(self) -> Dict[str, Any]:
        """Deterministic summary (wall-clock excluded)."""
        return {
            "model": self.model,
            "execution": self.execution,
            "recovery": self.recovery_mode,
            "seed": self.seed,
            "crashes": self.crash_events,
            "baseline_events": self.baseline_events,
            "congruent": self.congruent,
            "recoveries": recovery_summary(self.recoveries),
            "report": self.recovered_row,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.summary(), indent=indent, sort_keys=True)


def _chaos_workload_for(scenario: Optional[str], seed: int) -> Workload:
    """The workload one chaos run executes.

    ``None`` (the default) is the hand-written evening scene; a
    ``synth:...`` name — e.g. a worst-found entry from a ``repro hunt``
    corpus — compiles its :class:`~repro.workloads.synth.SynthSpec` so
    crash/recovery is exercised on adversarial inputs too.
    """
    if scenario is None:
        return chaos_workload(seed)
    from repro.workloads.synth import (SynthSpec, compile_spec,
                                       is_synth_scenario)

    if not is_synth_scenario(scenario):
        raise ValueError(
            f"chaos scenario must be None or a 'synth:...' name, "
            f"got {scenario!r}")
    return compile_spec(SynthSpec.decode(scenario), seed=seed)


def _build_home(model: str, execution: str, seed: int,
                checkpoint_every: int,
                scenario: Optional[str] = None,
                wal_dir: Optional[str] = None):
    # Imported lazily: the hub package sits above workloads in the
    # dependency graph (SafeHome itself imports workloads.base).
    from repro.hub.durability import DurabilityConfig
    from repro.hub.safehome import SafeHome

    home = SafeHome(
        visibility=model, execution=execution, seed=seed,
        durability=DurabilityConfig(checkpoint_every=checkpoint_every),
        wal_dir=wal_dir)
    home.load_workload(_chaos_workload_for(scenario, seed))
    return home


def _report_row(home, model: str) -> Dict[str, Any]:
    # WV executions may be cyclic by design (no isolation), so the
    # serial-order reconstruction behind the final-congruence check is
    # only asked of the serializable models.
    report = home.report(check_final=model != "wv")
    row = dict(report.row())
    row["serial_order"] = list(report.serial_order)
    return row


def run_chaos(model: str = "ev", execution: str = "serial",
              seed: int = 0, crashes: int = 2,
              recovery: str = "replay",
              checkpoint_every: int = 32,
              crash_at: Optional[float] = None,
              crash_event: Optional[int] = None,
              scenario: Optional[str] = None,
              wal_dir: Optional[str] = None) -> ChaosResult:
    """Crash the hub at seeded points, recover, compare to baseline.

    ``crash_at`` / ``crash_event`` pin a single explicit crash point;
    otherwise ``crashes`` points are drawn (seeded) from the
    uninterrupted run's event range.  ``scenario`` swaps the evening
    scene for a generated ``synth:...`` workload (hunt-corpus
    feedback); the default path is untouched.  ``wal_dir`` puts the
    crashing home's WAL on disk (segmented CRC-framed log; sealed on
    completion) so the run leaves an fsck-able artifact behind.
    """
    baseline = _build_home(model, execution, seed, checkpoint_every,
                           scenario=scenario)
    baseline.run()
    baseline_row = _report_row(baseline, model)
    total_events = baseline.sim.events_processed

    home = _build_home(model, execution, seed, checkpoint_every,
                       scenario=scenario, wal_dir=wal_dir)
    if crash_at is not None or crash_event is not None:
        points = [{"at": crash_at, "after_events": crash_event}]
    else:
        rng = RandomStreams(seed=seed).stream("hub-crashes")
        count = max(0, min(crashes, max(total_events - 1, 0)))
        indexes = sorted(rng.sample(range(1, total_events), count)) \
            if count else []
        points = [{"at": None, "after_events": k} for k in indexes]

    reports = []
    for point in points:
        home.crash(at=point["at"], after_events=point["after_events"])
        home.run()
        if not home.crashed:
            break  # crash point beyond the end of the simulation
        reports.append(home.recover(mode=recovery))
    home.run()
    if wal_dir is not None:
        home.close_wal()
    recovered_row = _report_row(home, model)

    congruent = json.dumps(recovered_row, sort_keys=True, default=repr) \
        == json.dumps(baseline_row, sort_keys=True, default=repr)
    return ChaosResult(
        model=model, execution=execution, recovery_mode=recovery,
        seed=seed,
        crash_events=[r.crash_events for r in reports],
        baseline_events=total_events,
        baseline_row=baseline_row,
        recovered_row=recovered_row,
        congruent=congruent,
        recoveries=[r.row() for r in reports],
        recovery_wall_s=[r.wall_s for r in reports])
