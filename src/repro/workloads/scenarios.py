"""Trace-derived benchmark scenarios (§7.2).

The paper distilled Google-Home traces from three real homes plus the
SmartThings and IoTBench public app corpora into three benchmarks and
states their generative parameters; we rebuild them from those:

* **Morning**: 4 family members, 3-bed/2-bath home, 29 routines over
  25 minutes touching 31 devices, with real-life ordering constraints
  (wake-up before cooking; leave-home last).
* **Party**: one long atmosphere routine spanning the run plus 11
  spontaneous routines (announcements, singing, serving, cleanup).
* **Factory**: a 50-stage assembly line; each stage's routines access
  local devices (p=0.6), devices shared with neighbouring stages
  (p=0.3) and 5 global devices (p=0.1), generated to keep every worker
  occupied.
"""

import random
from typing import Dict, List, Tuple

from repro.core.command import Command
from repro.core.routine import Routine
from repro.sim.random import RandomStreams
from repro.workloads.base import Workload

_USERS = ("alice", "bob", "carol", "dave")


def _routine(name: str, user: str, steps, name_to_id: Dict[str, int],
             rng: random.Random) -> Routine:
    """steps: (device_name, value, mean_duration_s[, must]) tuples."""
    commands = []
    for step in steps:
        device, value, duration = step[0], step[1], step[2]
        must = step[3] if len(step) > 3 else True
        jittered = max(0.5, rng.normalvariate(duration, duration * 0.2))
        commands.append(Command(device_id=name_to_id[device], value=value,
                                duration=jittered, must=must))
    return Routine(name=name, commands=commands, user=user)


def morning_scenario(seed: int = 0) -> Workload:
    """The chaotic 4-user morning (29 routines / 31 devices / 25 min)."""
    rng = RandomStreams(seed=seed).stream("morning")

    devices: List[Tuple[str, str]] = []

    def dev(type_name: str, name: str) -> str:
        devices.append((type_name, name))
        return name

    # Bedrooms (3) -----------------------------------------------------------
    for room in ("bed1", "bed2", "bed3"):
        dev("light", f"{room}-light")
        dev("shade", f"{room}-shade")
    # Bathrooms (2) ----------------------------------------------------------
    for room in ("bath1", "bath2"):
        dev("light", f"{room}-light")
        dev("fan", f"{room}-fan")
        dev("heater", f"{room}-heater")
    # Kitchen ------------------------------------------------------------------
    for name in ("coffee", "pancake", "toaster", "dishwasher", "mop"):
        dev({"coffee": "coffee_maker", "pancake": "pancake_maker",
             "toaster": "toaster", "dishwasher": "dishwasher",
             "mop": "mop"}[name], f"kitchen-{name}")
    dev("light", "kitchen-light")
    # Living / entry / outside ---------------------------------------------------
    dev("light", "living-light-1")
    dev("light", "living-light-2")
    dev("plug", "living-tv")
    dev("thermostat", "thermostat")
    dev("ac", "living-ac")
    dev("door_lock", "front-door")
    dev("garage", "garage")
    dev("light", "outside-light-1")
    dev("light", "outside-light-2")
    dev("alarm", "alarm")
    dev("vacuum", "vacuum")
    dev("camera", "doorbell-cam")
    dev("window", "kitchen-window")

    name_to_id = {name: index for index, (_t, name) in enumerate(devices)}
    assert len(devices) == 31, f"expected 31 devices, got {len(devices)}"

    bedroom_of = {"alice": "bed1", "bob": "bed1",
                  "carol": "bed2", "dave": "bed3"}
    bathroom_of = {"alice": "bath1", "bob": "bath2",
                   "carol": "bath1", "dave": "bath2"}
    breakfast_of = {"alice": ("kitchen-coffee", 240),
                    "bob": ("kitchen-toaster", 120),
                    "carol": ("kitchen-pancake", 300),
                    "dave": ("kitchen-coffee", 240)}

    arrivals: List[Tuple[Routine, float]] = []
    horizon = 25 * 60.0

    def submit(routine: Routine, at: float) -> None:
        arrivals.append((routine, min(max(0.0, at), horizon)))

    for user_index, user in enumerate(_USERS):
        bed = bedroom_of[user]
        bath = bathroom_of[user]
        t = rng.uniform(0, 120) + user_index * 45.0

        wake = _routine(f"{user}-wake-up", user, [
            (f"{bed}-shade", "OPEN", 4),
            (f"{bed}-light", "ON", 2),
            ("thermostat", 70, 2, False),
        ], name_to_id, rng)
        submit(wake, t)

        t += rng.uniform(120, 240)
        shower = _routine(f"{user}-bathroom", user, [
            (f"{bath}-light", "ON", 2),
            (f"{bath}-heater", "ON", 180),
            (f"{bath}-fan", "ON", 120, False),
        ], name_to_id, rng)
        submit(shower, t)

        t += rng.uniform(240, 420)
        appliance, cook_time = breakfast_of[user]
        cook = _routine(f"{user}-cook-breakfast", user, [
            ("kitchen-light", "ON", 2, False),
            (appliance, "ON", cook_time),
            (appliance, "OFF", 2),
        ], name_to_id, rng)
        submit(cook, t)

        t += rng.uniform(300, 480)
        tidy = _routine(f"{user}-tidy-bedroom", user, [
            (f"{bed}-light", "OFF", 2, False),
            (f"{bed}-shade", "OPEN", 3, False),
        ], name_to_id, rng)
        submit(tidy, t)

        t += rng.uniform(240, 420)
        bath_off = _routine(f"{user}-bathroom-off", user, [
            (f"{bath}-fan", "OFF", 2, False),
            (f"{bath}-heater", "OFF", 2),
            (f"{bath}-light", "OFF", 2, False),
        ], name_to_id, rng)
        submit(bath_off, t)

        leave = _routine(f"{user}-leave-home", user, [
            ("living-light-1", "OFF", 2, False),
            ("living-light-2", "OFF", 2, False),
            ("front-door", "LOCKED", 3),
            ("garage", "CLOSED", 8),
        ], name_to_id, rng)
        submit(leave, horizon - rng.uniform(30, 300) - user_index * 20)

    # Sporadic household routines (5) -------------------------------------------------
    submit(_routine("house-morning-news", "alice", [
        ("living-tv", "ON", 6),
        ("living-light-1", "ON", 2, False),
    ], name_to_id, rng), rng.uniform(200, 500))
    submit(_routine("milk-spill-cleanup", "carol", [
        ("kitchen-mop", "MOPPING", 300),
        ("kitchen-mop", "DOCKED", 5),
    ], name_to_id, rng), rng.uniform(500, 900))
    submit(_routine("run-dishwasher", "bob", [
        ("kitchen-dishwasher", "ON", 600),
    ], name_to_id, rng), rng.uniform(800, 1100))
    submit(_routine("vacuum-living", "dave", [
        ("vacuum", "CLEANING", 480),
    ], name_to_id, rng), rng.uniform(600, 1000))
    submit(_routine("arm-alarm", "alice", [
        ("alarm", "ARMED", 3),
        ("outside-light-1", "OFF", 2, False),
        ("outside-light-2", "OFF", 2, False),
    ], name_to_id, rng), horizon - rng.uniform(10, 60))

    assert len(arrivals) == 29, f"expected 29 routines, got {len(arrivals)}"
    return Workload(name="morning", devices=devices, arrivals=arrivals,
                    horizon_hint=horizon * 2,
                    meta={"users": len(_USERS)})


def party_scenario(seed: int = 0) -> Workload:
    """A small party: one long atmosphere routine + 11 spontaneous."""
    rng = RandomStreams(seed=seed).stream("party")
    devices: List[Tuple[str, str]] = [
        ("speaker", "speaker"),
        ("light", "living-light-1"), ("light", "living-light-2"),
        ("light", "patio-light"), ("plug", "disco-ball"),
        ("coffee_maker", "coffee"), ("oven", "oven"),
        ("dishwasher", "dishwasher"), ("fan", "living-fan"),
        ("thermostat", "thermostat"), ("door_lock", "front-door"),
        ("mop", "mop"), ("camera", "doorbell-cam"),
    ]
    name_to_id = {name: index for index, (_t, name) in enumerate(devices)}
    run_length = 40 * 60.0

    arrivals: List[Tuple[Routine, float]] = []
    # One long routine controls the atmosphere for the entire run.  It
    # touches the living-room light and disco ball briefly at its start
    # but holds the speaker for ~90% of the run — under PSV every
    # light-touching routine queues behind it (head-of-line blocking,
    # §7.2), while EV's post-leases hand the light back immediately.
    atmosphere = _routine("party-atmosphere", "host", [
        ("living-light-1", "ON", 5),
        ("disco-ball", "ON", 5),
        ("speaker", "ON", run_length * 0.9),   # the long command
        ("speaker", "OFF", 5),
    ], name_to_id, rng)
    arrivals.append((atmosphere, 0.0))

    spontaneous = [
        ("welcome-guests", [("front-door", "UNLOCKED", 3),
                            ("patio-light", "ON", 2)]),
        ("serve-snacks", [("oven", "ON", 600), ("oven", "OFF", 3)]),
        ("singing-time", [("living-light-1", "OFF", 2, False),
                          ("living-light-2", "ON", 2)]),
        ("announcement-1", [("living-light-1", "ON", 2, False),
                            ("living-light-2", "ON", 2, False)]),
        ("serve-coffee", [("coffee", "ON", 240), ("coffee", "OFF", 2)]),
        ("cool-the-room", [("living-fan", "ON", 300),
                           ("thermostat", 65, 2, False)]),
        ("spill-cleanup", [("mop", "MOPPING", 240),
                           ("mop", "DOCKED", 4)]),
        ("announcement-2", [("patio-light", "OFF", 2, False),
                            ("living-light-2", "ON", 2, False)]),
        ("dishes-round-1", [("dishwasher", "ON", 900)]),
        ("porch-check", [("doorbell-cam", "ON", 2),
                         ("patio-light", "ON", 2, False)]),
        ("wind-down", [("living-fan", "OFF", 2, False),
                       ("living-light-1", "ON", 2),
                       ("front-door", "LOCKED", 3)]),
    ]
    for index, (name, steps) in enumerate(spontaneous):
        at = rng.uniform(60, run_length * 0.9)
        if name == "wind-down":
            at = run_length * 0.95
        arrivals.append((_routine(name, "host", steps, name_to_id, rng), at))

    assert len(arrivals) == 12
    return Workload(name="party", devices=devices, arrivals=arrivals,
                    horizon_hint=run_length * 2, meta={})


def factory_scenario(seed: int = 0, stages: int = 50,
                     routines_per_stage: int = 3) -> Workload:
    """The 50-stage assembly line (closed loop: no worker idle time)."""
    rng = RandomStreams(seed=seed).stream("factory")
    devices: List[Tuple[str, str]] = []
    local: Dict[int, List[int]] = {}

    for stage in range(stages):
        ids = []
        for kind, label in (("conveyor", "belt"), ("robot_arm", "arm")):
            ids.append(len(devices))
            devices.append((kind, f"s{stage}-{label}"))
        local[stage] = ids
    shared: Dict[int, int] = {}   # boundary i: between stage i and i+1
    for boundary in range(stages - 1):
        shared[boundary] = len(devices)
        devices.append(("conveyor", f"shared-{boundary}-{boundary + 1}"))
    global_ids = []
    for g in range(5):
        global_ids.append(len(devices))
        devices.append(("labeler", f"global-{g}"))

    def stage_routine(stage: int, index: int) -> Routine:
        pool: List[int] = []
        for device_id in local[stage]:
            if rng.random() < 0.6:
                pool.append(device_id)
        for boundary in (stage - 1, stage):
            if boundary in shared and rng.random() < 0.3:
                pool.append(shared[boundary])
        for device_id in global_ids:
            if rng.random() < 0.1:
                pool.append(device_id)
        if not pool:
            pool.append(rng.choice(local[stage]))
        rng.shuffle(pool)
        commands = [Command(device_id=device_id,
                            value=rng.choice(("RUNNING", "STOPPED",
                                              "PICK", "PLACE", "LABEL")),
                            duration=max(0.5, rng.normalvariate(8.0, 3.0)))
                    for device_id in pool]
        return Routine(name=f"s{stage}-job{index}", commands=commands,
                       user=f"worker-{stage}")

    streams = [[stage_routine(stage, index)
                for index in range(routines_per_stage)]
               for stage in range(stages)]
    return Workload(name="factory", devices=devices, streams=streams,
                    horizon_hint=routines_per_stage * 60.0 * 4,
                    meta={"stages": stages})
