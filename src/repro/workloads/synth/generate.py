"""Compile a :class:`SynthSpec` into a runnable :class:`Workload`.

The generator draws a random device graph from the catalog and a
routine set from the spec's distributions, using the repo's named
random streams so every draw is deterministic in (spec, seed).  The
result is an ordinary :class:`~repro.workloads.base.Workload` — it runs
through :class:`~repro.hub.safehome.SafeHome`, the experiment runner,
the fleet engine and ``repro bench`` with no special casing.

Determinism contract: ``compile_spec(spec, seed=s)`` is a pure
function.  ``seed=None`` uses ``spec.seed`` (the replay path); the
fleet passes each home's split seed instead, so one spec fans out into
N distinct-but-reproducible homes.
"""

import random
from typing import List, Optional, Tuple

from repro.core.command import Command
from repro.core.routine import Routine
from repro.devices.catalog import DEVICE_CATALOG
from repro.devices.failures import FailureInjector
from repro.sim.random import RandomStreams, positive_normal
from repro.workloads.base import Workload
from repro.workloads.micro import _sample_devices
from repro.workloads.synth.spec import SynthSpec

_SIGMA_SCALE = 1.0 / 3.0


def _draw_devices(spec: SynthSpec,
                  rng: random.Random) -> List[Tuple[str, str]]:
    pool = list(spec.device_pool) or sorted(DEVICE_CATALOG)
    unknown = sorted(set(pool) - set(DEVICE_CATALOG))
    if unknown:
        raise ValueError(f"unknown device types in pool: {unknown}")
    return [(type_name, f"{type_name}-{index}")
            for index, type_name in enumerate(
                rng.choice(pool) for _ in range(spec.devices))]


def _draw_routine(index: int, spec: SynthSpec,
                  devices: List[Tuple[str, str]],
                  rng: random.Random) -> Routine:
    n_commands = max(1, round(rng.normalvariate(
        spec.fanout_mean, spec.fanout_mean * _SIGMA_SCALE)))
    n_commands = min(n_commands, spec.fanout_max, spec.devices)
    # Zipf-weighted sampling *without replacement*: each device appears
    # in at most one contiguous group, satisfying the routine-spec
    # contiguity constraint by construction.
    chosen = _sample_devices(rng, n_commands, spec.devices,
                             spec.contention_alpha)
    is_long = rng.uniform(0, 100) < spec.long_pct
    long_slot = rng.randrange(len(chosen)) if is_long else -1
    commands = []
    for slot, device_id in enumerate(chosen):
        states = DEVICE_CATALOG[devices[device_id][0]].states
        if slot == long_slot:
            duration = positive_normal(
                rng, spec.long_duration_s,
                spec.long_duration_s * _SIGMA_SCALE, floor=30.0)
        else:
            duration = positive_normal(
                rng, spec.short_duration_s,
                spec.short_duration_s * _SIGMA_SCALE, floor=0.5)
        commands.append(Command(
            device_id=device_id,
            value=rng.choice(states),
            duration=duration,
            must=rng.uniform(0, 100) < spec.must_pct,
        ))
    return Routine(name=f"S{index}", commands=commands)


def estimated_horizon(spec: SynthSpec) -> float:
    """Rough virtual run length (failure placement + horizon hint)."""
    mean_routine = spec.fanout_mean * spec.short_duration_s \
        + (spec.long_pct / 100.0) * spec.long_duration_s
    closed = spec.routines * (100.0 - spec.trigger_open_pct) / 100.0
    serial_tail = (closed / spec.streams) * mean_routine
    return spec.arrival_window_s + mean_routine * 2.0 + serial_tail + 60.0


def compile_spec(spec: SynthSpec,
                 seed: Optional[int] = None) -> Workload:
    """Generate the workload for ``spec`` (deterministic in spec + seed).

    ``seed=None`` replays the spec's own seed; the fleet engine passes
    the per-home split seed instead.
    """
    seed = spec.seed if seed is None else seed
    streams_rng = RandomStreams(seed=seed)
    devices = _draw_devices(spec, streams_rng.stream("synth-devices"))
    routine_rng = streams_rng.stream("synth-routines")
    routines = [_draw_routine(i, spec, devices, routine_rng)
                for i in range(spec.routines)]

    n_open = round(spec.routines * spec.trigger_open_pct / 100.0)
    arrival_rng = streams_rng.stream("synth-arrivals")
    arrivals = [(routine, round(
                    arrival_rng.uniform(0.0, spec.arrival_window_s), 3))
                for routine in routines[:n_open]]
    streams: List[List[Routine]] = [[] for _ in range(spec.streams)]
    for offset, routine in enumerate(routines[n_open:]):
        streams[offset % spec.streams].append(routine)
    if not arrivals and not any(streams):   # degenerate trigger mix
        arrivals = [(routines[0], 0.0)]

    horizon = estimated_horizon(spec)
    failure_plans = []
    if spec.failed_device_pct > 0:
        failure_plans = FailureInjector.random_plans(
            streams_rng.stream("synth-failures"),
            list(range(spec.devices)),
            spec.failed_device_pct / 100.0,
            horizon * 0.6,
            restart_after=spec.restart_after_s)

    return Workload(
        name="synth",
        devices=devices,
        arrivals=arrivals,
        streams=[stream for stream in streams if stream],
        failure_plans=failure_plans,
        horizon_hint=horizon,
        meta={"synth_spec": spec.to_dict(), "seed": seed,
              "failure_horizon": horizon * 0.6,
              "scale_failures": bool(failure_plans)},
    )
