"""`SynthSpec`: the serializable recipe for one generated scenario.

A spec is a point in the generator's knob space — contention, fan-out,
duration mix, trigger mix, failure rate — plus the seed that pins every
random draw.  Spec + seed fully determine the generated
:class:`~repro.workloads.base.Workload`, so any synthesized scenario is
replayable from its serialized form alone.

Two serializations exist:

* :meth:`SynthSpec.to_json` / :meth:`from_json` — the full-dict form
  used by hunt corpora and trace files;
* :meth:`SynthSpec.encode` / :meth:`decode` — a compact
  ``synth:key=value;...`` scenario *name* (comma-free, so it survives
  the fleet CLI's comma-separated ``--mix`` lists) understood by the
  fleet registry (:func:`repro.workloads.fleet_mix.build_fleet_workload`).

Both round-trip exactly: only non-default fields are encoded, floats
via ``repr`` (shortest round-trippable form).
"""

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: Scenario-name prefix routing a fleet home to the generator.
SCENARIO_PREFIX = "synth:"


@dataclass(frozen=True)
class SynthSpec:
    """Tunable distributions for one generated scenario (all seeded).

    The defaults describe a mid-size contended home: 8 devices, 12
    routines of ~3 commands arriving open-loop within a minute.
    """

    seed: int = 0
    #: Home size and the catalog types devices are drawn from
    #: (empty tuple = the whole :data:`~repro.devices.catalog.DEVICE_CATALOG`).
    devices: int = 8
    device_pool: Tuple[str, ...] = ()
    #: Routine-set size and fan-out (commands per routine, normal mean,
    #: clamped to [1, fanout_max]).
    routines: int = 12
    fanout_mean: float = 3.0
    fanout_max: int = 6
    #: Contention: Zipf exponent over device popularity.  0 = uniform
    #: (low contention); 2+ concentrates almost every routine on the
    #: same couple of devices.
    contention_alpha: float = 0.9
    #: Duration mix: short-command mean, long-command mean, and the
    #: percentage of routines carrying one long command.
    short_duration_s: float = 5.0
    long_duration_s: float = 120.0
    long_pct: float = 10.0
    #: Trigger mix: percentage of routines arriving open-loop at seeded
    #: times within ``arrival_window_s``; the rest are split round-robin
    #: over ``streams`` closed-loop streams (the paper's ρ).
    trigger_open_pct: float = 100.0
    streams: int = 2
    arrival_window_s: float = 60.0
    #: Must-command percentage (rest are best-effort).
    must_pct: float = 90.0
    #: Failure injection: percentage of devices fail-stopping mid-run,
    #: optionally restarting ``restart_after_s`` later.
    failed_device_pct: float = 0.0
    restart_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ValueError("devices must be >= 1")
        if self.routines < 1:
            raise ValueError("routines must be >= 1")
        if self.fanout_max < 1:
            raise ValueError("fanout_max must be >= 1")
        if self.fanout_mean <= 0:
            raise ValueError("fanout_mean must be positive")
        if self.streams < 1:
            raise ValueError("streams must be >= 1")
        if self.contention_alpha < 0:
            raise ValueError("contention_alpha must be >= 0")
        for field_name in ("short_duration_s", "long_duration_s",
                           "arrival_window_s"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")
        for field_name in ("long_pct", "trigger_open_pct", "must_pct",
                           "failed_device_pct"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 100.0:
                raise ValueError(f"{field_name} must be in [0, 100]")
        if self.restart_after_s is not None and self.restart_after_s < 0:
            raise ValueError("restart_after_s must be >= 0")
        if self.device_pool:
            from repro.devices.catalog import DEVICE_CATALOG
            unknown = sorted(set(self.device_pool) - set(DEVICE_CATALOG))
            if unknown:
                raise ValueError(
                    f"unknown device types in device_pool: {unknown}")

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Full field dict (JSON-ready; ``device_pool`` as a list)."""
        payload = dataclasses.asdict(self)
        payload["device_pool"] = list(self.device_pool)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SynthSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown SynthSpec fields: {unknown}")
        payload = dict(payload)
        if "device_pool" in payload:
            payload["device_pool"] = tuple(payload["device_pool"])
        return cls(**payload)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SynthSpec":
        return cls.from_dict(json.loads(text))

    # -- compact scenario-name form --------------------------------------------

    def encode(self) -> str:
        """The ``synth:...`` scenario name (non-default fields only).

        Comma-free by construction — fields join with ``;``, the device
        pool with ``+`` — so encoded specs pass through the fleet CLI's
        comma-separated ``--mix`` unscathed.
        """
        parts = []
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value == field.default:
                continue
            if field.name == "device_pool":
                encoded = "+".join(value)
            elif isinstance(value, float):
                encoded = repr(value)
            else:
                encoded = str(value)
            parts.append(f"{field.name}={encoded}")
        return SCENARIO_PREFIX + ";".join(parts)

    @classmethod
    def decode(cls, name: str) -> "SynthSpec":
        """Parse a scenario name produced by :meth:`encode`."""
        if not name.startswith(SCENARIO_PREFIX):
            raise ValueError(f"not a synth scenario name: {name!r}")
        body = name[len(SCENARIO_PREFIX):]
        fields = {f.name: f for f in dataclasses.fields(cls)}
        payload: Dict[str, Any] = {}
        for part in filter(None, body.split(";")):
            key, _sep, raw = part.partition("=")
            if not _sep or key not in fields:
                raise ValueError(
                    f"bad synth scenario field {part!r} in {name!r}")
            payload[key] = _parse_field(key, raw)
        return cls(**payload)


_INT_FIELDS = frozenset(
    ("seed", "devices", "routines", "fanout_max", "streams"))


def _parse_field(key: str, raw: str) -> Any:
    if key == "device_pool":
        return tuple(filter(None, raw.split("+")))
    if key == "restart_after_s":
        return None if raw == "None" else float(raw)
    if key in _INT_FIELDS:
        return int(raw)
    return float(raw)


def is_synth_scenario(name: str) -> bool:
    """Is ``name`` a generated-scenario name (``synth:`` prefixed)?"""
    return name.startswith(SCENARIO_PREFIX)
