"""Seeded generative scenario engine + adversarial congruence search.

* :mod:`spec` — :class:`SynthSpec`, the serializable recipe (knobs +
  seed) every generated scenario replays from;
* :mod:`generate` — :func:`compile_spec`, spec → runnable
  :class:`~repro.workloads.base.Workload`;
* :mod:`hunt` — ``repro hunt``'s seeded random + hill-climbing search
  for each model's worst-case scenarios, oracle-checked.

See docs/scenario-synthesis.md.
"""

from repro.workloads.synth.generate import compile_spec, estimated_horizon
from repro.workloads.synth.hunt import (HUNT_MODELS, OBJECTIVES, hunt,
                                        hunt_corpus, corpus_to_json,
                                        random_spec, mutate_spec,
                                        workload_initial_state)
from repro.workloads.synth.spec import (SCENARIO_PREFIX, SynthSpec,
                                        is_synth_scenario)

__all__ = [
    "SCENARIO_PREFIX", "SynthSpec", "is_synth_scenario",
    "compile_spec", "estimated_horizon",
    "HUNT_MODELS", "OBJECTIVES", "hunt", "hunt_corpus",
    "corpus_to_json", "random_spec", "mutate_spec",
    "workload_initial_state",
]
