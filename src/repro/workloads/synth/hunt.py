"""Adversarial congruence search over :class:`SynthSpec` space.

``repro hunt`` looks for the scenarios each visibility model handles
*worst*: seeded random starting points plus hill-climbing mutations
over the generator's knobs, maximizing one pressure objective —
temporary-incongruence events, aborts, or lock-wait seconds.  Every
evaluation also runs the congruence oracle
(:mod:`repro.metrics.oracle`); the search may drive the *metrics* as
high as it can, but an invariant violation on any evaluation is a real
bug and fails the hunt.

The whole search is a pure function of (model, objective, seed,
budget, execution): random starts and mutations draw from named seeded
streams, scores are virtual-time quantities, and the emitted corpus
JSON contains no wall-clock — so two hunts with the same arguments
produce byte-identical corpora, and any corpus entry's ``scenario``
name replays through the fleet registry
(``repro fleet --scenario 'synth:...'``) or the chaos workload
(``repro crash-recovery --scenario 'synth:...'``).
"""

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.devices.catalog import DEVICE_CATALOG
from repro.metrics.congruence import temporary_incongruence_events
from repro.metrics.oracle import OracleReport, check_run
from repro.sim.random import RandomStreams, derive_seed
from repro.workloads.base import Workload
from repro.workloads.synth.generate import compile_spec
from repro.workloads.synth.spec import SynthSpec

#: Models the hunt searches by default (the paper's spectrum + OCC).
HUNT_MODELS: Tuple[str, ...] = ("wv", "gsv", "psv", "ev", "occ")

#: Objective name → scoring function over a finished RunResult.
OBJECTIVES = {
    "incongruence": lambda result: temporary_incongruence_events(result),
    "aborts": lambda result: len(result.aborted),
    "lock_wait": lambda result: round(
        sum(run.lock_wait_s for run in result.runs), 6),
}

#: Searchable knob ranges: name → (low, high, is_int).  Bounds keep a
#: single evaluation cheap (tens of routines) while still reaching the
#: hostile corners — near-total contention, open-loop arrival storms,
#: long-command pileups, seeded fail-stops.
KNOB_RANGES: Dict[str, Tuple[float, float, bool]] = {
    "devices": (3, 12, True),
    "routines": (6, 48, True),
    "fanout_mean": (1.5, 4.5, False),
    "fanout_max": (2, 8, True),
    "contention_alpha": (0.0, 2.5, False),
    "short_duration_s": (1.0, 20.0, False),
    "long_duration_s": (60.0, 300.0, False),
    "long_pct": (0.0, 60.0, False),
    "trigger_open_pct": (40.0, 100.0, False),
    "streams": (1, 4, True),
    "arrival_window_s": (5.0, 60.0, False),
    "must_pct": (50.0, 100.0, False),
    "failed_device_pct": (0.0, 25.0, False),
}

#: Consecutive non-improving mutations before a random restart.
RESTART_AFTER = 8


def workload_initial_state(workload: Workload) -> Dict[int, Any]:
    """The registry snapshot a fresh run of ``workload`` starts from."""
    return {device_id: DEVICE_CATALOG[type_name].initial_state
            for device_id, (type_name, _name)
            in enumerate(workload.devices)}


def random_spec(rng, seed: int) -> SynthSpec:
    """One random point in knob space (every knob drawn uniformly)."""
    values: Dict[str, Any] = {"seed": seed}
    for name, (low, high, is_int) in KNOB_RANGES.items():
        if is_int:
            values[name] = rng.randint(int(low), int(high))
        else:
            values[name] = round(rng.uniform(low, high), 3)
    values["fanout_max"] = max(values["fanout_max"],
                               int(round(values["fanout_mean"])))
    return SynthSpec(**values)


def mutate_spec(spec: SynthSpec, rng) -> SynthSpec:
    """Tweak one knob (or reseed) — the hill-climbing step."""
    knob = rng.choice(sorted(KNOB_RANGES) + ["seed", "seed"])
    if knob == "seed":
        return dataclasses.replace(spec, seed=rng.randrange(2 ** 31))
    low, high, is_int = KNOB_RANGES[knob]
    current = float(getattr(spec, knob))
    step = (high - low) * rng.choice((-0.25, -0.1, 0.1, 0.25))
    value = min(max(current + step, low), high)
    new = {knob: int(round(value)) if is_int else round(value, 3)}
    if knob in ("fanout_mean", "fanout_max"):
        # Keep the clamp fanout_mean <= fanout_max meaningful.
        mean = new.get("fanout_mean", spec.fanout_mean)
        new["fanout_max"] = max(new.get("fanout_max", spec.fanout_max),
                                int(round(mean)))
    return dataclasses.replace(spec, **new)


@dataclass
class Evaluation:
    """One scored point: spec, objective score, oracle verdict."""

    spec: SynthSpec
    score: float
    oracle: OracleReport
    row: Dict[str, Any]
    index: int


def evaluate_spec(spec: SynthSpec, model: str, objective: str,
                  execution: str = "serial",
                  index: int = 0) -> Evaluation:
    """Compile, run, score and oracle-check one spec (deterministic)."""
    # Imported lazily: experiments sits above workloads in the
    # dependency graph (the same layering chaos.py uses for the hub).
    from repro.experiments.runner import ExperimentSetup, run_workload

    score_fn = OBJECTIVES[objective]
    workload = compile_spec(spec)
    setup = ExperimentSetup(model=model, execution=execution,
                            seed=spec.seed, check_final=False)
    result, report, _controller = run_workload(workload, setup)
    oracle = check_run(result, workload_initial_state(workload),
                       model=model)
    return Evaluation(spec=spec, score=score_fn(result), oracle=oracle,
                      row=report.row(), index=index)


def hunt(model: str, objective: str = "incongruence", seed: int = 0,
         budget: int = 50, execution: str = "serial") -> Dict[str, Any]:
    """Search ``budget`` evaluations for the worst spec under ``model``.

    Returns one deterministic corpus entry: the best (worst-behaved)
    spec with its score, metrics row and oracle verdict, the
    improvement trace, and the violation tally across *all*
    evaluations (which must be zero unless a model is genuinely
    broken).
    """
    if objective not in OBJECTIVES:
        raise ValueError(f"unknown objective {objective!r}; "
                         f"pick from {sorted(OBJECTIVES)}")
    if budget < 1:
        raise ValueError("budget must be >= 1")
    streams = RandomStreams(
        seed=derive_seed(seed, f"hunt:{model}:{objective}"))
    rng = streams.stream("search")
    best: Optional[Evaluation] = None
    improvements: List[Dict[str, Any]] = []
    violations: List[Dict[str, Any]] = []
    violation_count = 0
    stall = 0
    for step in range(budget):
        if best is None or stall >= RESTART_AFTER:
            candidate = random_spec(
                rng, seed=derive_seed(seed, f"{model}:{step}"))
            stall = 0
        else:
            candidate = mutate_spec(best.spec, rng)
        evaluation = evaluate_spec(candidate, model, objective,
                                   execution=execution, index=step)
        if not evaluation.oracle.ok:
            violation_count += len(evaluation.oracle.violations)
            if len(violations) < 5:     # keep the corpus bounded
                violations.append({
                    "step": step, "spec": candidate.to_dict(),
                    "oracle": evaluation.oracle.to_dict()})
        if best is None or evaluation.score > best.score:
            best = evaluation
            stall = 0
            improvements.append({"step": step,
                                 "score": evaluation.score})
        else:
            stall += 1
    return {
        "model": model,
        "objective": objective,
        "seed": seed,
        "budget": budget,
        "execution": execution,
        "best": {
            "spec": best.spec.to_dict(),
            "scenario": best.spec.encode(),
            "score": best.score,
            "found_at": best.index,
            "metrics": best.row,
            "oracle": best.oracle.to_dict(),
        },
        "improvements": improvements,
        "oracle_violations": violation_count,
        "violations": violations,
    }


def hunt_corpus(models: Sequence[str] = HUNT_MODELS,
                objective: str = "incongruence", seed: int = 0,
                budget: int = 50,
                execution: str = "serial") -> Dict[str, Any]:
    """Run one hunt per model and bundle the deterministic corpus."""
    entries = {model: hunt(model, objective=objective, seed=seed,
                           budget=budget, execution=execution)
               for model in models}
    return {
        "objective": objective,
        "seed": seed,
        "budget": budget,
        "execution": execution,
        "models": entries,
        "oracle_violations": sum(entry["oracle_violations"]
                                 for entry in entries.values()),
    }


def corpus_to_json(corpus: Dict[str, Any]) -> str:
    """Byte-stable corpus serialization (the determinism contract)."""
    return json.dumps(corpus, indent=2, sort_keys=True)
