"""Parameterized microbenchmark (Table 3, §7.3).

Knobs (paper defaults in parentheses): total routines R (100),
concurrency ρ (4, closed-loop streams), average commands per routine C
(3, normal), Zipf device popularity α (0.05), long-routine percentage
L% (10%), long-command duration |L| (20 min, normal), short-command
duration |S| (10 s, normal), must-command percentage M (100%), failed
devices F (0%).
"""

import random
from dataclasses import dataclass, field
from typing import List

from repro.core.command import Command
from repro.core.routine import Routine
from repro.devices.failures import FailureInjector
from repro.sim.random import RandomStreams, positive_normal, zipf_weights
from repro.workloads.base import Workload


@dataclass(frozen=True)
class MicroParams:
    """Table 3's parameters, field names matching the paper's symbols."""

    routines: int = 100           # R
    concurrency: int = 4          # ρ
    commands_per_routine: float = 3.0   # C (normal mean)
    zipf_alpha: float = 0.05      # α
    long_routine_pct: float = 10.0      # L%
    long_duration_s: float = 20 * 60.0  # |L| (normal mean)
    short_duration_s: float = 10.0      # |S| (normal mean)
    must_pct: float = 100.0       # M
    failed_device_pct: float = 0.0      # F
    devices: int = 25             # home size (§7.3 text)
    restart_after_s: float | None = None

    def __post_init__(self) -> None:
        if self.routines <= 0 or self.devices <= 0:
            raise ValueError("routines and devices must be positive")
        if self.concurrency <= 0:
            raise ValueError("concurrency must be positive")
        for pct_name in ("long_routine_pct", "must_pct",
                         "failed_device_pct"):
            value = getattr(self, pct_name)
            if not 0.0 <= value <= 100.0:
                raise ValueError(f"{pct_name} must be in [0, 100]")

    def mean_routine_duration(self) -> float:
        """Rough expected routine runtime (horizon estimation)."""
        short_part = self.commands_per_routine * self.short_duration_s
        long_part = (self.long_routine_pct / 100.0) * self.long_duration_s
        return short_part + long_part


def _sample_devices(rng: random.Random, count: int, n_devices: int,
                    alpha: float) -> List[int]:
    """Zipf-weighted sampling without replacement."""
    available = list(range(n_devices))
    weights = zipf_weights(n_devices, alpha)
    chosen: List[int] = []
    for _ in range(min(count, n_devices)):
        total = sum(weights[d] for d in available)
        pick = rng.uniform(0.0, total)
        cumulative = 0.0
        selected = available[-1]
        for device in available:
            cumulative += weights[device]
            if pick <= cumulative:
                selected = device
                break
        available.remove(selected)
        chosen.append(selected)
    return chosen


def _make_routine(index: int, params: MicroParams,
                  rng: random.Random) -> Routine:
    sigma_scale = 1.0 / 3.0
    n_commands = max(1, round(rng.normalvariate(
        params.commands_per_routine,
        params.commands_per_routine * sigma_scale)))
    n_commands = min(n_commands, params.devices)
    devices = _sample_devices(rng, n_commands, params.devices,
                              params.zipf_alpha)
    is_long = rng.uniform(0, 100) < params.long_routine_pct
    long_slot = rng.randrange(len(devices)) if is_long else -1
    commands = []
    for slot, device_id in enumerate(devices):
        if slot == long_slot:
            duration = positive_normal(
                rng, params.long_duration_s,
                params.long_duration_s * sigma_scale, floor=60.0)
        else:
            duration = positive_normal(
                rng, params.short_duration_s,
                params.short_duration_s * sigma_scale, floor=0.5)
        commands.append(Command(
            device_id=device_id,
            value=rng.choice(("ON", "OFF")),
            duration=duration,
            must=rng.uniform(0, 100) < params.must_pct,
        ))
    return Routine(name=f"R{index}", commands=commands)


def generate_microbenchmark(params: MicroParams,
                            seed: int = 0) -> Workload:
    """Build one microbenchmark instance (deterministic per seed)."""
    streams_rng = RandomStreams(seed=seed)
    rng = streams_rng.stream("micro-workload")
    routines = [_make_routine(i, params, rng)
                for i in range(params.routines)]
    streams: List[List[Routine]] = [[] for _ in range(params.concurrency)]
    for index, routine in enumerate(routines):
        streams[index % params.concurrency].append(routine)

    horizon = (params.routines / params.concurrency) \
        * params.mean_routine_duration() * 1.5 + 60.0
    devices = [("plug", f"dev-{i}") for i in range(params.devices)]

    failure_horizon = horizon * 0.6
    failure_plans = []
    if params.failed_device_pct > 0:
        failure_rng = streams_rng.stream("micro-failures")
        failure_plans = FailureInjector.random_plans(
            failure_rng, list(range(params.devices)),
            params.failed_device_pct / 100.0,
            failure_horizon,
            restart_after=params.restart_after_s)

    return Workload(
        name="microbenchmark",
        devices=devices,
        streams=streams,
        failure_plans=failure_plans,
        horizon_hint=horizon,
        meta={"params": params, "failure_horizon": failure_horizon,
              "scale_failures": True},
    )
