"""Heterogeneous fleet workloads: what N different homes run at once.

A fleet run (``repro fleet``, :mod:`repro.fleet`) simulates many
independent homes concurrently.  Real deployments are heterogeneous, so
the default fleet mix cycles three home profiles:

* **morning** — the paper's chaotic 4-user morning rush (§7.2);
* **factory-line** — a scaled-down assembly line (8 stages, closed
  loop) exercising the shared/global-device contention of §7.2;
* **cooling** — a small residential cooling/ventilation home built
  around the paper's motivating Rcooling example (§1).

Every factory takes a single ``seed`` and is fully deterministic, so a
fleet of homes is reproducible from one master seed plus the
seed-splitting layer in :mod:`repro.fleet.seeding`.
"""

from typing import Callable, Dict, List, Sequence, Tuple

from repro.devices.failures import FailurePlan
from repro.sim.random import RandomStreams
from repro.workloads.base import Workload
from repro.workloads.fanout import fanout_scenario
from repro.workloads.scenarios import (_routine, factory_scenario,
                                       morning_scenario, party_scenario)
from repro.workloads.synth import SynthSpec, compile_spec, is_synth_scenario

#: The default per-home profile cycle for ``scenario="mix"`` fleets.
DEFAULT_MIX: Tuple[str, ...] = ("morning", "factory-line", "cooling")


def cooling_scenario(seed: int = 0, with_failure: bool = False) -> Workload:
    """A small cooling/ventilation home (6 routines over ~10 minutes).

    Built around Rcooling = {window:CLOSE; AC:ON} from §1, plus the
    conflicting ventilation routine that makes atomicity interesting.
    With ``with_failure`` the living-room AC fail-stops mid-run and
    restarts later — used by the fleet failure-isolation tests.
    """
    rng = RandomStreams(seed=seed).stream("cooling")
    devices: List[Tuple[str, str]] = [
        ("window", "living-window"), ("window", "bed-window"),
        ("ac", "living-ac"), ("ac", "bed-ac"),
        ("fan", "ceiling-fan"), ("thermostat", "thermostat"),
        ("shade", "living-shade"), ("light", "living-light"),
    ]
    name_to_id = {name: index for index, (_t, name) in enumerate(devices)}
    horizon = 600.0

    steps_by_routine = [
        ("cool-living", "alice", [
            ("living-window", "CLOSED", 3),
            ("living-ac", "ON", 45),
        ]),
        ("cool-bedroom", "bob", [
            ("bed-window", "CLOSED", 3),
            ("bed-ac", "ON", 40),
        ]),
        ("ventilate", "alice", [
            ("living-ac", "OFF", 2),
            ("living-window", "OPEN", 3),
            ("ceiling-fan", "ON", 30, False),
        ]),
        ("afternoon-shade", "carol", [
            ("living-shade", "CLOSED", 4, False),
            ("living-light", "ON", 1, False),
        ]),
        ("night-setback", "bob", [
            ("thermostat", 68, 2),
            ("living-light", "OFF", 1, False),
            ("ceiling-fan", "OFF", 2, False),
        ]),
        ("re-cool", "carol", [
            ("living-window", "CLOSED", 3),
            ("living-ac", "ON", 35),
        ]),
    ]
    arrivals = []
    at = 0.0
    for name, user, steps in steps_by_routine:
        arrivals.append((_routine(name, user, steps, name_to_id, rng), at))
        at += rng.uniform(30.0, horizon / len(steps_by_routine))

    failure_plans: List[FailurePlan] = []
    if with_failure:
        fail_at = rng.uniform(5.0, 60.0)
        failure_plans.append(FailurePlan(
            device_id=name_to_id["living-ac"], fail_at=fail_at,
            restart_at=fail_at + rng.uniform(60.0, 120.0)))

    return Workload(name="cooling", devices=devices, arrivals=arrivals,
                    failure_plans=failure_plans, horizon_hint=horizon * 2,
                    meta={"faulty": with_failure})


def factory_line_scenario(seed: int = 0) -> Workload:
    """The §7.2 factory benchmark scaled to a per-home shard (8 stages)."""
    return factory_scenario(seed=seed, stages=8, routines_per_stage=2)


#: Scenario registry used by the fleet engine: name → factory(seed).
FLEET_SCENARIOS: Dict[str, Callable[[int], Workload]] = {
    "fanout": lambda seed: fanout_scenario(seed=seed),
    "morning": lambda seed: morning_scenario(seed=seed),
    "party": lambda seed: party_scenario(seed=seed),
    "factory": lambda seed: factory_scenario(seed=seed),
    "factory-line": factory_line_scenario,
    "cooling": lambda seed: cooling_scenario(seed=seed),
    "cooling-faulty": lambda seed: cooling_scenario(seed=seed,
                                                    with_failure=True),
}


def scenario_for_home(home_id: int, scenario: str = "mix",
                      mix: Sequence[str] = DEFAULT_MIX) -> str:
    """The scenario name home ``home_id`` runs.

    ``scenario="mix"`` cycles deterministically through ``mix`` by home
    index (position in the fleet, independent of sharding); any other
    value names one :data:`FLEET_SCENARIOS` entry — or a generated
    scenario encoded as a ``synth:...`` name
    (:meth:`~repro.workloads.synth.SynthSpec.encode`, e.g. from a
    ``repro hunt`` corpus) — for every home.
    """
    if scenario != "mix":
        _validate_scenario_name(scenario)
        return scenario
    if not mix:
        raise ValueError("empty fleet mix")
    for name in mix:
        _validate_scenario_name(name, context=" in fleet mix")
    return mix[home_id % len(mix)]


def _validate_scenario_name(name: str, context: str = "") -> None:
    if is_synth_scenario(name):
        SynthSpec.decode(name)      # raises ValueError on a bad spec
        return
    if name not in FLEET_SCENARIOS:
        raise ValueError(
            f"unknown fleet scenario {name!r}{context}; "
            f"pick from {sorted(FLEET_SCENARIOS)}, 'mix', or a "
            f"'synth:...' generated-scenario name")


def build_fleet_workload(scenario: str, seed: int) -> Workload:
    """Instantiate one home's workload from its registry name.

    ``synth:...`` names route to the generator: the encoded
    :class:`~repro.workloads.synth.SynthSpec` is compiled with this
    home's split seed, so one hunted spec fans out into N
    distinct-but-reproducible hostile homes.
    """
    if is_synth_scenario(scenario):
        return compile_spec(SynthSpec.decode(scenario), seed=seed)
    try:
        factory = FLEET_SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown fleet scenario {scenario!r}; "
            f"pick from {sorted(FLEET_SCENARIOS)}") from None
    return factory(seed)
