"""Workloads: the paper's microbenchmark, Fig 1 experiment and the three
trace-derived scenarios (Morning / Party / Factory, §7.2)."""

from repro.workloads.base import Workload
from repro.workloads.lights import lights_workload
from repro.workloads.micro import MicroParams, generate_microbenchmark
from repro.workloads.scenarios import (factory_scenario, morning_scenario,
                                       party_scenario)

__all__ = [
    "Workload",
    "MicroParams",
    "generate_microbenchmark",
    "lights_workload",
    "morning_scenario",
    "party_scenario",
    "factory_scenario",
]
