"""Workloads: the paper's microbenchmark, Fig 1 experiment, the three
trace-derived scenarios (Morning / Party / Factory, §7.2) and the
heterogeneous per-home profiles of the fleet engine."""

from repro.workloads.base import Workload, attach_streams
from repro.workloads.chaos import ChaosResult, chaos_workload, run_chaos
from repro.workloads.fleet_mix import (DEFAULT_MIX, FLEET_SCENARIOS,
                                       build_fleet_workload, cooling_scenario,
                                       factory_line_scenario,
                                       scenario_for_home)
from repro.workloads.lights import lights_workload
from repro.workloads.micro import MicroParams, generate_microbenchmark
from repro.workloads.scenarios import (factory_scenario, morning_scenario,
                                       party_scenario)

__all__ = [
    "Workload",
    "attach_streams",
    "MicroParams",
    "generate_microbenchmark",
    "lights_workload",
    "morning_scenario",
    "party_scenario",
    "factory_scenario",
    "cooling_scenario",
    "factory_line_scenario",
    "build_fleet_workload",
    "scenario_for_home",
    "DEFAULT_MIX",
    "FLEET_SCENARIOS",
    "chaos_workload",
    "run_chaos",
    "ChaosResult",
]
