"""Shared fixtures and builders for the SafeHome test suite."""

import os

import pytest
from hypothesis import settings

from repro.core.command import Command
from repro.core.controller import ControllerConfig
from repro.core.routine import Routine
from repro.core.visibility import make_controller
from repro.devices.driver import Driver
from repro.devices.network import LatencyModel
from repro.devices.registry import DeviceRegistry
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

# Shared hypothesis profile: deterministic (derandomized, so CI never
# flakes on a fresh failure), no deadline (simulated runs legitimately
# take hundreds of ms), example budget tunable per environment —
# REPRO_HYPOTHESIS_EXAMPLES=100 locally for a deeper sweep, the CI
# workflow pins a small budget to keep the matrix fast.
settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    max_examples=int(os.environ.get("REPRO_HYPOTHESIS_EXAMPLES", "20")),
    print_blob=True,
)
settings.load_profile("repro")


class Home:
    """A minimal controller-under-test harness with N plug devices."""

    def __init__(self, model="ev", n_devices=4, scheduler="timeline",
                 config=None, latency_ms=10.0, seed=0):
        self.sim = Simulator()
        self.registry = DeviceRegistry()
        for i in range(n_devices):
            self.registry.create("plug", f"plug-{i}")
        self.driver = Driver(
            sim=self.sim, registry=self.registry,
            latency=LatencyModel.deterministic(latency_ms),
            streams=RandomStreams(seed=seed))
        self.config = config or ControllerConfig()
        self.config.scheduler = scheduler
        self.controller = make_controller(model, self.sim, self.registry,
                                          self.driver, self.config)
        # Implicit failure detection is always wired in tests.
        self.driver.on_timeout = self.controller.on_failure_detected
        self.initial = self.registry.snapshot()

    def submit(self, routine, when=None):
        return self.controller.submit(routine, when=when)

    def run(self, until=None):
        from repro.core.controller import RunResult
        self.sim.run(until=until, max_events=2_000_000)
        return RunResult.from_controller(self.controller)

    def fail_device(self, device_id, at):
        device = self.registry.get(device_id)
        self.sim.call_at(at, device.fail)

    def restart_device(self, device_id, at):
        device = self.registry.get(device_id)
        self.sim.call_at(at, device.restart)

    def detect_failure(self, device_id, at):
        """Failure plus immediate hub detection at ``at``."""
        self.fail_device(device_id, at)
        self.sim.call_at(at, self.controller.on_failure_detected,
                         device_id)

    def detect_restart(self, device_id, at):
        self.restart_device(device_id, at)
        self.sim.call_at(at, self.controller.on_restart_detected,
                         device_id)


@pytest.fixture
def home_factory():
    return Home


def routine(name, steps):
    """Build a routine from (device_id, value, duration[, must]) steps."""
    commands = []
    for step in steps:
        device_id, value, duration = step[0], step[1], step[2]
        must = step[3] if len(step) > 3 else True
        commands.append(Command(device_id=device_id, value=value,
                                duration=duration, must=must))
    return Routine(name=name, commands=commands)
