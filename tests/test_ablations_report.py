"""Fast smoke tests for the ablation sweeps and the report module."""

import pytest

from repro.experiments.ablations import (ablate_detector_period,
                                         ablate_estimate_error,
                                         ablate_leniency,
                                         ablate_network_jitter)
from repro.experiments.report import format_table, print_table


class TestAblationSmoke:
    def test_leniency_rows(self):
        rows = ablate_leniency(trials=2, leniencies=(1.0, 3.0))
        assert [row["leniency"] for row in rows] == [1.0, 3.0]
        assert all(0 <= row["abort_rate"] <= 1 for row in rows)

    def test_estimate_error_rows(self):
        rows = ablate_estimate_error(trials=2, errors=(0.0, 0.5))
        assert all(row["lat_p50"] > 0 for row in rows)
        assert all(row["stretch_mean"] >= 1.0 for row in rows)

    def test_detector_period_rows(self):
        rows = ablate_detector_period(trials=2, periods=(0.5, 2.0))
        assert rows[0]["detection_lag_mean_s"] <= \
            rows[1]["detection_lag_mean_s"] + 0.5
        for row in rows:
            assert row["detection_lag_mean_s"] >= 0.0

    def test_network_jitter_rows(self):
        rows = ablate_network_jitter(trials=6, sigmas=(0.0, 1.0))
        assert rows[0]["incongruent_fraction"] == 0.0


class TestReportFormatting:
    def test_empty(self):
        assert format_table([]) == "(no data)"

    def test_alignment_and_float_formatting(self):
        rows = [{"name": "a", "value": 1.23456789},
                {"name": "bbbb", "value": 10}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "1.235" in text  # 4 significant digits
        assert lines[0].startswith("name")

    def test_explicit_columns_subset(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=("c", "a"))
        assert "b" not in text.splitlines()[0]
        assert text.splitlines()[0].startswith("c")

    def test_missing_keys_render_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": "x"}]
        text = format_table(rows, columns=("a", "b"))
        assert "x" in text

    def test_print_table_returns_text(self, capsys):
        text = print_table("title", [{"a": 1}])
        assert "title" in text
        assert "title" in capsys.readouterr().out
