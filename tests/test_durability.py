"""Durable hub: WAL, checkpoints, snapshot contracts, crash/recovery."""

import json

import pytest

from repro.core.command import Command
from repro.core.controller import ControllerConfig
from repro.core.execution.locks import GLOBAL, LockMode, LockTable
from repro.core.execution.plan import CommandPlan, NodeState
from repro.core.execution.queues import DeviceQueues
from repro.core.lineage import UNSET, Lineage, LineageTable, LockAccess
from repro.errors import HubCrashedError, SafeHomeError
from repro.hub.durability import (DurabilityConfig, WriteAheadLog,
                                  state_digest)
from repro.hub.log import FeedbackKind
from repro.hub.safehome import SafeHome
from tests.conftest import routine


def build_home(model="ev", execution=None, seed=3, durability=True,
               config=None):
    home = SafeHome(visibility=model, execution=execution, seed=seed,
                    durability=durability, config=config)
    home.add_device("window", "w")
    home.add_device("ac", "a")
    home.add_device("light", "l")
    home.register_routine_spec({"routineName": "cool", "commands": [
        {"device": "w", "action": "CLOSED", "durationSec": 2},
        {"device": "a", "action": "ON", "durationSec": 3}]})
    home.register_routine_spec({"routineName": "party", "commands": [
        {"device": "l", "action": "ON", "durationSec": 1},
        {"device": "a", "action": "OFF", "durationSec": 2}]})
    home.plan_failure("l", fail_at=1.5, restart_at=4.0)
    home.invoke("cool")
    home.invoke("party", at=0.5)
    return home


def report_json(home):
    return json.dumps(home.report().row(), sort_keys=True, default=repr)


def build_home_run():
    home = build_home()
    home.run()
    return home


class TestWriteAheadLog:
    def test_append_and_views(self):
        wal = WriteAheadLog()
        wal.append("device-added", {"type": "light", "name": "l"}, 0.0)
        wal.append("command-dispatched", {"routine_id": 0}, 1.0)
        assert len(wal.inputs()) == 1
        assert len(wal.observations()) == 1
        assert wal.stats()["_total"] == 2

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            WriteAheadLog().append("nonsense", {}, 0.0)

    def test_json_round_trip(self):
        wal = WriteAheadLog()
        wal.append("invoked", {"spec": {"routineName": "r"}, "when": 1.5},
                   1.5)
        wal.append("detection", {"kind": "failure", "device_id": 2}, 2.0)
        restored = WriteAheadLog.from_json(wal.to_json())
        assert [r.to_dict() for r in restored.records] == \
            [r.to_dict() for r in wal.records]

    def test_compaction_drops_only_old_observations(self):
        wal = WriteAheadLog()
        wal.append("device-added", {"name": "d"}, 0.0)
        wal.append("command-acked", {"i": 0}, 0.1)
        wal.append("command-acked", {"i": 1}, 0.2)
        floor = wal.records[-1].seq
        removed = wal.compact(floor)
        assert removed == 1
        assert [r.type for r in wal.records] == \
            ["device-added", "command-acked"]
        assert wal.compacted_observations == 1


class TestSnapshotContracts:
    def test_lock_table_round_trip(self):
        table = LockTable()
        table.acquire(1, GLOBAL, now=0.5)
        table.acquire(2, GLOBAL, now=0.7)           # queued FIFO
        table.acquire(1, 7, mode=LockMode.SHARED, now=0.9, deadline=5.0)
        snap = table.snapshot()
        restored = LockTable()
        restored.restore(snap)
        assert restored.holds(1, GLOBAL)
        assert restored.waiting_on(2) == [GLOBAL]
        assert restored.snapshot() == snap
        # the snapshot is JSON-serializable as-is
        json.dumps(snap)

    def test_command_plan_round_trip(self):
        commands = [Command(device_id=0, value="ON", duration=1.0),
                    Command(device_id=1, value="ON", duration=1.0),
                    Command(device_id=0, value="OFF", duration=1.0)]
        plan = CommandPlan(commands, strategy="parallel")
        plan.mark_issued(plan.ready_indexes()[0], now=0.0)
        plan.mark_done(0, now=1.0)
        snap = plan.snapshot()
        clone = CommandPlan(commands, strategy="parallel")
        clone.restore(snap)
        assert clone.nodes[0].state is NodeState.DONE
        assert clone.remaining() == plan.remaining()
        assert clone.ready_indexes() == plan.ready_indexes()

    def test_command_plan_restore_rejects_mismatch(self):
        commands = [Command(device_id=0, value="ON", duration=1.0)]
        snap = CommandPlan(commands, strategy="serial").snapshot()
        with pytest.raises(ValueError):
            CommandPlan(commands, strategy="parallel").restore(snap)

    def test_device_queue_snapshot(self):
        queues = DeviceQueues()
        queues.submit(1, lambda: True)
        queues.submit(1, lambda: True)
        assert queues.snapshot() == {"busy": [1], "depths": {1: 1}}

    def test_lineage_round_trip(self):
        lineage = Lineage(4, committed_state="OFF")
        lineage.append(LockAccess(routine_id=1, device_id=4,
                                  planned_start=0.0, duration=2.0))
        lineage.acquire(1, 0.1)
        lineage.entries[0].applied_value = "ON"
        lineage.release(1, 0.4)
        lineage.append(LockAccess(routine_id=2, device_id=4,
                                  planned_start=2.0, duration=1.0))
        restored = Lineage(4)
        restored.restore(lineage.snapshot())
        assert restored.owners() == [1, 2]
        assert restored.inferred_state() == "ON"
        assert restored.entries[1].applied_value is UNSET
        assert restored.snapshot() == lineage.snapshot()

    def test_lineage_table_round_trip(self):
        table = LineageTable(committed_lookup=lambda d: "OFF")
        table.lineage(0).append(LockAccess(routine_id=9, device_id=0))
        restored = LineageTable()
        restored.restore(table.snapshot())
        assert restored.lineage(0).owners() == [9]

    def test_registry_full_round_trip(self, home_factory):
        home = home_factory(n_devices=2)
        device = home.registry.get(0)
        device.apply("ON", 1.0, source=7)
        home.registry.get(1).fail()
        snap = home.registry.snapshot_full()
        device.state = "SCRAMBLED"
        home.registry.get(1).restart()
        home.registry.restore_full(snap)
        assert home.registry.get(0).state == "ON"
        assert home.registry.get(1).failed

    def test_controller_snapshots_are_digestable(self):
        for model in ("wv", "gsv", "psv", "ev", "occ"):
            home = build_home(model=model)
            home.run(until=1.0)
            digest = state_digest(home._capture_state())
            assert len(digest) == 64


class TestCrashRecoverApi:
    def test_crash_requires_durability(self):
        home = SafeHome(visibility="ev", durability=None)
        with pytest.raises(SafeHomeError):
            home.crash(after_events=1)

    def test_crash_needs_exactly_one_point(self):
        home = build_home()
        with pytest.raises(ValueError):
            home.crash()
        with pytest.raises(ValueError):
            home.crash(at=1.0, after_events=5)

    def test_crashed_hub_rejects_operations(self):
        home = build_home()
        home.crash(after_events=5)
        home.run()
        assert home.crashed
        with pytest.raises(HubCrashedError):
            home.run()
        with pytest.raises(HubCrashedError):
            home.invoke("cool")
        with pytest.raises(HubCrashedError):
            home.add_device("light", "l2")

    def test_recover_requires_crash(self):
        home = build_home()
        with pytest.raises(SafeHomeError):
            home.recover()

    def test_crash_at_time_past_end_never_fires(self):
        home = build_home()
        home.crash(at=1e6)
        home.run()
        assert not home.crashed
        # makespan is the natural end, not the crash bound
        assert home.last_result.makespan < 1e5

    def test_journaling_does_not_change_behavior(self):
        durable = build_home(durability=True)
        durable.run()
        plain = build_home(durability=False)
        plain.run()
        assert report_json(durable) == report_json(plain)

    def test_recovery_report_counts(self):
        home = build_home()
        home.crash(after_events=10)
        home.run()
        report = home.recover()
        assert report.mode == "replay"
        assert report.crash_events == 10
        assert report.replayed_events == 10
        assert report.replayed_records > 0
        assert home.recoveries == [report]

    def test_multi_crash_recover_is_congruent(self):
        baseline = build_home()
        baseline.run()
        home = build_home()
        for point in (8, 20, 33):
            home.crash(after_events=point)
            home.run()
            home.recover()
        home.run()
        assert report_json(home) == report_json(baseline)
        assert len(home.recoveries) == 3

    def test_checkpoints_and_compaction_stay_congruent(self):
        config = DurabilityConfig(checkpoint_every=5,
                                  compact_on_checkpoint=True)
        baseline = build_home(durability=config)
        baseline.run()
        home = build_home(durability=DurabilityConfig(
            checkpoint_every=5, compact_on_checkpoint=True))
        home.crash(after_events=30)
        home.run()
        report = home.recover()
        home.run()
        assert report.checkpoints_verified > 0
        assert report_json(home) == report_json(baseline)

    def test_failed_recovery_leaves_hub_crashed_and_retryable(self,
                                                              monkeypatch):
        """Regression: an exception escaping replay used to leave the
        hub marked alive on a half-replayed stack."""
        home = build_home()
        home.crash(after_events=10)
        home.run()
        original = SafeHome._replay_input
        calls = {"n": 0}

        def explode_once(self, record):
            calls["n"] += 1
            if calls["n"] == 3:
                raise RuntimeError("boom mid-replay")
            return original(self, record)

        monkeypatch.setattr(SafeHome, "_replay_input", explode_once)
        with pytest.raises(RuntimeError):
            home.recover()
        assert home.crashed
        with pytest.raises(HubCrashedError):
            home.invoke("cool")
        monkeypatch.setattr(SafeHome, "_replay_input", original)
        report = home.recover()      # retry succeeds on the intact WAL
        home.run()
        assert report.replayed_events == 10
        assert report_json(home) == report_json(build_home_run())

    def test_wal_survives_crash_and_serializes(self):
        home = build_home()
        home.crash(after_events=12)
        home.run()
        home.recover()
        home.run()
        restored = WriteAheadLog.from_json(home.wal.to_json())
        types = [r.type for r in restored.records]
        assert "crash" in types and "recovery" in types
        assert types[0] == "home-created"


class TestRecoveryPolicy:
    def test_policy_table(self):
        expected = {"wv": "resume", "gsv": "abort", "sgsv": "abort",
                    "psv": "abort", "ev": "resume", "occ": "resume"}
        from repro.core.visibility import VisibilityModel, _CONTROLLERS
        for model, policy in expected.items():
            cls = _CONTROLLERS[VisibilityModel.parse(model)]
            assert cls.hub_recovery_policy == policy, model

    @pytest.mark.parametrize("model,aborts", [
        ("gsv", True), ("psv", True), ("wv", False), ("ev", False),
        ("occ", False)])
    def test_policy_mode_fate_of_running_routines(self, model, aborts):
        home = build_home(model=model)
        home.crash(at=0.8)        # mid-execution for every model
        home.run()
        report = home.recover(mode="policy")
        home.run()
        assert bool(report.aborted) == aborts
        if aborts:
            run = home.controller.run_by_id(report.aborted[0])
            assert "hub" in run.abort_reason

    def test_ev_policy_mode_stays_congruent(self):
        baseline = build_home(model="ev")
        baseline.run()
        home = build_home(model="ev")
        home.crash(at=0.8)
        home.run()
        home.recover(mode="policy")
        home.run()
        assert report_json(home) == report_json(baseline)


class TestFeedbackRestartWiring:
    def test_device_restart_feedback_emitted_live(self):
        """Regression: DEVICE_RESTARTED entries used to require an
        explicit record_detections() back-fill and were dropped in
        every live path."""
        home = build_home(durability=False)
        home.run()
        kinds = [e.kind for e in home.feedback.entries]
        assert FeedbackKind.DEVICE_FAILED in kinds
        assert FeedbackKind.DEVICE_RESTARTED in kinds

    def test_record_detections_is_idempotent_after_live_wiring(self):
        home = build_home(durability=False)
        home.run()
        before = len(home.feedback.entries)
        home.feedback.record_detections()
        home.feedback.record_detections()
        assert len(home.feedback.entries) == before

    def test_late_attached_log_backfills_without_duplicates(self):
        """Regression: a log attached to an already-running controller
        used to refold the live tail and skip the pre-attach head."""
        from repro.hub.log import FeedbackLog

        home = build_home(durability=False)
        home.run(until=3.0)            # failure@1.5 detected ~2.1
        assert home.controller.detection_events
        late = FeedbackLog(home.controller)
        home.run()                      # restart@4.0 arrives live
        late.record_detections()        # back-fill the pre-attach head
        late.record_detections()        # idempotent
        detections = [(e.kind, e.detail) for e in late.entries
                      if e.kind in (FeedbackKind.DEVICE_FAILED,
                                    FeedbackKind.DEVICE_RESTARTED)]
        assert len(detections) == len(home.controller.detection_events)
        assert len(set(detections)) == len(detections)

    def test_hub_crash_and_restart_feedback(self):
        home = build_home()
        home.crash(after_events=10)
        home.run()
        home.recover()
        kinds = [e.kind for e in home.feedback.entries]
        assert FeedbackKind.HUB_CRASHED in kinds
        assert FeedbackKind.HUB_RESTARTED in kinds


class TestParallelDispatchRegression:
    def test_believed_failed_device_does_not_double_issue(self,
                                                          home_factory):
        """Regression: a command to a believed-failed device resolves
        synchronously, re-entering _dispatch mid-iteration; the outer
        loop then issued later-ready nodes a second time."""
        config = ControllerConfig(execution="parallel")
        home = home_factory(model="ev", n_devices=3, config=config)
        home.detect_failure(0, at=0.0)
        home.submit(routine("r", [(0, "ON", 1.0, False),
                                  (1, "ON", 1.0), (2, "ON", 1.0)]),
                    when=0.5)
        result = home.run()
        assert result.runs[0].done


class TestObservationBuffering:
    """WAL observations buffer per event boundary (PR 5)."""

    def test_buffer_flushes_in_order_before_inputs(self):
        from repro.hub.durability.wal import WriteAheadLog

        wal = WriteAheadLog()
        wal.append("device-added", {"type": "light", "name": "a"}, 0.0)
        wal.buffer_observation("routine-submitted", {"routine_id": 0}, 1.0)
        wal.buffer_observation("lineage-placed", {"routine_id": 0}, 1.0)
        assert len(wal) == 3                      # pending counted
        # An input append drains the buffer first, keeping total order.
        wal.append("invoked", {"spec": {}}, 2.0)
        types = [record.type for record in wal.records]
        assert types == ["device-added", "routine-submitted",
                         "lineage-placed", "invoked"]
        assert [record.seq for record in wal.records] == [0, 1, 2, 3]

    def test_reads_and_compaction_drain_the_buffer(self):
        from repro.hub.durability.wal import WriteAheadLog

        wal = WriteAheadLog()
        wal.buffer_observation("admission", {"routine_id": 1}, 0.5)
        assert wal.observations()[0].type == "admission"
        wal.buffer_observation("detection", {"kind": "failure"}, 0.7)
        assert wal.flush() == 1
        assert wal.compact(below_seq=1) == 1
        assert [r.type for r in wal.records] == ["detection"]

    def test_buffer_rejects_non_observation_types(self):
        from repro.hub.durability.wal import WriteAheadLog

        wal = WriteAheadLog()
        with pytest.raises(ValueError):
            wal.buffer_observation("invoked", {}, 0.0)

    def test_canonical_payload_memoized_and_shared_by_copy(self):
        from repro.hub.durability.wal import WriteAheadLog

        wal = WriteAheadLog()
        record = wal.append("detection", {"kind": "failure",
                                          "device_id": 3}, 1.0)
        first = record.identity()
        assert record._canonical is not None
        copied = WriteAheadLog().copy_record(record)
        assert copied._canonical is record._canonical
        assert copied.identity()[1:] == first[1:]
