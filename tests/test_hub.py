"""Tests for the SafeHome hub facade, routine bank and failure detector."""

import pytest

from repro.core.controller import RoutineStatus
from repro.core.routine import Routine
from repro.core.command import Command
from repro.errors import RoutineSpecError
from repro.hub.routine_bank import RoutineBank
from repro.hub.safehome import SafeHome


def plain_routine(name="r", device=0):
    return Routine(name=name, commands=[
        Command(device_id=device, value="ON", duration=1.0)])


class TestRoutineBank:
    def test_register_and_get(self):
        bank = RoutineBank()
        bank.register(plain_routine("a"))
        assert "a" in bank
        assert bank.get("a").name == "a"
        assert bank.names() == ["a"]

    def test_duplicate_rejected_unless_replace(self):
        bank = RoutineBank()
        bank.register(plain_routine("a"))
        with pytest.raises(RoutineSpecError):
            bank.register(plain_routine("a"))
        bank.register(plain_routine("a"), replace=True)

    def test_unknown_name(self):
        with pytest.raises(RoutineSpecError):
            RoutineBank().get("missing")

    def test_instantiate_returns_fresh_copy(self):
        bank = RoutineBank()
        bank.register(plain_routine("a"))
        first = bank.instantiate("a")
        second = bank.instantiate("a")
        assert first is not second
        assert first.commands[0] is not second.commands[0]


class TestSafeHomeFacade:
    def test_quickstart_flow(self):
        home = SafeHome(visibility="ev", scheduler="timeline")
        home.add_device("window", "living-window")
        home.add_device("ac", "living-ac")
        home.register_routine_spec({
            "routineName": "cooling",
            "commands": [
                {"device": "living-window", "action": "CLOSED",
                 "durationSec": 2},
                {"device": "living-ac", "action": "ON", "durationSec": 2},
            ],
        })
        home.invoke("cooling")
        result = home.run()
        assert result.runs[0].status is RoutineStatus.COMMITTED
        assert home.state_of("living-window") == "CLOSED"
        assert home.state_of("living-ac") == "ON"

    def test_invoke_routine_object_directly(self):
        home = SafeHome(visibility="wv")
        home.add_device("plug", "p")
        run = home.invoke(plain_routine("adhoc"))
        home.run()
        assert run.status is RoutineStatus.COMMITTED

    def test_invoke_repeating_trigger(self):
        home = SafeHome(visibility="ev")
        home.add_device("plug", "p")
        home.register_routine(plain_routine("tick"))
        runs = home.invoke_repeating("tick", start_at=0.0, period=10.0,
                                     count=3)
        home.run()
        assert [round(r.submit_time) for r in runs] == [0, 10, 20]
        assert all(r.status is RoutineStatus.COMMITTED for r in runs)

    def test_planned_failure_aborts_and_detector_sees_it(self):
        home = SafeHome(visibility="ev")
        home.add_device("plug", "a")
        home.add_device("plug", "b")
        home.register_routine_spec({
            "routineName": "r",
            "commands": [
                {"device": "a", "action": "ON", "durationSec": 10},
                {"device": "b", "action": "ON", "durationSec": 1},
            ],
        })
        home.plan_failure("a", fail_at=3.0)
        home.invoke("r")
        result = home.run()
        assert result.runs[0].status is RoutineStatus.ABORTED
        assert ("failure", 0) in {(kind, dev) for kind, dev, _t
                                  in result.detection_events}

    def test_detector_detects_restart(self):
        home = SafeHome(visibility="ev")
        home.add_device("plug", "a")
        home.register_routine_spec({
            "routineName": "r",
            "commands": [{"device": "a", "action": "ON",
                          "durationSec": 30}],
        })
        home.plan_failure("a", fail_at=5.0, restart_at=8.0)
        home.invoke("r")
        result = home.run()
        kinds = [kind for kind, _d, _t in result.detection_events]
        assert "failure" in kinds and "restart" in kinds

    def test_detection_latency_bounded_by_ping_period(self):
        home = SafeHome(visibility="ev", detector_ping_period_s=1.0)
        home.add_device("plug", "a")
        home.register_routine_spec({
            "routineName": "r",
            "commands": [{"device": "a", "action": "ON",
                          "durationSec": 30}],
        })
        home.plan_failure("a", fail_at=5.0)
        home.invoke("r")
        result = home.run()
        failure_events = [t for kind, _d, t in result.detection_events
                          if kind == "failure"]
        assert failure_events and failure_events[0] - 5.0 < 2.5

    def test_unknown_visibility_rejected(self):
        with pytest.raises(ValueError):
            SafeHome(visibility="quantum")
