"""Soak/load tier for service mode.

Three gates over the served hub:

* **Threaded soak** — 8 concurrent closed-loop clients against 2 live
  homes at ``speedup=500`` (well above the >=100 the issue demands),
  thousands of routines by default.  Asserts the safety properties a
  long-lived service must hold: no deadlock (every client and the
  serve loop finish), every ticket reaches a terminal state, queue
  depth stays bounded, the virtual clock never regresses, and every
  home's congruence-oracle report is clean.
* **Per-model virtual soak** — the same closed loop, inline and
  virtual-paced, across all five visibility models.
* **Determinism** — two virtual-paced serves with the same seed are
  byte-identical in both the final report and the SLO status JSON.

``REPRO_SOAK_ROUTINES`` scales the per-tenant routine count (CI runs a
reduced soak; the default exercises thousands of routines).
"""

import os

import pytest

from repro.serve import (ServeConfig, ServeHub, ThreadedClient,
                         build_serve_home, run_closed_loop)
from repro.sim.random import derive_seed

MODELS = ("wv", "gsv", "psv", "ev", "occ")

#: Routines per tenant in the threaded soak (8 tenants, so the default
#: drives 2000 routines through the service).
SOAK_ROUTINES = int(os.environ.get("REPRO_SOAK_ROUTINES", "250"))


def build_hub(model="ev", homes=2, tenants=8, seed=21,
              **config_kwargs):
    hub = ServeHub(
        {f"home-{i}": build_serve_home(
            model=model, seed=derive_seed(seed, f"home-{i}"))
         for i in range(homes)},
        ServeConfig(**config_kwargs))
    for i in range(tenants):
        hub.add_tenant(f"t{i}", weight=1 + (i % 3))
    return hub


class TestThreadedSoak:
    def test_soak_under_concurrent_load(self):
        capacity = 32
        hub = build_hub(speedup=500.0, queue_capacity=capacity)
        hub.start()
        clients = [ThreadedClient(hub, f"t{i}", count=SOAK_ROUTINES,
                                  seed=13)
                   for i in range(8)]
        for client in clients:
            client.start()
        for client in clients:
            # A generous bound: if a client is still alive here the
            # service deadlocked or livelocked.
            client.join(timeout=300.0)
            assert not client.is_alive(), \
                f"client {client.tenant} never finished (deadlock?)"
        hub.shutdown(drain=True, timeout=120.0)

        for client in clients:
            assert client.error is None, repr(client.error)
            assert client.timeouts == 0
            assert client.refused == 0
            assert len(client.tickets) == SOAK_ROUTINES
            assert all(ticket.status in ("committed", "aborted")
                       for ticket in client.tickets)
            assert all(ticket.done.is_set()
                       for ticket in client.tickets)

        status = hub.status(include_wall=True)
        # Monotone virtual clock across every pacing driver.
        assert status["wall"]["clock_regressions"] == 0
        # Bounded queues, fully drained service.
        assert status["in_flight"] == 0
        assert status["queue"]["depth"] == 0
        for row in status["tenants"].values():
            assert row["max_depth"] <= capacity
            assert row["admitted"] == SOAK_ROUTINES
            assert row["committed"] + row["aborted"] == SOAK_ROUTINES
        total = 8 * SOAK_ROUTINES
        assert status["latency"]["total"]["n"] == total
        assert status["latency"]["total"]["p99"] > 0

        # Every served home replays oracle-clean.
        for name, report in hub.oracle_reports().items():
            assert report.violations == [], (name, report.violations)


class TestVirtualSoakPerModel:
    @pytest.mark.parametrize("model", MODELS)
    def test_virtual_paced_soak_is_oracle_clean(self, model):
        per_tenant = max(10, SOAK_ROUTINES // 10)
        hub = build_hub(model=model, seed=37)
        submitted = run_closed_loop(hub, per_tenant=per_tenant, seed=5)
        assert all(count == per_tenant for count in submitted.values())
        status = hub.status()
        assert status["state"] == "stopped"
        assert status["in_flight"] == 0
        assert status["queue"]["depth"] == 0
        assert sum(driver.clock_regressions
                   for driver in hub.drivers.values()) == 0
        for row in status["tenants"].values():
            assert row["max_depth"] <= hub.config.queue_capacity
            assert row["committed"] + row["aborted"] == per_tenant
        for name, report in hub.oracle_reports().items():
            assert report.violations == [], (name, model)


class TestServeDeterminism:
    @pytest.mark.parametrize("model", MODELS)
    def test_same_seed_virtual_paced_serve_is_byte_identical(self, model):
        def one_run():
            hub = build_hub(model=model, seed=11)
            run_closed_loop(hub, per_tenant=20, seed=17)
            return hub.final_report_json(), hub.status_json()

        first_report, first_status = one_run()
        second_report, second_status = one_run()
        assert first_report == second_report
        assert first_status == second_status
        assert first_report.endswith("\n")
