"""Tests for the asynchronous device driver."""

import pytest

from repro.devices.driver import CommandOutcome, Driver
from repro.devices.network import LatencyModel
from repro.devices.registry import DeviceRegistry
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


def make_stack(latency_ms=10.0, timeout_s=0.1):
    sim = Simulator()
    registry = DeviceRegistry()
    registry.create_many("plug", 3)
    driver = Driver(sim=sim, registry=registry,
                    latency=LatencyModel.deterministic(latency_ms),
                    streams=RandomStreams(seed=0), timeout_s=timeout_s)
    return sim, registry, driver


class TestIssue:
    def test_apply_after_latency(self):
        sim, registry, driver = make_stack(latency_ms=10.0)
        outcomes = []
        driver.issue(0, "ON", source=1,
                     callback=lambda outcome, prior: outcomes.append(outcome))
        sim.run()
        assert outcomes == [CommandOutcome.APPLIED]
        assert registry.get(0).state == "ON"
        assert sim.now == pytest.approx(0.01)

    def test_timeout_on_failed_device(self):
        sim, registry, driver = make_stack(latency_ms=10.0, timeout_s=0.1)
        registry.get(0).fail()
        outcomes = []
        driver.issue(0, "ON", source=1,
                     callback=lambda outcome, prior: outcomes.append(outcome))
        sim.run()
        assert outcomes == [CommandOutcome.TIMED_OUT]
        assert registry.get(0).state == "OFF"
        assert sim.now == pytest.approx(0.11)

    def test_timeout_reports_to_hook(self):
        sim, registry, driver = make_stack()
        registry.get(1).fail()
        reported = []
        driver.on_timeout = reported.append
        driver.issue(1, "ON", source=1,
                     callback=lambda outcome, prior: None)
        sim.run()
        assert reported == [1]

    def test_failure_mid_flight_times_out(self):
        # Device fails after issue but before the command lands.
        sim, registry, driver = make_stack(latency_ms=50.0)
        outcomes = []
        driver.issue(0, "ON", source=1,
                     callback=lambda outcome, prior: outcomes.append(outcome))
        sim.call_at(0.02, registry.get(0).fail)
        sim.run()
        assert outcomes == [CommandOutcome.TIMED_OUT]

    def test_records_audit_log(self):
        sim, registry, driver = make_stack()
        driver.issue(0, "ON", source=9,
                     callback=lambda outcome, prior: None)
        sim.run()
        record = driver.records[0]
        assert record.device_id == 0
        assert record.outcome is CommandOutcome.APPLIED
        assert record.source == 9


class TestPing:
    def test_ping_up_device(self):
        sim, registry, driver = make_stack()
        outcomes = []
        driver.ping(0, outcomes.append)
        sim.run()
        assert outcomes == [CommandOutcome.APPLIED]

    def test_ping_failed_device_times_out(self):
        sim, registry, driver = make_stack(timeout_s=0.1)
        registry.get(0).fail()
        outcomes = []
        driver.ping(0, outcomes.append)
        sim.run()
        assert outcomes == [CommandOutcome.TIMED_OUT]
        assert sim.now == pytest.approx(0.11)
