"""Executable specification of Table 2: every example scenario from the
paper, run end-to-end against the corresponding SafeHome feature."""

import pytest

from repro.core.controller import ControllerConfig, RoutineStatus
from tests.conftest import Home, routine

WINDOW, AC = 0, 1


class TestCoolingAtomicity:
    """cooling = {window:CLOSE; AC:ON} — partial execution wastes energy
    or overheats the home; atomicity rolls back."""

    def test_ac_failure_rolls_back_window(self):
        home = Home(model="ev", n_devices=2)
        home.registry.get(AC).fail()
        cooling = home.submit(routine("cooling", [
            (WINDOW, "CLOSED", 1.0), (AC, "ON", 1.0)]))
        result = home.run()
        assert cooling.status is RoutineStatus.ABORTED
        # No window-closed-with-AC-off end state: the window reopens.
        assert result.end_state[WINDOW] == "OFF"  # initial plug state

    def test_complete_run_reaches_goal(self):
        home = Home(model="ev", n_devices=2)
        cooling = home.submit(routine("cooling", [
            (WINDOW, "CLOSED", 1.0), (AC, "ON", 1.0)]))
        result = home.run()
        assert cooling.status is RoutineStatus.COMMITTED
        assert result.end_state == {WINDOW: "CLOSED", AC: "ON"}


class TestMakeCoffeeMutualExclusion:
    """make-coffee must not be interrupted by another user's invocation
    of the same routine (long running + mutually exclusive access)."""

    def test_two_users_coffee_not_interleaved(self):
        home = Home(model="ev", n_devices=1)
        brew = [(0, "BREWING", 240.0), (0, "OFF", 1.0)]
        first = home.submit(routine("coffee-1", brew), when=0.0)
        second = home.submit(routine("coffee-2", brew), when=60.0)
        result = home.run()
        # The second brew starts only after the first one's OFF.
        assert second.start_time >= first.finish_time - 1.0
        log = result.device_write_logs[0]
        values = [value for _t, value, _s in log]
        assert values == ["BREWING", "OFF", "BREWING", "OFF"]


class TestGSVForAmperage:
    """Low-amperage home: dishwasher and dryer must not run together,
    even though they touch disjoint devices — that is GSV's job."""

    def test_gsv_serializes_disjoint_power_hogs(self):
        home = Home(model="gsv", n_devices=2)
        dish = home.submit(routine("dishwash", [(0, "ON", 2400.0),
                                                (0, "OFF", 1.0)]),
                           when=0.0)
        dryer = home.submit(routine("dryer", [(1, "ON", 1200.0),
                                              (1, "OFF", 1.0)]),
                            when=0.0)
        home.run()
        overlap = min(dish.finish_time, dryer.finish_time) - \
            max(dish.start_time, dryer.start_time)
        assert overlap <= 0.0

    def test_psv_would_run_them_together(self):
        home = Home(model="psv", n_devices=2)
        dish = home.submit(routine("dishwash", [(0, "ON", 2400.0)]),
                           when=0.0)
        dryer = home.submit(routine("dryer", [(1, "ON", 1200.0)]),
                            when=0.0)
        home.run()
        overlap = min(dish.finish_time, dryer.finish_time) - \
            max(dish.start_time, dryer.start_time)
        assert overlap > 0.0


class TestBreakfastPipelining:
    """Two users invoke breakfast simultaneously: EV pipelines, PSV/GSV
    serialize (§2.1)."""

    BREAKFAST = [(0, "ON", 240.0), (0, "OFF", 1.0),
                 (1, "ON", 300.0), (1, "OFF", 1.0)]

    def makespan(self, model):
        home = Home(model=model, n_devices=2)
        home.submit(routine("b1", self.BREAKFAST), when=0.0)
        home.submit(routine("b2", self.BREAKFAST), when=0.0)
        result = home.run()
        return max(r.finish_time for r in result.runs)

    def test_ev_pipelines_psv_serializes(self):
        assert self.makespan("ev") < self.makespan("psv") - 100.0

    def test_both_users_get_breakfast(self):
        home = Home(model="ev", n_devices=2)
        b1 = home.submit(routine("b1", self.BREAKFAST), when=0.0)
        b2 = home.submit(routine("b2", self.BREAKFAST), when=0.0)
        home.run()
        assert b1.status is RoutineStatus.COMMITTED
        assert b2.status is RoutineStatus.COMMITTED


class TestLeaveHomeMustBestEffort:
    """leave-home = {lights:OFF (best-effort); door:LOCK (must)}."""

    LIGHTS, DOOR = 0, 1

    def test_door_locks_despite_dead_light(self):
        home = Home(model="ev", n_devices=2)
        home.registry.get(self.LIGHTS).fail()
        leave = home.submit(routine("leave-home", [
            (self.LIGHTS, "OFF", 1.0, False), (self.DOOR, "LOCKED", 1.0)]))
        result = home.run()
        assert leave.status is RoutineStatus.COMMITTED
        assert result.end_state[self.DOOR] == "LOCKED"
        assert leave.executions[0].skipped  # feedback about the light

    def test_dead_door_aborts_routine(self):
        home = Home(model="ev", n_devices=2)
        home.registry.get(self.DOOR).fail()
        leave = home.submit(routine("leave-home", [
            (self.LIGHTS, "OFF", 1.0, False), (self.DOOR, "LOCKED", 1.0)]))
        result = home.run()
        assert leave.status is RoutineStatus.ABORTED


class TestManufacturingPipelineSGSV:
    """k-stage pipeline: any failure stops everything — Strong GSV."""

    def test_any_stage_failure_stops_running_routine(self):
        home = Home(model="sgsv", n_devices=4)
        stage1 = home.submit(routine("stage1", [(0, "RUN", 30.0)]),
                             when=0.0)
        stage2 = home.submit(routine("stage2", [(1, "RUN", 30.0)]),
                             when=0.0)
        home.detect_failure(3, at=5.0)  # an unrelated stage's device
        home.run()
        assert stage1.status is RoutineStatus.ABORTED
        # stage2 was queued behind stage1 and runs afterwards.
        assert stage2.status is RoutineStatus.COMMITTED


class TestCoolingFailureSerialization:
    """The cooling routine under each model's failure rule (Table 2's
    last four rows). The window fails right after it was closed."""

    def submit_and_fail(self, model, restart_at=None):
        home = Home(model=model, n_devices=2)
        cooling = home.submit(routine("cooling", [
            (WINDOW, "CLOSED", 2.0), (AC, "ON", 20.0)]), when=0.0)
        home.detect_failure(WINDOW, at=10.0)
        if restart_at is not None:
            home.detect_restart(WINDOW, at=restart_at)
        home.run()
        return cooling

    def test_gsv_always_aborts(self):
        assert self.submit_and_fail("gsv").status is RoutineStatus.ABORTED

    def test_psv_aborts_if_still_failed_at_finish(self):
        assert self.submit_and_fail("psv").status is RoutineStatus.ABORTED

    def test_psv_completes_if_recovered_by_finish(self):
        cooling = self.submit_and_fail("psv", restart_at=15.0)
        assert cooling.status is RoutineStatus.COMMITTED

    def test_ev_completes_failure_serialized_after(self):
        assert self.submit_and_fail("ev").status is \
            RoutineStatus.COMMITTED
