"""repro fsck: golden corrupt fixtures, exit codes, typed-error
context pins, fleet-spool verification and the corruption-grid
property (zero silent divergences)."""

import json
import os
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.errors import CorruptionError, RecoveryError, SafeHomeError
from repro.fleet.spool import (SpoolWriter, home_wal_record,
                               load_spooled_home, merge_spool)
from repro.hub.durability.faults import (FAULT_KINDS, build_durable_home,
                                         inject_fault,
                                         run_corruption_matrix)
from repro.hub.durability.fsck import (REPORT_SCHEMA,
                                       _build_home_from_records, fsck_path)
from repro.hub.durability.storage import scan_wal_dir

FIXTURE_ROOT = Path(__file__).parent / "fixtures" / "fsck"


def build_wal(tmp_path, model="ev", execution="serial", seed=3,
              checkpoint_every=8):
    wal_dir = str(tmp_path / "wal")
    os.makedirs(wal_dir)
    home = build_durable_home(model, execution, wal_dir, seed=seed,
                              checkpoint_every=checkpoint_every)
    return home, wal_dir


class TestGoldenFixtures:
    """The committed damaged logs must keep producing byte-exact
    reports (regenerate with scripts/gen_fsck_fixtures.py)."""

    @pytest.mark.parametrize("name", ["torn-tail", "flipped-bit",
                                      "bad-seal"])
    def test_fixture_report_is_byte_exact(self, name):
        fixture = FIXTURE_ROOT / name
        expected = json.loads((fixture / "expected.json").read_text())
        before = {p.name: p.read_bytes()
                  for p in fixture.glob("wal-*.seg")}
        report = fsck_path(str(fixture), salvage=True)
        assert json.dumps(report.to_dict(), sort_keys=True) == \
            json.dumps(expected["report"], sort_keys=True)
        # fsck is read-only: the fixture bytes must survive the pass.
        after = {p.name: p.read_bytes()
                 for p in fixture.glob("wal-*.seg")}
        assert before == after

    def test_fixture_statuses_cover_the_taxonomy(self):
        statuses = {}
        for name in ("torn-tail", "flipped-bit", "bad-seal"):
            expected = json.loads(
                (FIXTURE_ROOT / name / "expected.json").read_text())
            statuses[name] = (expected["report"]["status"],
                              expected["report"]["exit_code"])
        assert statuses["torn-tail"] == ("truncated", 0)
        assert statuses["flipped-bit"] == ("corrupt", 1)
        assert statuses["bad-seal"] == ("corrupt", 1)


class TestCliExitCodes:
    def test_clean_log_exits_zero(self, tmp_path, capsys):
        _home, wal_dir = build_wal(tmp_path)
        assert cli_main(["fsck", wal_dir]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == REPORT_SCHEMA
        assert doc["status"] == "clean" and doc["clean_close"]
        assert doc["verify"]["ok"] and doc["verify"]["oracle"]["ok"]

    def test_torn_tail_exits_zero(self, tmp_path, capsys):
        _home, wal_dir = build_wal(tmp_path)
        inject_fault(wal_dir, "torn-tail", seed=0)
        assert cli_main(["fsck", wal_dir]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["status"] == "truncated"
        assert doc["truncated"]["bytes_dropped"] > 0

    def test_corruption_without_salvage_exits_two(self, tmp_path, capsys):
        _home, wal_dir = build_wal(tmp_path)
        inject_fault(wal_dir, "bit-flip", seed=1)
        assert cli_main(["fsck", wal_dir]) == 2
        doc = json.loads(capsys.readouterr().out)
        assert doc["status"] == "corrupt"
        assert doc["salvage"] is None
        # The report carries the full damage context.
        assert doc["corruption"]["offset"] is not None
        assert doc["corruption"]["seq"] is not None

    def test_salvage_exits_one_when_oracle_clean(self, tmp_path, capsys):
        _home, wal_dir = build_wal(tmp_path)
        inject_fault(wal_dir, "bit-flip", seed=1)
        assert cli_main(["fsck", wal_dir, "--salvage"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["salvage"]["ok"]
        assert doc["salvage"]["oracle"]["ok"]

    def test_report_file_written(self, tmp_path):
        _home, wal_dir = build_wal(tmp_path)
        out = str(tmp_path / "report.json")
        assert cli_main(["fsck", wal_dir, "--report", out]) == 0
        doc = json.loads(Path(out).read_text())
        assert doc["schema"] == REPORT_SCHEMA

    def test_not_a_wal_dir_exits_two(self, tmp_path, capsys):
        assert cli_main(["fsck", str(tmp_path)]) == 2
        assert "neither WAL segments" in capsys.readouterr().err


class TestErrorContextPins:
    """Satellite: Corruption/Recovery errors always carry record seq,
    record type and byte offset."""

    def test_corruption_error_message_format(self, tmp_path):
        _home, wal_dir = build_wal(tmp_path)
        inject_fault(wal_dir, "duplicate-frame", seed=0)
        with pytest.raises(CorruptionError) as excinfo:
            scan_wal_dir(wal_dir)
        error = excinfo.value
        assert error.seq is not None
        assert error.record_type is not None
        assert error.offset is not None
        message = str(error)
        assert message.startswith("corrupt WAL: ")
        assert f"seq={error.seq}" in message
        assert f"type={error.record_type}" in message
        assert f"offset={error.offset}" in message

    def test_unknowable_fields_render_as_question_marks(self):
        error = CorruptionError("boom", path="x.seg")
        assert "seq=?" in str(error)
        assert "type=?" in str(error)
        assert "offset=?" in str(error)

    def test_recovery_error_names_seq_and_type(self, tmp_path):
        # Tamper a logged observation in memory: replay verification
        # must name the diverging record, not just "mismatch".
        home, wal_dir = build_wal(tmp_path)
        scan = scan_wal_dir(wal_dir)
        victim = next(r for r in scan.records if r.is_observation)
        victim.payload["tampered"] = True
        twin = _build_home_from_records(scan.records)
        with pytest.raises(RecoveryError) as excinfo:
            twin.salvage_records(scan.records, bounded=False)
        message = str(excinfo.value)
        assert f"seq {victim.seq}" in message
        assert f"type {victim.type!r}" in message

    def test_checkpoint_mismatch_names_seq(self, tmp_path):
        home, wal_dir = build_wal(tmp_path)
        scan = scan_wal_dir(wal_dir)
        victim = next(r for r in scan.records if r.type == "checkpoint")
        victim.payload["digest"] = "0" * 16
        twin = _build_home_from_records(scan.records)
        with pytest.raises(RecoveryError) as excinfo:
            twin.salvage_records(scan.records, bounded=False)
        message = str(excinfo.value)
        assert f"seq {victim.seq}" in message
        assert "type 'checkpoint'" in message


class TestFleetSpool:
    """Satellite: spool decode errors are typed, indexes are verified."""

    def spool(self, tmp_path, homes=2):
        wal_dir = str(tmp_path / "spool")
        os.makedirs(wal_dir)
        writer = SpoolWriter(wal_dir)
        for home_id in range(homes):
            home = build_durable_home("ev", "serial", None, seed=home_id,
                                      checkpoint_every=8)
            writer.write(home_wal_record(home_id, "chaos", home_id, home))
        writer.close()
        merge_spool(wal_dir, expected_homes=homes)
        return wal_dir

    def test_undecodable_spool_line_is_typed(self, tmp_path):
        wal_dir = str(tmp_path)
        path = os.path.join(wal_dir, "spool-1-1.seg")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"home_id": 0}\n{"home_id": 1, "wal": [tru\n')
        with pytest.raises(CorruptionError) as excinfo:
            merge_spool(wal_dir)
        error = excinfo.value
        assert error.line == 2
        assert error.path == path
        assert "undecodable spool line" in str(error)
        assert "line=2" in str(error)

    def test_stale_index_overrun_detected(self, tmp_path):
        wal_dir = self.spool(tmp_path)
        merged = os.path.join(wal_dir, "fleet-wal.jsonl")
        with open(merged, "r+b") as handle:
            handle.truncate(os.path.getsize(merged) - 10)
        with pytest.raises(CorruptionError, match="overruns"):
            load_spooled_home(wal_dir, 1)

    def test_stale_index_wrong_home_detected(self, tmp_path):
        wal_dir = self.spool(tmp_path)
        index_path = os.path.join(wal_dir, "fleet-wal-index.json")
        doc = json.loads(Path(index_path).read_text())
        doc["index"]["0"], doc["index"]["1"] = \
            doc["index"]["1"], doc["index"]["0"]
        Path(index_path).write_text(json.dumps(doc))
        with pytest.raises(CorruptionError,
                           match="slice for home 0 holds home 1"):
            load_spooled_home(wal_dir, 0)

    def test_misaligned_slice_detected(self, tmp_path):
        wal_dir = self.spool(tmp_path)
        index_path = os.path.join(wal_dir, "fleet-wal-index.json")
        doc = json.loads(Path(index_path).read_text())
        doc["index"]["0"]["offset"] += 3  # no longer line-aligned
        doc["index"]["1"]["offset"] -= 3
        Path(index_path).write_text(json.dumps(doc))
        with pytest.raises(CorruptionError, match="not one whole line"):
            load_spooled_home(wal_dir, 0)

    def test_fleet_fsck_clean_and_corrupt(self, tmp_path, capsys):
        wal_dir = self.spool(tmp_path)
        assert cli_main(["fsck", wal_dir]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["target"] == "fleet"
        assert doc["fleet"]["verified_homes"] == 2
        merged = os.path.join(wal_dir, "fleet-wal.jsonl")
        with open(merged, "r+b") as handle:
            handle.truncate(os.path.getsize(merged) - 10)
        assert cli_main(["fsck", wal_dir]) == 2
        doc = json.loads(capsys.readouterr().out)
        assert doc["status"] == "corrupt"
        assert doc["corruption"]["detail"].startswith("stale index")


class TestCorruptionGrid:
    """The headline property: every model x execution x fault kind
    either reconstructs byte-identical state or fails loudly into an
    oracle-clean salvage — never silently diverges."""

    def test_full_grid_zero_silent_divergences(self, tmp_path):
        matrix = run_corruption_matrix(base_dir=str(tmp_path))
        assert matrix["schema"] == "repro-fsck-matrix/1"
        assert len(matrix["models"]) >= 5
        assert matrix["executions"] == ["serial", "parallel"]
        assert list(matrix["kinds"]) == list(FAULT_KINDS)
        assert len(matrix["trials"]) == (len(matrix["models"])
                                         * 2 * len(FAULT_KINDS))
        assert matrix["silent_divergences"] == 0
        allowed = {"identical", "truncated", "salvaged", "loud-failure"}
        assert set(matrix["outcomes"]) <= allowed
        # Damage is actually being detected, not classified away:
        # every non-tail fault ends in a loud salvage.
        salvaged = [t for t in matrix["trials"]
                    if t["outcome"] == "salvaged"]
        assert len(salvaged) >= len(matrix["trials"]) // 2

    def test_torn_tail_is_always_crash_consistent(self, tmp_path):
        matrix = run_corruption_matrix(
            models=["ev", "gsv"], kinds=["torn-tail"],
            base_dir=str(tmp_path))
        assert matrix["silent_divergences"] == 0
        assert set(t["outcome"] for t in matrix["trials"]) <= \
            {"identical", "truncated"}


class TestDispatch:
    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(SafeHomeError, match="not a WAL directory"):
            fsck_path(str(tmp_path / "nope"))

    def test_merged_file_path_dispatches_to_fleet(self, tmp_path):
        wal_dir = TestFleetSpool().spool(tmp_path)
        report = fsck_path(os.path.join(wal_dir, "fleet-wal.jsonl"))
        assert report.target == "fleet"
        assert report.status == "clean"
