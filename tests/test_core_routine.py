"""Tests for commands and routines."""

import pytest

from repro.core.command import Command, LONG_COMMAND_THRESHOLD_S
from repro.core.routine import Routine, sequential
from repro.errors import RoutineSpecError


class TestCommand:
    def test_defaults(self):
        command = Command(device_id=1, value="ON")
        assert command.must and command.is_write and command.undoable

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Command(device_id=1, value="ON", duration=-1)

    def test_read_takes_no_value(self):
        with pytest.raises(ValueError):
            Command(device_id=1, value="ON", is_read=True)
        read = Command(device_id=1, is_read=True)
        assert read.is_write is False

    def test_long_command_threshold(self):
        assert Command(device_id=1, value="ON",
                       duration=LONG_COMMAND_THRESHOLD_S).is_long
        assert not Command(device_id=1, value="ON", duration=1.0).is_long

    def test_describe(self):
        text = Command(device_id=1, value="ON", duration=2.0,
                       must=False).describe()
        assert "best-effort" in text and "dev1" in text


class TestRoutine:
    def test_requires_commands(self):
        with pytest.raises(RoutineSpecError):
            Routine(name="empty", commands=[])

    def test_device_ids_first_touch_order(self):
        r = sequential("r", [(3, "ON", 1), (1, "ON", 1), (2, "OFF", 1)])
        assert r.device_ids == [3, 1, 2]

    def test_non_contiguous_device_rejected(self):
        with pytest.raises(RoutineSpecError):
            sequential("bad", [(3, "ON", 1), (1, "ON", 1), (3, "OFF", 1)])

    def test_contiguous_repeat_allowed(self):
        r = sequential("ok", [(0, "ON", 4), (0, "OFF", 1), (1, "ON", 5)])
        assert r.device_ids == [0, 1]

    def test_conflicts(self):
        a = sequential("a", [(0, "ON", 1)])
        b = sequential("b", [(0, "OFF", 1), (1, "ON", 1)])
        c = sequential("c", [(2, "ON", 1)])
        assert a.conflicts_with(b)
        assert not a.conflicts_with(c)

    def test_total_duration_and_long(self):
        r = sequential("r", [(0, "ON", 10), (1, "ON", 100)])
        assert r.total_duration == 110
        assert r.is_long

    def test_command_offsets(self):
        r = sequential("r", [(0, "ON", 4), (1, "ON", 5), (2, "ON", 1)])
        assert r.command_offsets() == [0.0, 4.0, 9.0]

    def test_lock_requests_merge_contiguous(self):
        r = sequential("breakfast", [
            (0, "ON", 240), (0, "OFF", 2), (1, "ON", 300), (1, "OFF", 2)])
        requests = r.lock_requests()
        assert len(requests) == 2
        coffee, pancake = requests
        assert coffee.device_id == 0
        assert coffee.offset == 0.0
        assert coffee.duration == pytest.approx(242.0)
        assert pancake.offset == pytest.approx(242.0)
        assert pancake.duration == pytest.approx(302.0)
        assert coffee.command_indexes == (0, 1)

    def test_lock_requests_back_to_back(self):
        r = sequential("r", [(0, "ON", 5), (1, "ON", 7), (2, "ON", 3)])
        requests = r.lock_requests()
        for prev, nxt in zip(requests, requests[1:]):
            assert nxt.offset == pytest.approx(prev.offset + prev.duration)

    def test_final_write_values(self):
        r = sequential("r", [(0, "ON", 4), (0, "OFF", 1), (1, "ON", 1)])
        assert r.final_write_values() == {0: "OFF", 1: "ON"}

    def test_read_commands_not_in_final_writes(self):
        r = Routine(name="r", commands=[
            Command(device_id=0, is_read=True),
            Command(device_id=1, value="ON"),
        ])
        assert r.final_write_values() == {1: "ON"}
        request = r.lock_requests()[0]
        assert request.reads and not request.writes

    def test_sequential_with_must_flag(self):
        r = sequential("r", [(0, "ON", 1, False), (1, "ON", 1)])
        assert [c.must for c in r.commands] == [False, True]
