"""User-initiated routine cancellation (a SafeHome extension: the paper
lists signal/interrupt injection as future OS-for-smart-homes work)."""

import pytest

from repro.core.controller import RoutineStatus
from repro.hub.safehome import SafeHome
from repro.metrics.congruence import final_state_serializable
from tests.conftest import Home, routine


def build_home(visibility="ev"):
    home = SafeHome(visibility=visibility)
    home.add_device("plug", "a")
    home.add_device("plug", "b")
    home.register_routine_spec({
        "routineName": "slow",
        "commands": [
            {"device": "a", "action": "ON", "durationSec": 5},
            {"device": "b", "action": "ON", "durationSec": 60},
        ],
    })
    return home


class TestCancellation:
    def test_cancel_rolls_back(self):
        home = build_home()
        run = home.invoke("slow")
        home.cancel(run, at=10.0)
        result = home.run()
        assert run.status is RoutineStatus.ABORTED
        assert run.abort_reason == "cancelled by user"
        # Device a's ON was rolled back.
        assert result.end_state[0] == "OFF"

    def test_cancel_before_start_under_gsv(self):
        home = build_home(visibility="gsv")
        first = home.invoke("slow")
        queued = home.invoke("slow")
        home.cancel(queued, at=1.0)  # cancelled while still waiting
        home.run()
        assert first.status is RoutineStatus.COMMITTED
        assert queued.status is RoutineStatus.ABORTED
        assert queued.start_time is None or \
            queued.rolled_back_commands == 0

    def test_cancel_after_commit_is_noop(self):
        home = build_home()
        run = home.invoke("slow")
        home.cancel(run, at=1000.0)
        home.run()
        assert run.status is RoutineStatus.COMMITTED

    def test_cancel_releases_locks_for_waiters(self):
        home = Home(model="ev", n_devices=2)
        hog = home.submit(routine("hog", [(0, "H", 100.0)]), when=0.0)
        waiter = home.submit(routine("waiter", [(0, "W", 1.0)]),
                             when=1.0)
        home.sim.call_at(5.0, home.controller.request_abort, hog,
                         "cancelled by user")
        result = home.run()
        assert hog.status is RoutineStatus.ABORTED
        assert waiter.status is RoutineStatus.COMMITTED
        assert waiter.finish_time < 120.0
        assert result.end_state[0] == "W"
        assert final_state_serializable(result, home.initial)
