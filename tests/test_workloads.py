"""Tests for workload generators: microbenchmark, lights, scenarios."""

import pytest

from repro.workloads.base import Workload
from repro.workloads.lights import lights_workload, serialized_end_states
from repro.workloads.micro import (MicroParams, _sample_devices,
                                   generate_microbenchmark)
from repro.workloads.scenarios import (factory_scenario, morning_scenario,
                                       party_scenario)
from repro.sim.random import RandomStreams


class TestMicroParams:
    def test_defaults_match_table3(self):
        params = MicroParams()
        assert params.routines == 100
        assert params.concurrency == 4
        assert params.commands_per_routine == 3.0
        assert params.zipf_alpha == 0.05
        assert params.long_routine_pct == 10.0
        assert params.long_duration_s == 1200.0
        assert params.short_duration_s == 10.0
        assert params.must_pct == 100.0
        assert params.failed_device_pct == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"routines": 0}, {"concurrency": 0},
        {"must_pct": 120.0}, {"failed_device_pct": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MicroParams(**kwargs)


class TestMicrobenchmark:
    def test_deterministic_per_seed(self):
        a = generate_microbenchmark(MicroParams(routines=10), seed=5)
        b = generate_microbenchmark(MicroParams(routines=10), seed=5)
        for ra, rb in zip(a.all_routines(), b.all_routines()):
            assert [c.device_id for c in ra.commands] == \
                [c.device_id for c in rb.commands]
            assert [c.duration for c in ra.commands] == \
                [c.duration for c in rb.commands]

    def test_different_seeds_differ(self):
        a = generate_microbenchmark(MicroParams(routines=10), seed=5)
        b = generate_microbenchmark(MicroParams(routines=10), seed=6)
        durations_a = [c.duration for r in a.all_routines()
                       for c in r.commands]
        durations_b = [c.duration for r in b.all_routines()
                       for c in r.commands]
        assert durations_a != durations_b

    def test_stream_distribution(self):
        workload = generate_microbenchmark(
            MicroParams(routines=10, concurrency=4), seed=0)
        assert len(workload.streams) == 4
        assert sum(len(s) for s in workload.streams) == 10

    def test_long_routine_percentage_roughly_respected(self):
        params = MicroParams(routines=300, long_routine_pct=20.0,
                             long_duration_s=600.0)
        workload = generate_microbenchmark(params, seed=1)
        long_count = sum(r.is_long for r in workload.all_routines())
        assert 30 <= long_count <= 90  # 20% of 300 = 60 +/- slack

    def test_must_percentage(self):
        params = MicroParams(routines=100, must_pct=0.0)
        workload = generate_microbenchmark(params, seed=1)
        assert all(not c.must for r in workload.all_routines()
                   for c in r.commands)

    def test_failed_devices_fraction(self):
        params = MicroParams(routines=10, devices=20,
                             failed_device_pct=25.0)
        workload = generate_microbenchmark(params, seed=1)
        assert len(workload.failure_plans) == 5
        assert workload.meta["scale_failures"]

    def test_devices_within_range(self):
        params = MicroParams(routines=50, devices=7)
        workload = generate_microbenchmark(params, seed=2)
        for r in workload.all_routines():
            assert all(0 <= c.device_id < 7 for c in r.commands)
            # sampling without replacement: no duplicate devices
            ids = [c.device_id for c in r.commands]
            assert len(ids) == len(set(ids))

    def test_zipf_skew_changes_popularity(self):
        flat = MicroParams(routines=200, zipf_alpha=0.0)
        skew = MicroParams(routines=200, zipf_alpha=2.0)
        def device0_share(params):
            workload = generate_microbenchmark(params, seed=3)
            touches = [c.device_id for r in workload.all_routines()
                       for c in r.commands]
            return touches.count(0) / len(touches)
        assert device0_share(skew) > device0_share(flat) * 2

    def test_sample_devices_without_replacement(self):
        rng = RandomStreams(seed=0).stream("s")
        for _ in range(50):
            chosen = _sample_devices(rng, 5, 10, alpha=1.0)
            assert len(set(chosen)) == 5


class TestLightsWorkload:
    def test_structure(self):
        workload = lights_workload(5, offset_s=0.5)
        assert workload.device_count() == 5
        assert workload.routine_count == 2
        on, off = [r for r, _t in workload.arrivals]
        assert len(on.commands) == 5
        assert {c.value for c in on.commands} == {"ON"}
        assert workload.arrivals[1][1] == 0.5

    def test_serialized_end_states(self):
        states = serialized_end_states(2)
        assert {0: "ON", 1: "ON"} in states
        assert {0: "OFF", 1: "OFF"} in states

    def test_rejects_zero_devices(self):
        with pytest.raises(ValueError):
            lights_workload(0, 0.0)


class TestScenarios:
    def test_morning_shape(self):
        workload = morning_scenario(seed=1)
        assert workload.device_count() == 31
        assert workload.routine_count == 29
        users = {r.user for r, _t in workload.arrivals}
        assert len(users) == 4

    def test_morning_constraints_wake_before_cook(self):
        workload = morning_scenario(seed=2)
        times = {r.name: t for r, t in workload.arrivals}
        for user in ("alice", "bob", "carol", "dave"):
            assert times[f"{user}-wake-up"] < \
                times[f"{user}-cook-breakfast"]

    def test_party_has_one_long_routine(self):
        workload = party_scenario(seed=1)
        assert workload.routine_count == 12
        long_routines = [r for r, _t in workload.arrivals if r.is_long]
        assert any(r.name == "party-atmosphere" for r in long_routines)
        atmosphere_at = [t for r, t in workload.arrivals
                         if r.name == "party-atmosphere"][0]
        assert atmosphere_at == 0.0

    def test_factory_shape(self):
        workload = factory_scenario(seed=1, stages=10,
                                    routines_per_stage=2)
        assert len(workload.streams) == 10
        assert workload.routine_count == 20
        # 2 local per stage + 9 shared + 5 global
        assert workload.device_count() == 10 * 2 + 9 + 5

    def test_factory_routines_touch_own_locality(self):
        workload = factory_scenario(seed=3, stages=10,
                                    routines_per_stage=2)
        local_count = 10 * 2
        shared_count = 9
        for stage, stream in enumerate(workload.streams):
            for r in stream:
                for c in r.commands:
                    if c.device_id < local_count:
                        assert c.device_id // 2 == stage
                    elif c.device_id < local_count + shared_count:
                        boundary = c.device_id - local_count
                        assert boundary in (stage - 1, stage)

    def test_scenarios_deterministic(self):
        a = morning_scenario(seed=9)
        b = morning_scenario(seed=9)
        assert [(r.name, t) for r, t in a.arrivals] == \
            [(r.name, t) for r, t in b.arrivals]


class TestWorkloadValidation:
    def test_rejects_empty_devices(self):
        with pytest.raises(ValueError):
            Workload(name="w", devices=[], arrivals=[])

    def test_rejects_no_routines(self):
        with pytest.raises(ValueError):
            Workload(name="w", devices=[("plug", "p")])
