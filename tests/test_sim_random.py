"""Tests for seeded random streams."""

from repro.sim.random import RandomStreams, positive_normal, zipf_weights


class TestRandomStreams:
    def test_same_seed_same_sequence(self):
        a = RandomStreams(seed=42).stream("x")
        b = RandomStreams(seed=42).stream("x")
        assert [a.random() for _ in range(5)] == \
            [b.random() for _ in range(5)]

    def test_different_streams_differ(self):
        streams = RandomStreams(seed=42)
        a = streams.stream("a")
        b = streams.stream("b")
        assert [a.random() for _ in range(5)] != \
            [b.random() for _ in range(5)]

    def test_stream_is_cached(self):
        streams = RandomStreams(seed=1)
        assert streams.stream("x") is streams.stream("x")

    def test_creation_order_independent(self):
        one = RandomStreams(seed=7)
        one.stream("first")
        value_one = one.stream("second").random()
        two = RandomStreams(seed=7)
        value_two = two.stream("second").random()
        assert value_one == value_two

    def test_spawn_gives_independent_family(self):
        base = RandomStreams(seed=3)
        t0 = base.spawn(0).stream("w").random()
        t1 = base.spawn(1).stream("w").random()
        assert t0 != t1

    def test_spawn_deterministic(self):
        assert RandomStreams(seed=3).spawn(5).seed == \
            RandomStreams(seed=3).spawn(5).seed


class TestPositiveNormal:
    def test_respects_floor(self):
        rng = RandomStreams(seed=0).stream("n")
        for _ in range(200):
            assert positive_normal(rng, 1.0, 5.0, floor=0.5) >= 0.5

    def test_roughly_centered(self):
        rng = RandomStreams(seed=0).stream("n")
        samples = [positive_normal(rng, 100.0, 10.0, floor=0.0)
                   for _ in range(500)]
        mean = sum(samples) / len(samples)
        assert 95.0 < mean < 105.0


class TestZipfWeights:
    def test_uniform_at_zero_alpha(self):
        weights = zipf_weights(5, 0.0)
        assert weights == [1.0] * 5

    def test_monotone_decreasing(self):
        weights = zipf_weights(10, 1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_skew_increases_with_alpha(self):
        mild = zipf_weights(10, 0.1)
        steep = zipf_weights(10, 2.0)
        assert steep[0] / steep[-1] > mild[0] / mild[-1]

    def test_rejects_empty(self):
        import pytest
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
